//! Minimal vendored subset of the `libc` crate.
//!
//! The workspace builds in an offline environment, so instead of the real
//! `libc` crate this shim declares exactly the types, constants and
//! functions that `asv-vmem`'s mmap backend uses. Everything matches the
//! glibc ABI on 64-bit Linux (x86_64 and aarch64 share all the values
//! declared here).

#![cfg(target_os = "linux")]
#![allow(non_camel_case_types)]

pub use std::ffi::{c_char, c_int, c_long, c_uint, c_void};

pub type size_t = usize;
pub type off_t = i64;
pub type mode_t = u32;

// --- memory protection / mapping flags (asm-generic, identical on
// --- x86_64 and aarch64) ------------------------------------------------
pub const PROT_READ: c_int = 0x1;
pub const PROT_WRITE: c_int = 0x2;

pub const MAP_SHARED: c_int = 0x0001;
pub const MAP_PRIVATE: c_int = 0x0002;
pub const MAP_FIXED: c_int = 0x0010;
pub const MAP_ANONYMOUS: c_int = 0x0020;
pub const MAP_NORESERVE: c_int = 0x4000;

pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

// --- msync(2) flags (asm-generic) ---------------------------------------
pub const MS_ASYNC: c_int = 0x1;
pub const MS_SYNC: c_int = 0x4;

// --- open(2) flags ------------------------------------------------------
pub const O_RDWR: c_int = 0o2;
pub const O_CREAT: c_int = 0o100;
pub const O_EXCL: c_int = 0o200;
pub const O_CLOEXEC: c_int = 0o2000000;

extern "C" {
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn msync(addr: *mut c_void, len: size_t, flags: c_int) -> c_int;
    pub fn memfd_create(name: *const c_char, flags: c_uint) -> c_int;
    pub fn ftruncate(fd: c_int, length: off_t) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn open(path: *const c_char, oflag: c_int, ...) -> c_int;
    pub fn unlink(path: *const c_char) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_roundtrip_through_shim() {
        unsafe {
            let ptr = mmap(
                std::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(ptr, MAP_FAILED);
            *(ptr as *mut u64) = 0xFEED;
            assert_eq!(*(ptr as *const u64), 0xFEED);
            assert_eq!(munmap(ptr, 4096), 0);
        }
    }

    #[test]
    fn msync_on_shared_file_mapping() {
        let name = std::ffi::CString::new("libc-shim-msync").unwrap();
        unsafe {
            let fd = memfd_create(name.as_ptr(), 0);
            assert!(fd >= 0, "memfd_create failed");
            assert_eq!(ftruncate(fd, 4096), 0);
            let ptr = mmap(
                std::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                0,
            );
            assert_ne!(ptr, MAP_FAILED);
            *(ptr as *mut u64) = 0xCAFE;
            assert_eq!(msync(ptr, 4096, MS_SYNC), 0);
            assert_eq!(munmap(ptr, 4096), 0);
            assert_eq!(close(fd), 0);
        }
    }

    #[test]
    fn memfd_create_and_ftruncate() {
        let name = std::ffi::CString::new("libc-shim-test").unwrap();
        unsafe {
            let fd = memfd_create(name.as_ptr(), 0);
            assert!(fd >= 0, "memfd_create failed");
            assert_eq!(ftruncate(fd, 8192), 0);
            assert_eq!(close(fd), 0);
        }
    }
}
