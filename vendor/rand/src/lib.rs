//! Minimal vendored subset of the `rand` crate.
//!
//! The workspace builds offline, so this shim provides the slice of the
//! rand 0.8 API the workspace actually uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — seeded,
//!   deterministic generator (xoshiro256** seeded via SplitMix64),
//! * [`Rng::gen_range`] over integer and float ranges,
//! * [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`].
//!
//! Sequences are fully deterministic for a given seed but do **not**
//! reproduce upstream rand's streams — every consumer in this workspace
//! only relies on determinism, not on specific values.

use std::ops::{Range, RangeInclusive};

/// A random number generator driven by a 64-bit output function.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator (subset of rand's trait of the same name).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range — the backing trait of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + mul_shift(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + mul_shift(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u64, usize, u32, u16, u8);

/// Maps a uniform 64-bit draw onto `0..span` via 128-bit multiply-shift
/// (Lemire's multiplicative range reduction, without the rejection step —
/// the bias is < 2^-64 per draw, irrelevant for workload generation).
#[inline]
fn mul_shift(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// Converts 53 random bits into a float in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors rand's `Rng`).
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator of this shim: xoshiro256**
    /// with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (subset of rand's trait of the same name).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_ne!(
            same,
            (0..8)
                .map(|_| StdRng::seed_from_u64(42).gen_range(0u64..1000))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(5usize..=5);
            assert_eq!(v, 5);
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_is_supported() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut any_high = false;
        for _ in 0..64 {
            any_high |= rng.gen_range(0u64..=u64::MAX) > u64::MAX / 2;
        }
        assert!(any_high);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
