//! Minimal vendored subset of the `criterion` benchmark harness.
//!
//! The workspace builds offline, so this shim implements the slice of the
//! criterion 0.5 API used by the `asv-bench` bench targets: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `Bencher::iter_batched`, `BenchmarkId` and `BatchSize`. There is no
//! statistical analysis: every benchmark runs a fixed warm-up plus
//! `sample_size` timed iterations and reports the mean wall-clock time on
//! stdout. This keeps `cargo bench` functional (and fast) without the real
//! dependency; swap in upstream criterion for serious measurements.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` with a fresh `setup` product per iteration; only
    /// the routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    fn report(&self, group: &str, id: &str) {
        let mean = self.elapsed.as_secs_f64() / self.iterations.max(1) as f64;
        println!(
            "bench {group}/{id}: {:>12.3} µs/iter ({} iterations)",
            mean * 1e6,
            self.iterations
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark (criterion's
    /// sample count; this shim uses it directly as the iteration count,
    /// capped to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).clamp(1, 50);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Finishes the group (a no-op in this shim).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring criterion's macro.
///
/// `cargo test` invokes bench targets (harness = false) with `--test`; in
/// that mode the shim skips execution so test runs stay fast — the target
/// still links, which is the compile check we want.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // warm-up + 5 timed iterations
        assert_eq!(runs, 6);
        group.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(4);
        let mut setups = 0u64;
        group.bench_with_input(BenchmarkId::new("batched", 4), &4u64, |b, _| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
