//! Ablation study over the design parameters of the adaptive layer.
//!
//! The paper fixes the discard tolerance `d`, the replacement tolerance `r`
//! (both 0) and the view limit per experiment. This module sweeps the knobs
//! that DESIGN.md calls out as design choices and reports their effect on
//! the accumulated response time of a Figure-4-style query sequence:
//!
//! * the maximum number of partial views,
//! * the discard / replacement tolerances,
//! * the routing mode,
//! * the view-creation optimizations,
//! * adaptive creation disabled entirely (static full-view-only baseline).

use asv_core::{
    AdaptiveColumn, AdaptiveConfig, CreationOptions, Parallelism, RangeQuery, RoutingMode,
};
use asv_vmem::Backend;
use asv_workloads::{Distribution, QueryWorkload, SweepSpec};

use crate::report::Table;
use crate::scale::Scale;

/// One ablation configuration and its measured outcome.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Human-readable description of the configuration.
    pub label: String,
    /// Accumulated response time over the sequence, in seconds.
    pub total_s: f64,
    /// Total physical pages scanned over the sequence.
    pub scanned_pages: usize,
    /// Partial views existing after the sequence.
    pub final_views: usize,
}

/// The set of configurations the ablation sweeps.
pub fn configurations() -> Vec<(String, AdaptiveConfig)> {
    let base = AdaptiveConfig::paper_single_view();
    let mut configs = vec![
        ("baseline (paper defaults)".to_string(), base),
        (
            "adaptive creation disabled".to_string(),
            base.with_adaptive_creation(false),
        ),
        ("max_views = 10".to_string(), base.with_max_views(10)),
        ("max_views = 400".to_string(), base.with_max_views(400)),
        (
            "discard tolerance d = 16".to_string(),
            base.with_discard_tolerance(16),
        ),
        (
            "replacement tolerance r = 16".to_string(),
            base.with_replacement_tolerance(16),
        ),
        (
            "multi-view routing".to_string(),
            base.with_routing(RoutingMode::MultiView),
        ),
        (
            "creation: no optimizations".to_string(),
            base.with_creation(CreationOptions::NONE),
        ),
        (
            "creation: coalescing only".to_string(),
            base.with_creation(CreationOptions::COALESCED),
        ),
        (
            "creation: background thread only".to_string(),
            base.with_creation(CreationOptions::CONCURRENT),
        ),
    ];
    configs.shrink_to_fit();
    configs
}

/// Runs the ablation on the sine distribution with a Figure-4-style query
/// sweep, on `backend`.
pub fn run<B: Backend>(backend: &B, scale: &Scale, seed: u64) -> Vec<AblationRow> {
    run_with(backend, scale, seed, Parallelism::Sequential)
}

/// [`run`] with an explicit scan parallelism, applied uniformly to every
/// swept configuration.
pub fn run_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<AblationRow> {
    let dist = Distribution::sine();
    let values = dist.generate_pages(scale.fig45_pages, seed);
    let spec = SweepSpec {
        num_queries: scale.num_queries,
        ..SweepSpec::default()
    };
    let queries: Vec<RangeQuery> = QueryWorkload::new(seed ^ 0xAB1A)
        .selectivity_sweep(&spec)
        .into_iter()
        .map(RangeQuery::from_range)
        .collect();

    configurations()
        .into_iter()
        .map(|(label, config)| {
            let config = config.with_parallelism(parallelism);
            let mut adaptive = AdaptiveColumn::from_values(backend.clone(), &values, config)
                .expect("column materialization");
            let mut total_s = 0.0f64;
            let mut scanned_pages = 0usize;
            for q in &queries {
                let outcome = adaptive.query(q).expect("query");
                total_s += outcome.elapsed.as_secs_f64();
                scanned_pages += outcome.scanned_pages;
            }
            AblationRow {
                label,
                total_s,
                scanned_pages,
                final_views: adaptive.views().num_partial_views(),
            }
        })
        .collect()
}

/// Renders the ablation rows.
pub fn to_table(rows: &[AblationRow]) -> Table {
    let mut table = Table::new(
        "Ablation: design-parameter sweep (sine distribution, Figure-4 query sweep)",
        &["configuration", "total s", "scanned pages", "final views"],
    );
    for r in rows {
        table.add_row(vec![
            r.label.clone(),
            format!("{:.2}", r.total_s),
            r.scanned_pages.to_string(),
            r.final_views.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configurations_cover_all_knobs() {
        let configs = configurations();
        assert!(configs.len() >= 9);
        assert!(configs.iter().any(|(_, c)| !c.adaptive_creation));
        assert!(configs
            .iter()
            .any(|(_, c)| c.routing == RoutingMode::MultiView));
        assert!(configs.iter().any(|(_, c)| c.discard_tolerance > 0));
        assert!(configs.iter().any(|(_, c)| c.replacement_tolerance > 0));
    }

    #[test]
    fn tiny_ablation_runs_all_configurations() {
        let rows = run(&asv_vmem::SimBackend::new(), &Scale::tiny(), 3);
        assert_eq!(rows.len(), configurations().len());
        for r in &rows {
            assert!(r.total_s > 0.0, "{} produced no measurement", r.label);
        }
        // The static configuration creates no views.
        let static_row = rows
            .iter()
            .find(|r| r.label.contains("disabled"))
            .expect("static configuration present");
        assert_eq!(static_row.final_views, 0);
        // The paper baseline creates at least one view and scans fewer pages
        // than the static configuration.
        let baseline = &rows[0];
        assert!(baseline.final_views >= 1);
        assert!(baseline.scanned_pages <= static_row.scanned_pages);
        let table = to_table(&rows);
        assert_eq!(table.num_rows(), rows.len());
    }
}
