//! Regenerates the paper's tables and figures as text tables and CSV files.
//!
//! ```text
//! experiments [fig3|fig4|fig5|fig6|fig7|table1|ablation|scaling|align-overlap|
//!              table-scan|filter-kernel|serve|incremental-align|recover|all]
//!             [--backend sim|mmap|file] [--scale tiny|small|medium|paper]
//!             [--seed N] [--csv-dir DIR] [--threads N]
//!             [--align-mode sync|background]
//!             [--chunk-updates LIST] [--write-every LIST] [--clients LIST]
//!             [--writers LIST] [--journal PATH] [--store-dir DIR]
//! experiments recover-ingest --journal PATH [--batches N] [...]
//! experiments recover-verify --journal PATH [--csv-dir DIR] [...]
//! experiments compare DIR_A DIR_B [--max-delta-pct X]
//! ```
//!
//! The backend defaults to real memory rewiring (`mmap`) on Linux and to
//! the portable simulation (`sim`) everywhere else; `--backend` overrides
//! the choice at runtime. `--backend file` selects the durable file-backed
//! tier, storing under a process-unique temp directory unless
//! `--store-dir` pins one.
//!
//! `--threads N` shards the scan path of every figure driver across `N`
//! fork-join workers (`--threads 0` sizes the pool by the available
//! hardware parallelism). The default is 1: sequential scans, bit-identical
//! to the pre-parallel harness. The `scaling` experiment ignores the flag
//! and sweeps its own thread counts.
//!
//! `--align-mode background` makes `fig7` align its views via the
//! epoch-handoff worker instead of the stop-the-world call (pages
//! added/removed are identical; only the timings move off the query path).
//! The `align-overlap` experiment always measures both modes against each
//! other; `--chunk-updates 0,64,256` overrides the chunk sizes it sweeps
//! (0 = unchunked; default derives `[0, batch/8]` per batch size) and
//! `--write-every 0,8` the write rates (a queued burst every N
//! during-alignment queries; 0 = read-only).
//!
//! Results are printed to stdout; with `--csv-dir` the per-figure series are
//! additionally written as CSV files (one per figure), which is what
//! `EXPERIMENTS.md` records.
//!
//! The `filter-kernel` experiment additionally appends one JSON line of
//! timing history to `BENCH_filter_kernel.json` (inside `--csv-dir` when
//! given, else the working directory) and — with `--csv-dir` — writes the
//! per-variant answer tables to `DIR/filter_kernel_scalar/` and
//! `DIR/filter_kernel_chunked/`, so
//! `experiments compare DIR/filter_kernel_scalar DIR/filter_kernel_chunked
//! --max-delta-pct 0` gates the chunked kernels on exact answer equality.
//!
//! The `serve` experiment sweeps reader-thread counts (`--clients 1,2,4,8`
//! overrides the list) × writer-shard counts (`--writers 0,2`; 0 = direct
//! maintenance-thread writes, N > 0 = N writer threads feeding N sharded
//! ingest lanes) over the concurrent serving layer. `--threads` turns on
//! intra-query morsel fan-out on the reader snapshots. Every cell must
//! answer bit-identically to a single-threaded sequential twin; the run
//! appends one JSON line of throughput/tail-latency history (with the
//! clients and writers axes) to `BENCH_serve.json` and — with `--csv-dir`
//! — writes each cell's answer table to `DIR/serve_clients_{LABEL}/`
//! (`seq` for the twin, `{C}` for direct-write cells, `{C}w{W}` for
//! sharded-ingest cells), so `experiments compare DIR/serve_clients_seq
//! DIR/serve_clients_2w2 --max-delta-pct 0` gates determinism across all
//! axes.
//!
//! The `incremental-align` experiment sweeps installed-view counts against
//! hot-zone-churn touch fractions, running every cell once with the
//! dependency-pruned incremental planner and once with full replanning. It
//! asserts both variants answer bit-identically, appends one JSON line of
//! pruning-ratio/publish-latency history to `BENCH_incremental_align.json`
//! and — with `--csv-dir` — writes each variant's answer table to
//! `DIR/incremental_align_{incremental,full}/`, so
//! `experiments compare DIR/incremental_align_incremental
//! DIR/incremental_align_full --max-delta-pct 0` gates the equivalence.
//!
//! The `recover` experiment measures the durable tier: it runs the same
//! seeded batch workload once in-memory and once with the write-ahead
//! journal attached (sweeping the fsync policy), drops the durable table
//! without a quiesce and times `ServeTable::recover`. Recovered answers
//! must be bit-identical to the live table and to an independent replay
//! of the sealed batch prefix; the run appends one JSON line of
//! overhead/recovery-time history to `BENCH_recover.json` and — with
//! `--csv-dir` — writes the live and recovered probe-answer tables to
//! `DIR/recover_live/` and `DIR/recover_recovered/`, so
//! `experiments compare DIR/recover_live DIR/recover_recovered
//! --max-delta-pct 0` gates recovery exactness. `--journal PATH` pins the
//! journal file (default: a temp path, removed afterwards).
//!
//! The hidden `recover-ingest` / `recover-verify` modes split that loop
//! across processes for the kill-and-recover integration test:
//! `recover-ingest` journals acknowledged batches at `--journal`,
//! printing a `sealed batch N` marker per commit until `--batches` run
//! out (or SIGKILL arrives first); `recover-verify` recovers the journal,
//! regenerates the sealed batch prefix independently, writes both
//! probe-answer tables under `--csv-dir` and exits non-zero if they
//! differ.
//!
//! The `compare` subcommand diffs two `--csv-dir` outputs and prints
//! per-experiment timing deltas; `--max-delta-pct X` turns it into a check
//! that fails (exit code 1) when any per-row delta exceeds `X` percent
//! (`--max-delta-pct 0` against the same directory twice is the harness
//! self-check CI runs).

use std::process::ExitCode;

use std::path::PathBuf;

use asv_bench::{
    ablation, align_overlap, compare, fig3, fig4, fig5, fig6, fig7, filter_kernel,
    incremental_align, recover, report, scaling, serve, table1, table_scan, Scale, DEFAULT_SEED,
};
use asv_core::Parallelism;
use asv_vmem::{AnyBackend, Backend};

struct Args {
    experiments: Vec<String>,
    backend: AnyBackend,
    scale: Scale,
    seed: u64,
    csv_dir: Option<String>,
    parallelism: Parallelism,
    align_mode: fig7::AlignMode,
    overlap: align_overlap::OverlapConfig,
    clients: Vec<usize>,
    writers: Vec<usize>,
    journal: Option<PathBuf>,
    batches: Option<usize>,
    max_delta_pct: Option<f64>,
}

/// Parses a comma-separated list of non-negative integers.
fn parse_usize_list(flag: &str, value: &str) -> Result<Vec<usize>, String> {
    value
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| format!("invalid {flag} entry '{part}'"))
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut experiments = Vec::new();
    let mut backend = AnyBackend::default_backend();
    let mut scale = Scale::default();
    let mut seed = DEFAULT_SEED;
    let mut csv_dir = None;
    let mut parallelism = Parallelism::Sequential;
    let mut align_mode = fig7::AlignMode::Sync;
    let mut overlap = align_overlap::OverlapConfig::default();
    let mut clients = serve::DEFAULT_CLIENTS.to_vec();
    let mut writers = serve::DEFAULT_WRITERS.to_vec();
    let mut journal = None;
    let mut batches = None;
    let mut store_dir: Option<String> = None;
    let mut max_delta_pct = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => {
                let name = args.next().ok_or("--backend needs a value")?;
                backend = AnyBackend::from_name(&name).ok_or_else(|| {
                    format!(
                        "unknown backend '{name}' (available on this platform: {})",
                        AnyBackend::available_names().join("|")
                    )
                })?;
            }
            "--scale" => {
                let name = args.next().ok_or("--scale needs a value")?;
                scale = Scale::by_name(&name)
                    .ok_or_else(|| format!("unknown scale '{name}' (tiny|small|medium|paper)"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("invalid seed '{v}'"))?;
            }
            "--csv-dir" => {
                csv_dir = Some(args.next().ok_or("--csv-dir needs a value")?);
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid thread count '{v}'"))?;
                parallelism = Parallelism::from_threads(n);
            }
            "--align-mode" => {
                let v = args.next().ok_or("--align-mode needs a value")?;
                align_mode = fig7::AlignMode::by_name(&v)
                    .ok_or_else(|| format!("unknown align mode '{v}' (sync|background)"))?;
            }
            "--chunk-updates" => {
                let v = args.next().ok_or("--chunk-updates needs a value")?;
                overlap.chunk_sizes = Some(parse_usize_list("--chunk-updates", &v)?);
            }
            "--write-every" => {
                let v = args.next().ok_or("--write-every needs a value")?;
                let rates = parse_usize_list("--write-every", &v)?;
                if rates.is_empty() {
                    return Err("--write-every needs at least one entry".to_string());
                }
                overlap.write_everys = rates;
            }
            "--clients" => {
                let v = args.next().ok_or("--clients needs a value")?;
                let list = parse_usize_list("--clients", &v)?;
                if list.is_empty() || list.contains(&0) {
                    return Err("--clients needs at least one positive entry".to_string());
                }
                clients = list;
            }
            "--writers" => {
                let v = args.next().ok_or("--writers needs a value")?;
                let list = parse_usize_list("--writers", &v)?;
                if list.is_empty() {
                    return Err("--writers needs at least one entry".to_string());
                }
                writers = list;
            }
            "--journal" => {
                journal = Some(PathBuf::from(args.next().ok_or("--journal needs a value")?));
            }
            "--batches" => {
                let v = args.next().ok_or("--batches needs a value")?;
                batches = Some(
                    v.parse()
                        .map_err(|_| format!("invalid batch count '{v}'"))?,
                );
            }
            "--store-dir" => {
                store_dir = Some(args.next().ok_or("--store-dir needs a value")?);
            }
            "--max-delta-pct" => {
                let v = args.next().ok_or("--max-delta-pct needs a value")?;
                let bound: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid delta bound '{v}'"))?;
                // NaN would make every `>` comparison false and turn the
                // gate into a no-op; negative bounds are meaningless.
                if !bound.is_finite() || bound < 0.0 {
                    return Err(format!("delta bound '{v}' must be a finite value >= 0"));
                }
                max_delta_pct = Some(bound);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: experiments [fig3|fig4|fig5|fig6|fig7|table1|ablation|scaling|\
                            align-overlap|table-scan|filter-kernel|serve|incremental-align|\
                            recover|all] \
                            [--backend sim|mmap|file] [--scale tiny|small|medium|paper] \
                            [--seed N] [--csv-dir DIR] [--threads N] \
                            [--align-mode sync|background] \
                            [--chunk-updates LIST] [--write-every LIST] [--clients LIST] \
                            [--writers LIST] [--journal PATH] [--store-dir DIR]\n\
                     usage: experiments recover-ingest --journal PATH [--batches N]\n\
                     usage: experiments recover-verify --journal PATH [--csv-dir DIR]\n\
                     usage: experiments compare DIR_A DIR_B [--max-delta-pct X]"
                        .to_string(),
                );
            }
            name if !name.starts_with('-') => experiments.push(name.to_string()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    if let Some(dir) = store_dir {
        #[cfg(target_os = "linux")]
        {
            if !matches!(backend, AnyBackend::File(_)) {
                return Err("--store-dir requires --backend file".to_string());
            }
            backend = AnyBackend::file_in(dir);
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = dir;
            return Err("--store-dir requires --backend file (Linux only)".to_string());
        }
    }
    Ok(Args {
        experiments,
        backend,
        scale,
        seed,
        csv_dir,
        parallelism,
        align_mode,
        overlap,
        clients,
        writers,
        journal,
        batches,
        max_delta_pct,
    })
}

/// Dispatches once on the selected backend so every experiment's measured
/// loops run monomorphized over the concrete backend type — the enum is
/// consulted once per experiment, never inside a timed scan.
macro_rules! with_concrete_backend {
    ($any:expr, |$b:ident| $body:expr) => {
        match $any {
            AnyBackend::Sim($b) => $body,
            #[cfg(target_os = "linux")]
            AnyBackend::Mmap($b) => $body,
            #[cfg(target_os = "linux")]
            AnyBackend::File($b) => $body,
        }
    };
}

fn maybe_write_csv(csv_dir: &Option<String>, name: &str, table: &report::Table) {
    if let Some(dir) = csv_dir {
        let path = format!("{dir}/{name}.csv");
        if let Err(e) = report::write_csv(&path, &table.to_csv()) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("(wrote {path})");
        }
    }
}

fn run_fig3(args: &Args) {
    let rows = with_concrete_backend!(&args.backend, |b| fig3::run_with(
        b,
        &args.scale,
        args.seed,
        args.parallelism
    ));
    let table = fig3::to_table(&rows);
    println!("{}", table.render());
    maybe_write_csv(&args.csv_dir, "fig3", &table);
}

fn run_fig4(args: &Args) {
    let results = with_concrete_backend!(&args.backend, |b| fig4::run_all_with(
        b,
        &args.scale,
        args.seed,
        args.parallelism
    ));
    for r in &results {
        let table = fig4::to_table(r);
        println!("{}", table.render());
        maybe_write_csv(&args.csv_dir, &format!("fig4_{}", r.distribution), &table);
    }
    println!("{}", fig4::summary_table(&results).render());
}

fn run_fig5(args: &Args) {
    let results = with_concrete_backend!(&args.backend, |b| fig5::run_all_with(
        b,
        &args.scale,
        args.seed,
        args.parallelism
    ));
    for r in &results {
        let table = fig5::to_table(r);
        println!("{}", table.render());
        maybe_write_csv(
            &args.csv_dir,
            &format!("fig5_sel{:.0}pct", r.selectivity * 100.0),
            &table,
        );
    }
    println!("{}", fig5::summary_table(&results).render());
}

fn run_fig6(args: &Args) {
    let rows = with_concrete_backend!(&args.backend, |b| fig6::run_with(
        b,
        &args.scale,
        args.seed,
        args.parallelism
    ));
    let table = fig6::to_table(&rows);
    println!("{}", table.render());
    maybe_write_csv(&args.csv_dir, "fig6", &table);
}

fn run_fig7(args: &Args) {
    let rows = with_concrete_backend!(&args.backend, |b| fig7::run_all_with_mode(
        b,
        &args.scale,
        args.seed,
        args.parallelism,
        args.align_mode
    ));
    let table = fig7::to_table(&rows);
    println!("{}", table.render());
    maybe_write_csv(&args.csv_dir, "fig7", &table);
}

fn run_align_overlap(args: &Args) {
    let rows = with_concrete_backend!(&args.backend, |b| align_overlap::run_with_config(
        b,
        &args.scale,
        args.seed,
        args.parallelism,
        &args.overlap
    ));
    let table = align_overlap::to_table(&rows);
    println!("{}", table.render());
    maybe_write_csv(&args.csv_dir, "align_overlap", &table);
}

fn run_ablation(args: &Args) {
    let rows = with_concrete_backend!(&args.backend, |b| ablation::run_with(
        b,
        &args.scale,
        args.seed,
        args.parallelism
    ));
    let table = ablation::to_table(&rows);
    println!("{}", table.render());
    maybe_write_csv(&args.csv_dir, "ablation", &table);
}

fn run_table1(args: &Args) {
    let entries = with_concrete_backend!(&args.backend, |b| table1::run_with(
        b,
        &args.scale,
        args.seed,
        args.parallelism
    ));
    let table = table1::to_table(&entries);
    println!("{}", table.render());
    maybe_write_csv(&args.csv_dir, "table1", &table);
}

fn run_scaling(args: &Args) {
    let rows = with_concrete_backend!(&args.backend, |b| scaling::run(b, &args.scale, args.seed));
    let table = scaling::to_table(&rows);
    println!("{}", table.render());
    maybe_write_csv(&args.csv_dir, "scaling", &table);
}

fn run_table_scan(args: &Args) {
    let rows = with_concrete_backend!(&args.backend, |b| table_scan::run_with(
        b,
        &args.scale,
        args.seed,
        args.parallelism
    ));
    let table = table_scan::to_table(&rows);
    println!("{}", table.render());
    maybe_write_csv(&args.csv_dir, "table_scan", &table);
}

fn run_filter_kernel(args: &Args) {
    let report = with_concrete_backend!(&args.backend, |b| filter_kernel::run_with(
        b,
        &args.scale,
        args.seed
    ));
    let table = filter_kernel::to_table(&report);
    println!("{}", table.render());
    println!(
        "count-only speedup (chunked vs scalar, mean over selectivities): {:.2}x\n",
        report.count_only_speedup()
    );
    maybe_write_csv(&args.csv_dir, "filter_kernel", &table);
    if let Some(dir) = &args.csv_dir {
        for variant in filter_kernel::VARIANTS {
            let answers = filter_kernel::answers_table(&report, variant);
            let path = format!("{dir}/filter_kernel_{variant}/answers.csv");
            if let Err(e) = report::write_csv(&path, &answers.to_csv()) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("(wrote {path})");
            }
        }
    }
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis());
    let line = filter_kernel::bench_json_line(
        &report,
        args.backend.name(),
        args.scale.name,
        args.seed,
        unix_ms,
    );
    let bench_path = match &args.csv_dir {
        Some(dir) => format!("{dir}/BENCH_filter_kernel.json"),
        None => "BENCH_filter_kernel.json".to_string(),
    };
    if let Err(e) = report::append_line(&bench_path, &line) {
        eprintln!("warning: could not append to {bench_path}: {e}");
    } else {
        println!("(appended perf-history line to {bench_path})");
    }
}

fn run_serve(args: &Args) {
    let report = with_concrete_backend!(&args.backend, |b| serve::run_with(
        b,
        &args.scale,
        args.seed,
        args.parallelism,
        &args.clients,
        &args.writers
    ));
    let table = serve::to_table(&report);
    println!("{}", table.render());
    println!(
        "best read-throughput speedup over the sequential twin: {:.2}x\n",
        report.best_speedup()
    );
    maybe_write_csv(&args.csv_dir, "serve", &table);
    if let Some(dir) = &args.csv_dir {
        for cell in &report.cells {
            let label = serve::cell_label(cell);
            let answers = serve::answers_table(cell);
            let path = format!("{dir}/serve_clients_{label}/answers.csv");
            if let Err(e) = report::write_csv(&path, &answers.to_csv()) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("(wrote {path})");
            }
        }
    }
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis());
    let line = serve::bench_json_line(
        &report,
        args.backend.name(),
        args.scale.name,
        args.seed,
        &args.parallelism.to_string(),
        unix_ms,
    );
    let bench_path = match &args.csv_dir {
        Some(dir) => format!("{dir}/BENCH_serve.json"),
        None => "BENCH_serve.json".to_string(),
    };
    if let Err(e) = report::append_line(&bench_path, &line) {
        eprintln!("warning: could not append to {bench_path}: {e}");
    } else {
        println!("(appended perf-history line to {bench_path})");
    }
}

fn run_incremental_align(args: &Args) {
    let report = with_concrete_backend!(&args.backend, |b| incremental_align::run_with(
        b,
        &args.scale,
        args.seed,
        args.parallelism
    ));
    let table = incremental_align::to_table(&report);
    println!("{}", table.render());
    println!(
        "best planned/candidate pruning ratio (incremental cells): {:.3}\n",
        report.best_planned_ratio()
    );
    maybe_write_csv(&args.csv_dir, "incremental_align", &table);
    if let Some(dir) = &args.csv_dir {
        for variant in incremental_align::VARIANTS {
            let answers = incremental_align::answers_table(&report, variant);
            let path = format!("{dir}/incremental_align_{variant}/answers.csv");
            if let Err(e) = report::write_csv(&path, &answers.to_csv()) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("(wrote {path})");
            }
        }
    }
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis());
    let line = incremental_align::bench_json_line(
        &report,
        args.backend.name(),
        args.scale.name,
        args.seed,
        &args.parallelism.to_string(),
        unix_ms,
    );
    let bench_path = match &args.csv_dir {
        Some(dir) => format!("{dir}/BENCH_incremental_align.json"),
        None => "BENCH_incremental_align.json".to_string(),
    };
    if let Err(e) = report::append_line(&bench_path, &line) {
        eprintln!("warning: could not append to {bench_path}: {e}");
    } else {
        println!("(appended perf-history line to {bench_path})");
    }
}

/// The journal path of the `recover` modes: `--journal` when given, else
/// a process-unique temp file (removed by `run_recover` afterwards).
fn journal_path(args: &Args) -> (PathBuf, bool) {
    match &args.journal {
        Some(path) => (path.clone(), false),
        None => (
            std::env::temp_dir().join(format!("asv-recover-{}.wal", std::process::id())),
            true,
        ),
    }
}

fn run_recover(args: &Args) {
    let (journal, ephemeral) = journal_path(args);
    let report = with_concrete_backend!(&args.backend, |b| recover::run_with(
        b,
        &args.scale,
        args.seed,
        &recover::DEFAULT_FSYNC_EVERY,
        &journal
    ));
    if ephemeral {
        let _ = std::fs::remove_file(&journal);
    }
    let table = recover::to_table(&report);
    println!("{}", table.render());
    println!(
        "journal overhead at fsync-per-commit: {:.1}%; slowest recovery: {:.2} ms\n",
        report.strict_overhead_pct(),
        report.max_recover_ms()
    );
    maybe_write_csv(&args.csv_dir, "recover", &table);
    if let Some(dir) = &args.csv_dir {
        // The live and recovered answer sets are asserted identical inside
        // run_with; exporting both makes the `compare --max-delta-pct 0`
        // gate reproducible from the CSV artifacts alone.
        let answers = recover::answers_table(&report.answers);
        for label in ["live", "recovered"] {
            let path = format!("{dir}/recover_{label}/answers.csv");
            if let Err(e) = report::write_csv(&path, &answers.to_csv()) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("(wrote {path})");
            }
        }
    }
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis());
    let line = recover::bench_json_line(
        &report,
        args.backend.name(),
        args.scale.name,
        args.seed,
        unix_ms,
    );
    let bench_path = match &args.csv_dir {
        Some(dir) => format!("{dir}/BENCH_recover.json"),
        None => "BENCH_recover.json".to_string(),
    };
    if let Err(e) = report::append_line(&bench_path, &line) {
        eprintln!("warning: could not append to {bench_path}: {e}");
    } else {
        println!("(appended perf-history line to {bench_path})");
    }
}

/// The hidden `recover-ingest` mode (see the module docs): journals
/// acknowledged batches until `--batches` run out or SIGKILL arrives,
/// flushing a `sealed batch N` marker per commit.
fn run_recover_ingest(args: &Args) -> Result<(), String> {
    use std::io::Write as _;
    let journal = args
        .journal
        .as_ref()
        .ok_or("recover-ingest needs --journal PATH")?;
    let batches = args.batches.unwrap_or(args.scale.recover_batches);
    with_concrete_backend!(&args.backend, |b| recover::run_ingest(
        b,
        &args.scale,
        args.seed,
        journal,
        batches,
        |k| {
            // Explicit flush: a piped stdout is block-buffered, and the
            // kill-and-recover test reads these markers live.
            println!("sealed batch {k}");
            let _ = std::io::stdout().flush();
        }
    ));
    println!("(ingest complete: {batches} batches sealed, no quiesce)");
    Ok(())
}

/// The hidden `recover-verify` mode (see the module docs): recovers the
/// journal, writes the recovered and reference probe-answer tables under
/// `--csv-dir`, and reports whether they match.
fn run_recover_verify(args: &Args) -> Result<bool, String> {
    let journal = args
        .journal
        .as_ref()
        .ok_or("recover-verify needs --journal PATH")?;
    let out = with_concrete_backend!(&args.backend, |b| recover::run_verify(
        b,
        &args.scale,
        args.seed,
        journal
    ));
    println!(
        "(recover-verify: sealed_epoch={}, records_replayed={}, batches_applied={}, \
         discarded_bytes={})",
        out.info.sealed_epoch,
        out.info.records_replayed,
        out.info.batches_applied,
        out.info.discarded_bytes
    );
    if let Some(dir) = &args.csv_dir {
        for (label, answers) in [("recovered", &out.recovered), ("reference", &out.reference)] {
            let path = format!("{dir}/recover_{label}/answers.csv");
            let table = recover::answers_table(answers);
            if let Err(e) = report::write_csv(&path, &table.to_csv()) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("(wrote {path})");
            }
        }
    }
    let matches = out.recovered == out.reference;
    if matches {
        println!("recover-verify passed: recovered answers match the sealed-prefix reference");
    } else {
        eprintln!("recover-verify FAILED: recovered answers diverge from the reference");
    }
    Ok(matches)
}

/// The `compare` subcommand: `experiments compare DIR_A DIR_B`.
fn run_compare(args: &Args) -> ExitCode {
    let [_, dir_a, dir_b] = args.experiments.as_slice() else {
        eprintln!("usage: experiments compare DIR_A DIR_B [--max-delta-pct X]");
        return ExitCode::from(2);
    };
    let report = match compare::compare_dirs(dir_a, dir_b) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("compare failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!("{}", report.to_table().render());
    for name in &report.only_a {
        println!("(only in {dir_a}: {name})");
    }
    for name in &report.only_b {
        println!("(only in {dir_b}: {name})");
    }
    let max_delta = report.max_abs_delta_pct();
    println!("max |Δ row|: {max_delta:.2}%");
    if let Some(bound) = args.max_delta_pct {
        // Coverage gaps and incomparable files fail the check too: a gate
        // that silently skips half the measurements is no gate.
        let mut failures = Vec::new();
        if max_delta > bound {
            failures.push(format!("max delta {max_delta:.2}% exceeds bound {bound}%"));
        }
        if report.has_incomparable() {
            failures.push("incomparable file(s), see table".to_string());
        }
        if report.has_coverage_gaps() {
            failures.push("directories hold different file sets".to_string());
        }
        if !failures.is_empty() {
            eprintln!("compare check failed: {}", failures.join("; "));
            return ExitCode::from(1);
        }
        println!("compare check passed (bound {bound}%)");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.experiments.first().map(String::as_str) == Some("compare") {
        return run_compare(&args);
    }
    println!(
        "# adaptive-storage-views experiments (backend: {}, scale: {}, seed: {}, threads: {}, \
         align mode: {})",
        args.backend.name(),
        args.scale.name,
        args.seed,
        args.parallelism,
        args.align_mode.name()
    );
    println!(
        "# column sizes: fig3 {} pages, fig4/5 {} pages, fig6 {} pages, fig7 {} pages\n",
        args.scale.fig3_pages, args.scale.fig45_pages, args.scale.fig6_pages, args.scale.fig7_pages
    );
    for exp in &args.experiments {
        match exp.as_str() {
            "fig3" => run_fig3(&args),
            "fig4" => run_fig4(&args),
            "fig5" => run_fig5(&args),
            "fig6" => run_fig6(&args),
            "fig7" => run_fig7(&args),
            "table1" => run_table1(&args),
            "ablation" => run_ablation(&args),
            "scaling" => run_scaling(&args),
            "align-overlap" => run_align_overlap(&args),
            "table-scan" => run_table_scan(&args),
            "filter-kernel" => run_filter_kernel(&args),
            "serve" => run_serve(&args),
            "incremental-align" => run_incremental_align(&args),
            "recover" => run_recover(&args),
            "recover-ingest" => {
                if let Err(msg) = run_recover_ingest(&args) {
                    eprintln!("{msg}");
                    return ExitCode::from(2);
                }
            }
            "recover-verify" => match run_recover_verify(&args) {
                Ok(true) => {}
                Ok(false) => return ExitCode::from(1),
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::from(2);
                }
            },
            "all" => {
                run_fig3(&args);
                run_fig4(&args);
                run_fig5(&args);
                run_fig6(&args);
                run_fig7(&args);
                run_table1(&args);
                run_ablation(&args);
                run_scaling(&args);
                run_align_overlap(&args);
                run_table_scan(&args);
                run_filter_kernel(&args);
                run_serve(&args);
                run_incremental_align(&args);
                run_recover(&args);
            }
            other => {
                eprintln!("unknown experiment '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}
