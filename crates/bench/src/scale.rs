//! Experiment scale presets.
//!
//! The paper runs on a 64 GB machine with 1M-page (≈4 GB) columns. The
//! presets below shrink the *page count* (and, where sensible, the query
//! count and batch sizes) while keeping every other parameter — value
//! domain, selectivities, view limits, tolerances — identical to the paper,
//! so the shapes of all results are preserved (see DESIGN.md §6).

/// Sizing parameters of one experiment run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Preset name (shown in reports).
    pub name: &'static str,
    /// Pages of the Figure 3 column (paper: 1,000,000).
    pub fig3_pages: usize,
    /// Random point updates applied before querying in Figure 3
    /// (paper: 10,000).
    pub fig3_updates: usize,
    /// Pages of the Figure 4/5 columns (paper: 1,000,000).
    pub fig45_pages: usize,
    /// Queries per sequence in Figures 4/5 and Table 1 (paper: 250).
    pub num_queries: usize,
    /// Pages of the Figure 6 column (paper: ≈1,000,000 / 3.9 GB).
    pub fig6_pages: usize,
    /// Pages of the Figure 7 column (paper: 1,000,000).
    pub fig7_pages: usize,
    /// Update-batch sizes of Figure 7 (paper: 100 … 1M in log steps).
    pub fig7_batch_sizes: Vec<usize>,
    /// Repetitions per measurement (paper: 3).
    pub repetitions: usize,
    /// Pages per column of the multi-column `table-scan` experiment.
    pub table_pages: usize,
    /// Conjunctive queries per `table-scan` configuration.
    pub table_queries: usize,
    /// Column counts the `table-scan` experiment sweeps.
    pub table_columns: Vec<usize>,
    /// Pages of the `filter-kernel` microbench column.
    pub kernel_pages: usize,
    /// Timed passes per `filter-kernel` cell (mean/p95 are computed over
    /// these).
    pub kernel_passes: usize,
    /// Pages per column of the two-column `serve` experiment.
    pub serve_pages: usize,
    /// Barrier-phased rounds of the `serve` experiment.
    pub serve_rounds: usize,
    /// Reads per `serve` round (split across the client threads).
    pub serve_reads_per_round: usize,
    /// Writes the maintenance thread commits before each `serve` round.
    pub serve_writes_per_round: usize,
    /// Pages of the `incremental-align` column.
    pub inc_pages: usize,
    /// Hot-zone-churn rounds per `incremental-align` cell.
    pub inc_rounds: usize,
    /// Writes per `incremental-align` churn round.
    pub inc_writes_per_round: usize,
    /// Installed-view counts the `incremental-align` experiment sweeps.
    pub inc_view_counts: Vec<usize>,
    /// Touch fractions (per mille of the rows) the `incremental-align`
    /// experiment sweeps — stored as integers so `Scale` stays `Eq`.
    pub inc_touch_permille: Vec<usize>,
    /// Pages of the `recover` experiment's column.
    pub recover_pages: usize,
    /// Acknowledged-and-committed write batches per `recover` run.
    pub recover_batches: usize,
    /// Point writes per `recover` batch.
    pub recover_writes_per_batch: usize,
}

impl Scale {
    /// Minimal sizing for unit/integration tests of the harness itself.
    pub fn tiny() -> Self {
        Self {
            name: "tiny",
            fig3_pages: 256,
            fig3_updates: 200,
            fig45_pages: 256,
            num_queries: 20,
            fig6_pages: 512,
            fig7_pages: 256,
            fig7_batch_sizes: vec![10, 100],
            repetitions: 1,
            table_pages: 64,
            table_queries: 10,
            table_columns: vec![2, 3],
            kernel_pages: 64,
            kernel_passes: 5,
            serve_pages: 24,
            serve_rounds: 3,
            serve_reads_per_round: 16,
            serve_writes_per_round: 12,
            inc_pages: 24,
            inc_rounds: 3,
            inc_writes_per_round: 16,
            inc_view_counts: vec![4, 8],
            inc_touch_permille: vec![50, 500],
            recover_pages: 8,
            recover_batches: 6,
            recover_writes_per_batch: 16,
        }
    }

    /// Laptop-scale sizing (~64 MB columns); finishes in seconds. This is
    /// the default of the `experiments` binary and of `cargo bench`.
    pub fn small() -> Self {
        Self {
            name: "small",
            fig3_pages: 16_384,
            fig3_updates: 10_000,
            fig45_pages: 16_384,
            num_queries: 100,
            fig6_pages: 32_768,
            fig7_pages: 16_384,
            fig7_batch_sizes: vec![100, 1_000, 10_000, 100_000],
            repetitions: 3,
            table_pages: 2_048,
            table_queries: 40,
            table_columns: vec![2, 3, 4],
            kernel_pages: 2_048,
            kernel_passes: 9,
            serve_pages: 512,
            serve_rounds: 8,
            serve_reads_per_round: 64,
            serve_writes_per_round: 48,
            inc_pages: 512,
            inc_rounds: 8,
            inc_writes_per_round: 128,
            inc_view_counts: vec![8, 32],
            inc_touch_permille: vec![10, 100, 500],
            recover_pages: 256,
            recover_batches: 24,
            recover_writes_per_batch: 256,
        }
    }

    /// Half-GB columns and the paper's full query count; minutes per figure.
    pub fn medium() -> Self {
        Self {
            name: "medium",
            fig3_pages: 131_072,
            fig3_updates: 10_000,
            fig45_pages: 131_072,
            num_queries: 250,
            fig6_pages: 262_144,
            fig7_pages: 131_072,
            fig7_batch_sizes: vec![100, 1_000, 10_000, 100_000, 1_000_000],
            repetitions: 3,
            table_pages: 16_384,
            table_queries: 100,
            table_columns: vec![2, 4, 8],
            kernel_pages: 8_192,
            kernel_passes: 9,
            serve_pages: 4_096,
            serve_rounds: 12,
            serve_reads_per_round: 128,
            serve_writes_per_round: 96,
            inc_pages: 4_096,
            inc_rounds: 12,
            inc_writes_per_round: 256,
            inc_view_counts: vec![16, 64],
            inc_touch_permille: vec![5, 50, 500],
            recover_pages: 1_024,
            recover_batches: 32,
            recover_writes_per_batch: 1_024,
        }
    }

    /// The paper's original sizing (1M pages ≈ 4 GB per column). Requires a
    /// machine comparable to the paper's testbed.
    pub fn paper() -> Self {
        Self {
            name: "paper",
            fig3_pages: 1_000_000,
            fig3_updates: 10_000,
            fig45_pages: 1_000_000,
            num_queries: 250,
            fig6_pages: 1_000_000,
            fig7_pages: 1_000_000,
            fig7_batch_sizes: vec![100, 1_000, 10_000, 100_000, 1_000_000],
            repetitions: 3,
            table_pages: 65_536,
            table_queries: 250,
            table_columns: vec![2, 4, 8],
            kernel_pages: 65_536,
            kernel_passes: 9,
            serve_pages: 16_384,
            serve_rounds: 16,
            serve_reads_per_round: 256,
            serve_writes_per_round: 128,
            inc_pages: 16_384,
            inc_rounds: 16,
            inc_writes_per_round: 512,
            inc_view_counts: vec![32, 128],
            inc_touch_permille: vec![2, 20, 200],
            recover_pages: 4_096,
            recover_batches: 48,
            recover_writes_per_batch: 4_096,
        }
    }

    /// Looks up a preset by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "tiny" => Some(Self::tiny()),
            "small" => Some(Self::small()),
            "medium" => Some(Self::medium()),
            "paper" => Some(Self::paper()),
            _ => None,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let t = Scale::tiny();
        let s = Scale::small();
        let m = Scale::medium();
        let p = Scale::paper();
        assert!(t.fig45_pages < s.fig45_pages);
        assert!(s.fig45_pages < m.fig45_pages);
        assert!(m.fig45_pages < p.fig45_pages);
        assert_eq!(p.fig45_pages, 1_000_000);
        assert_eq!(p.num_queries, 250);
        assert!(t.serve_pages < s.serve_pages);
        assert!(s.serve_pages < m.serve_pages);
        assert!(m.serve_pages < p.serve_pages);
        assert!(t.serve_rounds <= s.serve_rounds);
        assert!(s.serve_reads_per_round <= m.serve_reads_per_round);
        assert!(t.inc_pages < s.inc_pages);
        assert!(s.inc_pages < m.inc_pages);
        assert!(m.inc_pages < p.inc_pages);
        assert!(t.recover_pages < s.recover_pages);
        assert!(s.recover_pages < m.recover_pages);
        assert!(m.recover_pages < p.recover_pages);
        assert!(t.recover_batches <= s.recover_batches);
        for scale in [&t, &s, &m, &p] {
            assert!(!scale.inc_view_counts.is_empty());
            assert!(scale.inc_touch_permille.iter().all(|&f| f <= 1_000));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Scale::by_name("tiny").unwrap().name, "tiny");
        assert_eq!(Scale::by_name("small").unwrap().name, "small");
        assert_eq!(Scale::by_name("medium").unwrap().name, "medium");
        assert_eq!(Scale::by_name("paper").unwrap().name, "paper");
        assert!(Scale::by_name("galactic").is_none());
        assert_eq!(Scale::default().name, "small");
    }
}
