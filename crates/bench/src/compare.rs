//! Diffing two experiment CSV directories (`experiments compare A B`).
//!
//! Perf PRs are reviewable only if their timing effect is visible: this
//! module loads every `*.csv` that exists in both directories (the files
//! `--csv-dir` writes), matches rows by position, and reports per-column
//! deltas for every numeric column — mean over the file plus the largest
//! per-row deviation. Non-numeric columns (labels like `variant` or
//! `mode`) must match exactly; mismatching label cells mark the file as
//! incomparable instead of producing nonsense deltas.
//!
//! Comparing a directory against itself must yield all-zero deltas — the
//! CI self-check of the experiment harness.

use std::io;
use std::path::Path;

use crate::report::Table;

/// The delta of one (numeric) column of one CSV file.
#[derive(Clone, Debug)]
pub struct ColumnDelta {
    /// Column name from the CSV header.
    pub name: String,
    /// Mean over all rows in directory A.
    pub mean_a: f64,
    /// Mean over all rows in directory B.
    pub mean_b: f64,
    /// Relative delta of the means in percent (`(b - a) / a * 100`; 0 when
    /// both means are 0).
    pub mean_delta_pct: f64,
    /// Largest absolute per-row relative delta in percent.
    pub max_row_delta_pct: f64,
}

/// The comparison result of one CSV file present in both directories.
#[derive(Clone, Debug)]
pub struct FileDelta {
    /// File name (without directory).
    pub file: String,
    /// Rows compared (the minimum of both files' row counts).
    pub rows: usize,
    /// Per-column deltas of the numeric columns.
    pub columns: Vec<ColumnDelta>,
    /// Label columns (or headers/row counts) that do not line up; such a
    /// file contributes no deltas.
    pub incomparable: Option<String>,
}

/// The full comparison of two CSV directories.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Per-file deltas, sorted by file name.
    pub files: Vec<FileDelta>,
    /// Files present only in directory A.
    pub only_a: Vec<String>,
    /// Files present only in directory B.
    pub only_b: Vec<String>,
}

impl CompareReport {
    /// The largest absolute per-row delta (percent) across all files and
    /// columns — the single number the CI self-check gates on.
    pub fn max_abs_delta_pct(&self) -> f64 {
        self.files
            .iter()
            .flat_map(|f| f.columns.iter())
            .map(|c| c.max_row_delta_pct)
            .fold(0.0, f64::max)
    }

    /// Returns `true` if any file pair could not be compared.
    pub fn has_incomparable(&self) -> bool {
        self.files.iter().any(|f| f.incomparable.is_some())
    }

    /// Returns `true` if either directory holds CSV files the other lacks —
    /// a coverage gap the delta bound alone would not catch.
    pub fn has_coverage_gaps(&self) -> bool {
        !self.only_a.is_empty() || !self.only_b.is_empty()
    }

    /// Renders the report as one table (a row per file × numeric column).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Compare: per-experiment deltas (B relative to A)",
            &[
                "file",
                "column",
                "rows",
                "mean A",
                "mean B",
                "Δ mean %",
                "max |Δ row| %",
            ],
        );
        for f in &self.files {
            if let Some(reason) = &f.incomparable {
                table.add_row(vec![
                    f.file.clone(),
                    format!("<incomparable: {reason}>"),
                    f.rows.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            for c in &f.columns {
                table.add_row(vec![
                    f.file.clone(),
                    c.name.clone(),
                    f.rows.to_string(),
                    format!("{:.4}", c.mean_a),
                    format!("{:.4}", c.mean_b),
                    format!("{:+.2}", c.mean_delta_pct),
                    format!("{:.2}", c.max_row_delta_pct),
                ]);
            }
        }
        table
    }
}

/// A parsed CSV file: header plus rows of cells.
struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

fn parse_csv(path: &Path) -> io::Result<Csv> {
    let content = std::fs::read_to_string(path)?;
    let mut lines = content.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .map(|l| l.split(',').map(|c| c.trim().to_string()).collect())
        .unwrap_or_default();
    let rows = lines
        .map(|l| l.split(',').map(|c| c.trim().to_string()).collect())
        .collect();
    Ok(Csv { header, rows })
}

/// Parses a cell as a number, tolerating the report suffixes (`%`, `x`).
fn parse_numeric(cell: &str) -> Option<f64> {
    cell.trim_end_matches(['%', 'x']).parse::<f64>().ok()
}

/// Relative delta in percent. A change away from a zero baseline has no
/// finite relative size, so it reports `+∞` — any finite `--max-delta-pct`
/// bound then fails, instead of letting an unbounded regression hide
/// behind a clamped value.
fn relative_delta_pct(a: f64, b: f64) -> f64 {
    if a == b {
        0.0
    } else if a == 0.0 {
        f64::INFINITY
    } else {
        (b - a) / a.abs() * 100.0
    }
}

fn compare_file(file: String, a: &Csv, b: &Csv) -> FileDelta {
    if a.header != b.header {
        return FileDelta {
            file,
            rows: 0,
            columns: Vec::new(),
            incomparable: Some("headers differ".into()),
        };
    }
    if a.rows.len() != b.rows.len() {
        return FileDelta {
            file,
            rows: a.rows.len().min(b.rows.len()),
            columns: Vec::new(),
            incomparable: Some(format!(
                "row counts differ (A: {}, B: {})",
                a.rows.len(),
                b.rows.len()
            )),
        };
    }
    let rows = a.rows.len();
    let mut columns = Vec::new();
    for (col, name) in a.header.iter().enumerate() {
        let mut sum_a = 0.0;
        let mut sum_b = 0.0;
        let mut max_row_delta_pct = 0.0f64;
        let mut numeric = rows > 0;
        let empty = String::new();
        for row in 0..rows {
            let cell_a = a.rows[row].get(col).unwrap_or(&empty);
            let cell_b = b.rows[row].get(col).unwrap_or(&empty);
            match (parse_numeric(cell_a), parse_numeric(cell_b)) {
                (Some(va), Some(vb)) => {
                    // NaN/inf would slip through every `>` bound check
                    // (f64::max drops NaN operands): a non-finite
                    // measurement makes the file incomparable instead.
                    if !va.is_finite() || !vb.is_finite() {
                        return FileDelta {
                            file,
                            rows,
                            columns: Vec::new(),
                            incomparable: Some(format!(
                                "non-finite value in column '{name}' at row {row}"
                            )),
                        };
                    }
                    sum_a += va;
                    sum_b += vb;
                    max_row_delta_pct = max_row_delta_pct.max(relative_delta_pct(va, vb).abs());
                }
                _ => {
                    // A label column: the cells must agree, otherwise the
                    // rows describe different configurations.
                    if cell_a != cell_b {
                        return FileDelta {
                            file,
                            rows,
                            columns: Vec::new(),
                            incomparable: Some(format!(
                                "label column '{name}' differs at row {row}"
                            )),
                        };
                    }
                    numeric = false;
                }
            }
        }
        if numeric {
            let mean_a = sum_a / rows as f64;
            let mean_b = sum_b / rows as f64;
            columns.push(ColumnDelta {
                name: name.clone(),
                mean_a,
                mean_b,
                mean_delta_pct: relative_delta_pct(mean_a, mean_b),
                max_row_delta_pct,
            });
        }
    }
    FileDelta {
        file,
        rows,
        columns,
        incomparable: None,
    }
}

fn csv_files(dir: &Path) -> io::Result<Vec<String>> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".csv") && entry.file_type()?.is_file() {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

/// Compares all CSV files shared by `dir_a` and `dir_b`.
pub fn compare_dirs(dir_a: impl AsRef<Path>, dir_b: impl AsRef<Path>) -> io::Result<CompareReport> {
    let (dir_a, dir_b) = (dir_a.as_ref(), dir_b.as_ref());
    let names_a = csv_files(dir_a)?;
    let names_b = csv_files(dir_b)?;
    let mut report = CompareReport::default();
    for name in &names_a {
        if !names_b.contains(name) {
            report.only_a.push(name.clone());
        }
    }
    for name in &names_b {
        if !names_a.contains(name) {
            report.only_b.push(name.clone());
        }
    }
    for name in names_a.into_iter().filter(|n| names_b.contains(n)) {
        let a = parse_csv(&dir_a.join(&name))?;
        let b = parse_csv(&dir_b.join(&name))?;
        report.files.push(compare_file(name, &a, &b));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("asv-compare-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn same_directory_compares_to_zero_deltas() {
        let dir = temp_dir("self");
        std::fs::write(
            dir.join("fig.csv"),
            "k,variant,ms\n10,zonemap,12.5\n20,virtual,3.25\n",
        )
        .unwrap();
        let report = compare_dirs(&dir, &dir).unwrap();
        assert_eq!(report.files.len(), 1);
        assert_eq!(report.max_abs_delta_pct(), 0.0);
        assert!(!report.has_incomparable());
        let f = &report.files[0];
        assert_eq!(f.rows, 2);
        // `variant` is a label column; `k` and `ms` are numeric.
        let names: Vec<&str> = f.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["k", "ms"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timing_deltas_are_reported_per_column() {
        let a = temp_dir("a");
        let b = temp_dir("b");
        std::fs::write(a.join("t.csv"), "n,ms\n1,10.0\n2,20.0\n").unwrap();
        std::fs::write(b.join("t.csv"), "n,ms\n1,11.0\n2,18.0\n").unwrap();
        std::fs::write(a.join("only_a.csv"), "x\n1\n").unwrap();
        std::fs::write(b.join("only_b.csv"), "x\n1\n").unwrap();
        let report = compare_dirs(&a, &b).unwrap();
        assert_eq!(report.only_a, vec!["only_a.csv"]);
        assert_eq!(report.only_b, vec!["only_b.csv"]);
        let ms = report.files[0]
            .columns
            .iter()
            .find(|c| c.name == "ms")
            .unwrap();
        assert!((ms.mean_a - 15.0).abs() < 1e-9);
        assert!((ms.mean_b - 14.5).abs() < 1e-9);
        assert!((ms.mean_delta_pct - (-10.0 / 3.0)).abs() < 1e-6);
        assert!((ms.max_row_delta_pct - 10.0).abs() < 1e-9);
        let table = report.to_table();
        assert!(table.num_rows() >= 2);
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn label_mismatch_marks_file_incomparable() {
        let a = temp_dir("la");
        let b = temp_dir("lb");
        std::fs::write(a.join("t.csv"), "variant,ms\nzonemap,1.0\n").unwrap();
        std::fs::write(b.join("t.csv"), "variant,ms\nbitmap,1.0\n").unwrap();
        let report = compare_dirs(&a, &b).unwrap();
        assert!(report.has_incomparable());
        assert_eq!(report.max_abs_delta_pct(), 0.0);
        assert!(report.to_table().render().contains("incomparable"));
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn suffixed_cells_parse_as_numbers() {
        assert_eq!(parse_numeric("12.5"), Some(12.5));
        assert_eq!(parse_numeric("85%"), Some(85.0));
        assert_eq!(parse_numeric("1.25x"), Some(1.25));
        assert_eq!(parse_numeric("zonemap"), None);
        assert_eq!(relative_delta_pct(0.0, 0.0), 0.0);
        assert_eq!(relative_delta_pct(10.0, 15.0), 50.0);
        // Changes away from a zero baseline have no finite relative size:
        // they must fail any finite bound instead of clamping to 100%.
        assert_eq!(relative_delta_pct(0.0, 1.0), f64::INFINITY);
        assert_eq!(relative_delta_pct(0.0, 5_000.0), f64::INFINITY);
    }

    #[test]
    fn row_count_mismatch_marks_file_incomparable() {
        let a = temp_dir("ra");
        let b = temp_dir("rb");
        std::fs::write(a.join("t.csv"), "n,ms\n1,10.0\n2,20.0\n").unwrap();
        std::fs::write(b.join("t.csv"), "n,ms\n1,10.0\n").unwrap();
        let report = compare_dirs(&a, &b).unwrap();
        assert!(report.has_incomparable());
        assert!(report.files[0]
            .incomparable
            .as_deref()
            .unwrap()
            .contains("row counts differ"));
        assert!(!report.has_coverage_gaps());
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn non_finite_values_mark_file_incomparable() {
        let a = temp_dir("na");
        let b = temp_dir("nb");
        std::fs::write(a.join("t.csv"), "n,ms\n1,12.5\n").unwrap();
        std::fs::write(b.join("t.csv"), "n,ms\n1,NaN\n").unwrap();
        let report = compare_dirs(&a, &b).unwrap();
        assert!(report.has_incomparable());
        assert!(report.files[0]
            .incomparable
            .as_deref()
            .unwrap()
            .contains("non-finite"));
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn zero_baseline_regressions_exceed_any_finite_bound() {
        let a = temp_dir("za");
        let b = temp_dir("zb");
        std::fs::write(a.join("t.csv"), "n,pages\n1,0\n").unwrap();
        std::fs::write(b.join("t.csv"), "n,pages\n1,5000\n").unwrap();
        let report = compare_dirs(&a, &b).unwrap();
        assert!(!report.has_incomparable());
        assert_eq!(report.max_abs_delta_pct(), f64::INFINITY);
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn empty_csv_dirs_compare_to_an_empty_report() {
        // Directories with no CSV files at all: nothing to diff, no
        // incomparable files, no coverage gaps — the bound check passes
        // vacuously (exit-code behaviour lives in the binary).
        let a = temp_dir("ea");
        let b = temp_dir("eb");
        std::fs::write(a.join("notes.txt"), "not a csv").unwrap();
        let report = compare_dirs(&a, &b).unwrap();
        assert!(report.files.is_empty());
        assert!(report.only_a.is_empty(), "non-CSV files are ignored");
        assert!(report.only_b.is_empty());
        assert!(!report.has_incomparable());
        assert!(!report.has_coverage_gaps());
        assert_eq!(report.max_abs_delta_pct(), 0.0);
        // A nonexistent directory is an I/O error, not an empty report.
        assert!(compare_dirs(a.join("missing"), &b).is_err());
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn single_row_files_report_exact_deltas() {
        // One data row: the mean delta and the max per-row delta coincide,
        // and a header-only file (zero rows) contributes no columns.
        let a = temp_dir("sa");
        let b = temp_dir("sb");
        std::fs::write(a.join("one.csv"), "n,ms\n1,10.0\n").unwrap();
        std::fs::write(b.join("one.csv"), "n,ms\n1,12.5\n").unwrap();
        std::fs::write(a.join("headeronly.csv"), "n,ms\n").unwrap();
        std::fs::write(b.join("headeronly.csv"), "n,ms\n").unwrap();
        let report = compare_dirs(&a, &b).unwrap();
        assert!(!report.has_incomparable());
        let one = report.files.iter().find(|f| f.file == "one.csv").unwrap();
        assert_eq!(one.rows, 1);
        let ms = one.columns.iter().find(|c| c.name == "ms").unwrap();
        assert!((ms.mean_delta_pct - 25.0).abs() < 1e-9);
        assert!((ms.max_row_delta_pct - 25.0).abs() < 1e-9);
        let header_only = report
            .files
            .iter()
            .find(|f| f.file == "headeronly.csv")
            .unwrap();
        assert_eq!(header_only.rows, 0);
        assert!(
            header_only.columns.is_empty(),
            "zero rows yield no numeric columns (and no NaN means)"
        );
        assert!((report.max_abs_delta_pct() - 25.0).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn nan_vs_nan_cells_fail_the_bound_check() {
        // NaN == NaN is false and NaN slips through every `>` bound, so a
        // NaN-vs-NaN cell must NOT count as "equal, delta 0": the file is
        // incomparable, which the `--max-delta-pct` gate treats as a
        // failure (PR 4's rule: a gate that skips measurements is no gate).
        let a = temp_dir("nna");
        let b = temp_dir("nnb");
        std::fs::write(a.join("t.csv"), "n,ms\n1,NaN\n").unwrap();
        std::fs::write(b.join("t.csv"), "n,ms\n1,NaN\n").unwrap();
        let report = compare_dirs(&a, &b).unwrap();
        assert!(report.has_incomparable());
        assert!(report.files[0]
            .incomparable
            .as_deref()
            .unwrap()
            .contains("non-finite"));
        assert!(
            report.files[0].columns.is_empty(),
            "no deltas are reported for an incomparable file"
        );
        assert_eq!(
            report.max_abs_delta_pct(),
            0.0,
            "the delta bound alone would pass — has_incomparable is what fails the check"
        );
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn missing_files_are_coverage_gaps() {
        let a = temp_dir("ga");
        let b = temp_dir("gb");
        std::fs::write(a.join("t.csv"), "n\n1\n").unwrap();
        std::fs::write(b.join("t.csv"), "n\n1\n").unwrap();
        std::fs::write(a.join("extra.csv"), "n\n1\n").unwrap();
        let report = compare_dirs(&a, &b).unwrap();
        assert!(report.has_coverage_gaps());
        assert_eq!(report.max_abs_delta_pct(), 0.0);
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }
}
