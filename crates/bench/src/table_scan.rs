//! Multi-column conjunctive scans: planned vs naive (new experiment,
//! beyond the paper — the multi-column extension of Table 1).
//!
//! For every combination of column correlation × column count ×
//! per-predicate selectivity × thread count, the experiment builds two
//! identical [`AdaptiveTable`]s and fires the same conjunctive query
//! sequence at both:
//!
//! * **naive** — the pre-planner path: every predicate is materialized
//!   fully through its column's adaptive layer, row sets intersected in
//!   input order;
//! * **planned** — the selectivity-ordered planner: the cheapest predicate
//!   drives, residuals are probed against the survivors only.
//!
//! Every query's row set is asserted identical across the two modes (and a
//! running checksum is compared at the end), so the table reports pure
//! execution-strategy differences: accumulated time, pages touched by full
//! scans vs semi-join probes, and the planned path's page effort relative
//! to naive.

use asv_core::{
    AdaptiveConfig, AdaptiveTable, ConjunctiveStats, Parallelism, PlannerConfig, RangeQuery,
};
use asv_vmem::Backend;
use asv_workloads::{ColumnCorrelation, TableWorkload, DEFAULT_MAX_VALUE};

use crate::report::Table;
use crate::scale::Scale;

/// Per-predicate selectivities the experiment sweeps.
pub const SELECTIVITIES: [f64; 2] = [0.01, 0.10];

/// One measured (correlation, columns, selectivity, threads, mode) cell.
#[derive(Clone, Debug)]
pub struct TableScanRow {
    /// Cross-column data/query correlation.
    pub correlation: &'static str,
    /// Number of columns (= predicates per query).
    pub num_columns: usize,
    /// Per-predicate selectivity.
    pub selectivity: f64,
    /// Worker threads (cross-column fork-join and per-column scans).
    pub threads: usize,
    /// Execution mode (`naive` or `planned`).
    pub mode: &'static str,
    /// Accumulated response time over the query sequence, in seconds.
    pub total_s: f64,
    /// Pages touched by full adaptive scans over the sequence.
    pub scan_pages: usize,
    /// Pages touched by semi-join probes over the sequence.
    pub probe_pages: usize,
    /// Planned total pages as a fraction of the naive total (1.0 for the
    /// naive row itself).
    pub pages_vs_naive: f64,
    /// Total result rows over the sequence (equivalence witness).
    pub result_rows: usize,
}

impl TableScanRow {
    /// Total pages touched over the sequence.
    pub fn total_pages(&self) -> usize {
        self.scan_pages + self.probe_pages
    }
}

fn build_table<B: Backend>(
    backend: &B,
    name: &str,
    columns: &[Vec<u64>],
    parallelism: Parallelism,
    planned: bool,
) -> AdaptiveTable<B> {
    let mut table = AdaptiveTable::new(name.to_string());
    let config = AdaptiveConfig::default().with_parallelism(parallelism);
    for (i, values) in columns.iter().enumerate() {
        table
            .add_column(format!("c{i}"), backend.clone(), values, config)
            .expect("column materialization");
    }
    table.set_planner_config(
        PlannerConfig::default()
            .with_enabled(planned)
            .with_parallelism(parallelism),
    );
    table
}

/// Runs the table-scan sweep on `backend` with the requested thread counts
/// (deduplicated; `1` is always measured as the baseline).
pub fn run_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<TableScanRow> {
    let mut thread_counts = vec![1usize];
    let requested = parallelism.worker_count();
    if requested > 1 {
        thread_counts.push(requested);
    }

    let workload = TableWorkload::new(seed ^ 0x7AB1E);
    let mut rows = Vec::new();
    for correlation in [
        ColumnCorrelation::Correlated,
        ColumnCorrelation::AntiCorrelated,
    ] {
        for &num_columns in &scale.table_columns {
            let columns = workload.clustered_columns(
                num_columns,
                scale.table_pages,
                correlation,
                DEFAULT_MAX_VALUE,
            );
            for &selectivity in &SELECTIVITIES {
                let queries = workload.conjunctive_queries(
                    scale.table_queries,
                    num_columns,
                    selectivity,
                    correlation,
                    DEFAULT_MAX_VALUE,
                );
                for &threads in &thread_counts {
                    let par = Parallelism::from_threads(threads.max(1));
                    let mut naive = build_table(backend, "naive", &columns, par, false);
                    let mut planned = build_table(backend, "planned", &columns, par, true);
                    let names: Vec<String> = (0..num_columns).map(|i| format!("c{i}")).collect();

                    let mut naive_stats = ConjunctiveStats::new();
                    let mut planned_stats = ConjunctiveStats::new();
                    let mut naive_checksum = 0u64;
                    let mut planned_checksum = 0u64;
                    for query in &queries {
                        let predicates: Vec<(&str, RangeQuery)> = names
                            .iter()
                            .map(|n| n.as_str())
                            .zip(query.iter().map(|r| RangeQuery::from_range(*r)))
                            .collect();
                        let n = naive
                            .query_conjunctive(&predicates)
                            .expect("naive conjunctive query");
                        let p = planned
                            .query_conjunctive(&predicates)
                            .expect("planned conjunctive query");
                        assert_eq!(
                            n.rows, p.rows,
                            "planned and naive row sets diverge \
                             ({correlation:?}, {num_columns} cols, sel {selectivity}, \
                             {threads} threads)"
                        );
                        naive_checksum =
                            naive_checksum.wrapping_add(n.rows.iter().map(|r| r + 1).sum::<u64>());
                        planned_checksum = planned_checksum
                            .wrapping_add(p.rows.iter().map(|r| r + 1).sum::<u64>());
                        naive_stats.record(&n);
                        planned_stats.record(&p);
                    }
                    assert_eq!(naive_checksum, planned_checksum, "checksum mismatch");

                    let naive_pages = naive_stats.total_pages().max(1);
                    for (mode, stats) in [("naive", &naive_stats), ("planned", &planned_stats)] {
                        rows.push(TableScanRow {
                            correlation: correlation.name(),
                            num_columns,
                            selectivity,
                            threads,
                            mode,
                            total_s: stats.accumulated_seconds(),
                            scan_pages: stats.total_scan_pages(),
                            probe_pages: stats.total_probe_pages(),
                            pages_vs_naive: stats.total_pages() as f64 / naive_pages as f64,
                            result_rows: stats.records().iter().map(|r| r.result_rows).sum(),
                        });
                    }
                }
            }
        }
    }
    rows
}

/// Renders the table-scan rows.
pub fn to_table(rows: &[TableScanRow]) -> Table {
    let mut table = Table::new(
        "Table scan: planned vs naive conjunctive execution \
         (pages = touched physical pages over the sequence)",
        &[
            "correlation",
            "columns",
            "sel",
            "threads",
            "mode",
            "total s",
            "scan pages",
            "probe pages",
            "pages vs naive",
            "result rows",
        ],
    );
    for r in rows {
        table.add_row(vec![
            r.correlation.to_string(),
            r.num_columns.to_string(),
            format!("{:.0}%", r.selectivity * 100.0),
            r.threads.to_string(),
            r.mode.to_string(),
            format!("{:.3}", r.total_s),
            r.scan_pages.to_string(),
            r.probe_pages.to_string(),
            format!("{:.2}", r.pages_vs_naive),
            r.result_rows.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_equivalent_and_planned_touches_fewer_pages() {
        let scale = Scale::tiny();
        let rows = run_with(
            &asv_vmem::SimBackend::new(),
            &scale,
            33,
            Parallelism::Threads(2),
        );
        // correlations x column counts x selectivities x thread counts x modes
        assert_eq!(
            rows.len(),
            2 * scale.table_columns.len() * SELECTIVITIES.len() * 2 * 2
        );
        for pair in rows.chunks(2) {
            let (naive, planned) = (&pair[0], &pair[1]);
            assert_eq!(naive.mode, "naive");
            assert_eq!(planned.mode, "planned");
            // Identical results...
            assert_eq!(naive.result_rows, planned.result_rows);
            assert!((naive.pages_vs_naive - 1.0).abs() < 1e-9);
            // ...with fewer touched pages: at tiny scale the driving scan
            // dominates, so planned must never touch more pages than naive.
            assert!(
                planned.total_pages() <= naive.total_pages(),
                "planned {} > naive {} ({}, {} cols, sel {})",
                planned.total_pages(),
                naive.total_pages(),
                planned.correlation,
                planned.num_columns,
                planned.selectivity,
            );
        }
        // For selective predicates the savings are substantial: on the 1%
        // configurations the planned path touches well under 80% of the
        // naive pages.
        let selective_savings: Vec<f64> = rows
            .iter()
            .filter(|r| r.mode == "planned" && r.selectivity <= 0.01)
            .map(|r| r.pages_vs_naive)
            .collect();
        assert!(!selective_savings.is_empty());
        assert!(
            selective_savings.iter().all(|&f| f < 0.8),
            "selective savings too small: {selective_savings:?}"
        );
        let table = to_table(&rows);
        assert_eq!(table.num_rows(), rows.len());
    }
}
