//! Figure 4 — adaptive query processing, single-view mode.
//!
//! Paper setup (§3.2): a single-column table of 1M pages, filled with the
//! sine, linear and sparse distributions. A sequence of 250 queries varies
//! the selected value range step-wise from 50M down to 5,000 and is fired in
//! shuffled order. Up to 100 partial views may be created adaptively. Per
//! query, the response time and the number of scanned physical pages are
//! reported; the baseline answers every query with a full column scan.

use asv_core::{AdaptiveColumn, AdaptiveConfig, Parallelism, RangeQuery};
use asv_vmem::Backend;
use asv_workloads::{Distribution, QueryWorkload, SweepSpec};

use crate::report::Table;
use crate::scale::Scale;

/// Per-query measurements (one plotted point of Figure 4).
#[derive(Clone, Copy, Debug)]
pub struct Fig4QueryRow {
    /// Position in the (shuffled) query sequence.
    pub query_idx: usize,
    /// Response time of the adaptive layer in milliseconds.
    pub adaptive_ms: f64,
    /// Physical pages scanned by the adaptive layer.
    pub scanned_pages: usize,
    /// Number of views used for this query.
    pub views_used: usize,
    /// Response time of the full-scan baseline in milliseconds.
    pub fullscan_ms: f64,
}

/// The result of one distribution's Figure 4 run.
#[derive(Clone, Debug)]
pub struct Fig4Result {
    /// Distribution name (sine / linear / sparse).
    pub distribution: String,
    /// Per-query rows in firing order.
    pub rows: Vec<Fig4QueryRow>,
    /// Number of partial views that exist after the sequence.
    pub final_views: usize,
    /// Accumulated adaptive response time in seconds (Table 1).
    pub adaptive_total_s: f64,
    /// Accumulated full-scan response time in seconds (Table 1).
    pub fullscan_total_s: f64,
}

/// Runs Figure 4 for one distribution on `backend`.
pub fn run_distribution<B: Backend>(
    backend: &B,
    dist: &Distribution,
    scale: &Scale,
    seed: u64,
) -> Fig4Result {
    run_distribution_with(backend, dist, scale, seed, Parallelism::Sequential)
}

/// [`run_distribution`] with an explicit scan parallelism (applied to both
/// the adaptive queries and the full-scan baseline).
pub fn run_distribution_with<B: Backend>(
    backend: &B,
    dist: &Distribution,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Fig4Result {
    let values = dist.generate_pages(scale.fig45_pages, seed);
    let spec = SweepSpec {
        num_queries: scale.num_queries,
        ..SweepSpec::default()
    };
    let queries = QueryWorkload::new(seed ^ 0xF164).selectivity_sweep(&spec);

    let config = AdaptiveConfig::paper_single_view().with_parallelism(parallelism);
    let mut adaptive = AdaptiveColumn::from_values(backend.clone(), &values, config)
        .expect("column materialization");

    let mut rows = Vec::with_capacity(queries.len());
    let mut adaptive_total = 0.0f64;
    let mut fullscan_total = 0.0f64;
    for (query_idx, range) in queries.iter().enumerate() {
        let q = RangeQuery::from_range(*range);
        let outcome = adaptive.query(&q).expect("adaptive query");
        let baseline = adaptive.full_scan(&q);
        assert_eq!(
            (outcome.count, outcome.sum),
            (baseline.count, baseline.sum),
            "adaptive answer diverges from full scan for query {query_idx}"
        );
        adaptive_total += outcome.elapsed.as_secs_f64();
        fullscan_total += baseline.elapsed.as_secs_f64();
        rows.push(Fig4QueryRow {
            query_idx,
            adaptive_ms: outcome.elapsed_ms(),
            scanned_pages: outcome.scanned_pages,
            views_used: outcome.num_views_used(),
            fullscan_ms: baseline.elapsed.as_secs_f64() * 1e3,
        });
    }
    Fig4Result {
        distribution: dist.name().to_string(),
        rows,
        final_views: adaptive.views().num_partial_views(),
        adaptive_total_s: adaptive_total,
        fullscan_total_s: fullscan_total,
    }
}

/// Runs Figure 4 for all three clustered distributions (4a sine, 4b linear,
/// 4c sparse).
pub fn run_all<B: Backend>(backend: &B, scale: &Scale, seed: u64) -> Vec<Fig4Result> {
    run_all_with(backend, scale, seed, Parallelism::Sequential)
}

/// [`run_all`] with an explicit scan parallelism.
pub fn run_all_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<Fig4Result> {
    [
        Distribution::sine(),
        Distribution::linear(),
        Distribution::sparse(),
    ]
    .iter()
    .map(|d| run_distribution_with(backend, d, scale, seed, parallelism))
    .collect()
}

/// Renders the per-query series of one distribution.
pub fn to_table(result: &Fig4Result) -> Table {
    let mut table = Table::new(
        format!(
            "Figure 4 ({}): adaptive single-view mode, per-query series",
            result.distribution
        ),
        &[
            "query",
            "adaptive ms",
            "scanned pages",
            "views used",
            "fullscan ms",
        ],
    );
    for r in &result.rows {
        table.add_row(vec![
            r.query_idx.to_string(),
            format!("{:.3}", r.adaptive_ms),
            r.scanned_pages.to_string(),
            r.views_used.to_string(),
            format!("{:.3}", r.fullscan_ms),
        ]);
    }
    table
}

/// Renders the summary line of one distribution (used by Table 1 as well).
pub fn summary_table(results: &[Fig4Result]) -> Table {
    let mut table = Table::new(
        "Figure 4 summary: accumulated response time over the sequence",
        &[
            "distribution",
            "fullscan total s",
            "adaptive total s",
            "speedup",
            "final views",
        ],
    );
    for r in results {
        table.add_row(vec![
            r.distribution.clone(),
            format!("{:.2}", r.fullscan_total_s),
            format!("{:.2}", r.adaptive_total_s),
            format!("{:.2}x", r.fullscan_total_s / r.adaptive_total_s.max(1e-9)),
            r.final_views.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sine_run_builds_views_and_matches_baseline() {
        let result = run_distribution(
            &asv_vmem::SimBackend::new(),
            &Distribution::sine(),
            &Scale::tiny(),
            3,
        );
        assert_eq!(result.distribution, "sine");
        assert_eq!(result.rows.len(), Scale::tiny().num_queries);
        assert!(result.final_views >= 1, "clustered data must produce views");
        assert!(result.adaptive_total_s > 0.0 && result.fullscan_total_s > 0.0);
        // Later queries should scan fewer pages than the column holds at
        // least once (views are being used).
        assert!(result
            .rows
            .iter()
            .any(|r| r.scanned_pages < Scale::tiny().fig45_pages));
        let table = to_table(&result);
        assert_eq!(table.num_rows(), result.rows.len());
        let summary = summary_table(std::slice::from_ref(&result));
        assert_eq!(summary.num_rows(), 1);
    }
}
