//! Multicore scaling of the scan path (new experiment, beyond the paper).
//!
//! The paper's evaluation is single-threaded; this experiment demonstrates
//! how the parallel execution layer scales range scans across cores. For
//! each thread count in [`THREAD_COUNTS`] it runs, on the sine distribution
//! of the Figure 4 setup:
//!
//! * **full-scan** — every query of the sweep answered by a sharded scan of
//!   the full view (no views, no adaptivity): pure scan throughput;
//! * **adaptive** — the adaptive layer with `parallelism = Threads(n)`,
//!   views created and routed exactly as in Figure 4.
//!
//! Every configuration is validated against the single-threaded answers
//! (identical counts and sums), and the adaptive runs are additionally
//! checked to make the *same* view insert/discard decisions as the
//! sequential run — parallelism is an execution detail, not a semantic one.

use asv_core::{AdaptiveColumn, AdaptiveConfig, Parallelism, RangeQuery};
use asv_storage::{Column, ScanMode};
use asv_vmem::Backend;
use asv_workloads::{Distribution, QueryWorkload, SweepSpec};

use crate::report::Table;
use crate::scale::Scale;

/// The thread counts the scaling sweep measures.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One measured (threads, variant) cell of the scaling experiment.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Worker threads used for the scan path.
    pub threads: usize,
    /// Variant name (`full-scan` or `adaptive`).
    pub variant: &'static str,
    /// Accumulated response time over the query sweep, in seconds.
    pub total_s: f64,
    /// Speedup over the 1-thread run of the same variant.
    pub speedup: f64,
    /// Queries answered.
    pub queries: usize,
    /// Partial views existing after the sweep (adaptive variant only).
    pub final_views: usize,
}

/// A view-set fingerprint: (range low, range high, pages) per partial view.
fn view_fingerprint<B: Backend>(col: &AdaptiveColumn<B>) -> Vec<(u64, u64, usize)> {
    col.views()
        .partial_views()
        .iter()
        .map(|v| (v.range().low(), v.range().high(), v.num_pages()))
        .collect()
}

/// Runs the scaling sweep on `backend`.
pub fn run<B: Backend>(backend: &B, scale: &Scale, seed: u64) -> Vec<ScalingRow> {
    let dist = Distribution::sine();
    let values = dist.generate_pages(scale.fig45_pages, seed);
    let spec = SweepSpec {
        num_queries: scale.num_queries,
        ..SweepSpec::default()
    };
    let queries: Vec<RangeQuery> = QueryWorkload::new(seed ^ 0x5CA1E)
        .selectivity_sweep(&spec)
        .into_iter()
        .map(RangeQuery::from_range)
        .collect();

    let column = Column::from_values(backend.clone(), &values).expect("column");

    // Reference answers and the sequential adaptive run's view decisions.
    let reference: Vec<(u64, u128)> = queries
        .iter()
        .map(|q| {
            let out =
                column.full_scan_with(q.range(), ScanMode::Aggregate, Parallelism::Sequential);
            (out.result.count, out.result.sum)
        })
        .collect();
    let sequential_views = {
        let config = AdaptiveConfig::paper_single_view();
        let mut col = AdaptiveColumn::from_values(backend.clone(), &values, config)
            .expect("column materialization");
        for q in &queries {
            col.query(q).expect("sequential adaptive query");
        }
        view_fingerprint(&col)
    };

    let mut rows = Vec::new();
    let mut fullscan_base_s = 0.0f64;
    let mut adaptive_base_s = 0.0f64;
    for &threads in &THREAD_COUNTS {
        let parallelism = Parallelism::from_threads(threads.max(1));

        // Full-scan throughput.
        let timer = asv_util::Timer::start();
        for (q, &(count, sum)) in queries.iter().zip(&reference) {
            let out = column.full_scan_with(q.range(), ScanMode::Aggregate, parallelism);
            assert_eq!(
                (out.result.count, out.result.sum),
                (count, sum),
                "parallel full scan diverges at {threads} threads"
            );
        }
        let fullscan_s = timer.elapsed().as_secs_f64();
        if threads == THREAD_COUNTS[0] {
            fullscan_base_s = fullscan_s;
        }
        rows.push(ScalingRow {
            threads,
            variant: "full-scan",
            total_s: fullscan_s,
            speedup: fullscan_base_s / fullscan_s.max(1e-9),
            queries: queries.len(),
            final_views: 0,
        });

        // Adaptive query sequence.
        let config = AdaptiveConfig::paper_single_view().with_parallelism(parallelism);
        let mut col = AdaptiveColumn::from_values(backend.clone(), &values, config)
            .expect("column materialization");
        let timer = asv_util::Timer::start();
        for (q, &(count, sum)) in queries.iter().zip(&reference) {
            let out = col.query(q).expect("adaptive query");
            assert_eq!(
                (out.count, out.sum),
                (count, sum),
                "parallel adaptive answer diverges at {threads} threads"
            );
        }
        let adaptive_s = timer.elapsed().as_secs_f64();
        assert_eq!(
            view_fingerprint(&col),
            sequential_views,
            "parallel adaptive run made different view decisions at {threads} threads"
        );
        if threads == THREAD_COUNTS[0] {
            adaptive_base_s = adaptive_s;
        }
        rows.push(ScalingRow {
            threads,
            variant: "adaptive",
            total_s: adaptive_s,
            speedup: adaptive_base_s / adaptive_s.max(1e-9),
            queries: queries.len(),
            final_views: col.views().num_partial_views(),
        });
    }
    rows
}

/// Renders the scaling rows.
pub fn to_table(rows: &[ScalingRow]) -> Table {
    let mut table = Table::new(
        "Scaling: sharded parallel scans (sine distribution, Figure-4 query sweep)",
        &[
            "threads",
            "variant",
            "total s",
            "speedup vs 1T",
            "queries",
            "final views",
        ],
    );
    for r in rows {
        table.add_row(vec![
            r.threads.to_string(),
            r.variant.to_string(),
            format!("{:.3}", r.total_s),
            format!("{:.2}x", r.speedup),
            r.queries.to_string(),
            r.final_views.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scaling_run_is_consistent_across_thread_counts() {
        let rows = run(&asv_vmem::SimBackend::new(), &Scale::tiny(), 21);
        assert_eq!(rows.len(), THREAD_COUNTS.len() * 2);
        for r in &rows {
            assert!(
                r.total_s > 0.0,
                "{}@{} produced no time",
                r.variant,
                r.threads
            );
            assert!(r.speedup > 0.0);
            assert_eq!(r.queries, Scale::tiny().num_queries);
        }
        // Every adaptive run converges on the same number of views.
        let adaptive_views: Vec<usize> = rows
            .iter()
            .filter(|r| r.variant == "adaptive")
            .map(|r| r.final_views)
            .collect();
        assert!(adaptive_views.windows(2).all(|w| w[0] == w[1]));
        assert!(adaptive_views[0] >= 1, "clustered data must produce views");
        let table = to_table(&rows);
        assert_eq!(table.num_rows(), rows.len());
    }
}
