//! The `serve` experiment: read throughput and tail latency of the
//! concurrent serving layer (new experiment, beyond the paper).
//!
//! A two-column [`ServeTable`] with one installed partial view per column
//! is driven through the barrier-phased rounds of a seeded
//! [`ServeWorkload`]: the maintenance thread stages and commits each
//! round's zipfian write burst, then N client threads pin epoch snapshots
//! and answer the round's range/conjunctive reads (read `i` belongs to
//! client `i % N`) while maintenance keeps ticking — publishing alignment
//! chunks and folding the write queue whenever the grace condition holds.
//!
//! For every client count the harness reports read throughput and the
//! p50/p95/p99 per-read latency, where one "read" is pin + query on a
//! fresh snapshot. Correctness is gated before any timing is reported:
//! every client count must produce the **bit-identical answer set** —
//! counts, sums, conjunctive row checksums — of a single-threaded twin
//! that answers the same reads between commits (the serving layer's
//! answer-invariance property). The per-client answer tables are also
//! exported so `experiments compare DIR_A DIR_B --max-delta-pct 0` can
//! gate cross-client determinism on the rendered CSV bytes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use asv_core::{AdaptiveConfig, AlignChunking, Parallelism, ServeTable, Snapshot};
use asv_util::ValueRange;
use asv_vmem::{Backend, VALUES_PER_PAGE};
use asv_workloads::{ServeReadOp, ServeRound, ServeSpec, ServeWorkload};

use crate::report::Table;
use crate::scale::Scale;

/// Client counts the experiment sweeps unless `--clients` overrides them.
pub const DEFAULT_CLIENTS: [usize; 4] = [1, 2, 4, 8];

/// Writer-shard counts the experiment sweeps unless `--writers` overrides
/// them (`0` = the maintenance thread writes directly, no ingest lanes).
pub const DEFAULT_WRITERS: [usize; 2] = [0, 2];

/// Columns of the served table.
const COLUMNS: usize = 2;

/// The full answer of one read — the equivalence witness asserted across
/// client counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeAnswer {
    /// Qualifying rows.
    pub count: u64,
    /// Sum of qualifying values (range reads; 0 for conjunctive reads).
    pub sum: u128,
    /// Order-independent surviving-row checksum (conjunctive reads; 0 for
    /// range reads).
    pub rows_checksum: u64,
}

impl ServeAnswer {
    /// A compact exact witness, rendered as a non-numeric label so the
    /// `compare` subcommand requires byte equality instead of a float
    /// tolerance.
    pub fn checksum_label(&self) -> String {
        format!("x{:x}.{:x}", self.sum, self.rows_checksum)
    }
}

/// One measured client-count cell.
#[derive(Clone, Debug)]
pub struct ServeCell {
    /// Reader threads (0 = the single-threaded sequential twin).
    pub clients: usize,
    /// Writer threads feeding sharded ingest lanes (0 = the maintenance
    /// thread writes directly).
    pub writers: usize,
    /// Total reads answered across all rounds.
    pub total_reads: usize,
    /// Wall-clock time of the whole run (writes + reads), milliseconds.
    pub wall_ms: f64,
    /// Reads answered per second over the whole run.
    pub reads_per_sec: f64,
    /// Median per-read latency (pin + query), microseconds.
    pub p50_us: f64,
    /// 95th-percentile per-read latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile per-read latency, microseconds.
    pub p99_us: f64,
    /// Table generation after the final quiesce.
    pub final_generation: u64,
    /// Checksum folding every answer in (round, read) order.
    pub checksum: u64,
    /// Every answer, sorted by (round, read index).
    pub answers: Vec<(usize, usize, ServeAnswer)>,
}

/// The full result of one `serve` run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// The sequential twin first, then one cell per swept client count.
    pub cells: Vec<ServeCell>,
    /// Rounds per run.
    pub rounds: usize,
    /// Reads per round.
    pub reads_per_round: usize,
    /// Writes committed before each round.
    pub writes_per_round: usize,
    /// Rows per column.
    pub num_rows: usize,
}

impl ServeReport {
    /// Read-throughput speedup of the best concurrent cell over the
    /// sequential twin — the headline number of the serving layer.
    pub fn best_speedup(&self) -> f64 {
        let seq = self
            .cells
            .iter()
            .find(|c| c.clients == 0)
            .map_or(0.0, |c| c.reads_per_sec);
        if seq <= 0.0 {
            return 1.0;
        }
        self.cells
            .iter()
            .filter(|c| c.clients > 0)
            .map(|c| c.reads_per_sec / seq)
            .fold(1.0, f64::max)
    }
}

fn spec_for(scale: &Scale) -> ServeSpec {
    let domain = scale.serve_pages as u64 * 1_000 + 999;
    ServeSpec {
        rounds: scale.serve_rounds,
        reads_per_round: scale.serve_reads_per_round,
        writes_per_round: scale.serve_writes_per_round,
        query_width: (domain / 16).max(1),
        conjunctive_every: 4,
        max_value: domain,
        zipf_exponent: 1.05,
    }
}

/// Clustered data: page p of column 0 holds values around p*1000; column 1
/// is the reverse clustering, so conjunctive predicates intersect
/// non-trivially.
fn column_values(col: usize, pages: usize) -> Vec<u64> {
    let n = pages * VALUES_PER_PAGE;
    (0..n)
        .map(|i| {
            let row = if col == 0 { i } else { n - 1 - i };
            ((row / VALUES_PER_PAGE) * 1_000 + row % VALUES_PER_PAGE) as u64
        })
        .collect()
}

fn serve_config(parallelism: Parallelism, writer_shards: usize) -> AdaptiveConfig {
    AdaptiveConfig::default()
        .with_parallelism(parallelism)
        .with_chunking(
            AlignChunking::default()
                .with_chunk_updates(64)
                .with_group_commit_idle(0)
                .with_writer_shards(writer_shards.max(1)),
        )
}

fn build_table<B: Backend>(
    backend: &B,
    scale: &Scale,
    parallelism: Parallelism,
    writer_shards: usize,
) -> ServeTable<B> {
    let mut table = ServeTable::new(backend.clone(), serve_config(parallelism, writer_shards));
    let domain = scale.serve_pages as u64 * 1_000 + 999;
    for col in 0..COLUMNS {
        table
            .add_column(&column_values(col, scale.serve_pages))
            .expect("column materialization");
        // One band view per column, offset so the two views cover
        // different row ranges.
        let lo = domain / 8 + col as u64 * domain / 3;
        let hi = (lo + domain / 6).min(domain);
        table
            .install_view(col, ValueRange::new(lo, hi))
            .expect("view installation");
    }
    table
}

fn answer<B: Backend>(snap: &Snapshot<B>, read: &ServeReadOp) -> ServeAnswer {
    match read {
        ServeReadOp::Range { col, range } => {
            let out = snap.query_range(*col, range);
            ServeAnswer {
                count: out.count,
                sum: out.sum,
                rows_checksum: 0,
            }
        }
        ServeReadOp::Conjunctive { predicates } => {
            let out = snap.query_conjunctive(predicates);
            ServeAnswer {
                count: out.count,
                sum: 0,
                rows_checksum: out.rows_checksum,
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Folds the (round, read)-ordered answers into one checksum.
fn fold_answers(answers: &[(usize, usize, ServeAnswer)]) -> u64 {
    answers.iter().fold(0u64, |acc, &(k, i, a)| {
        let mut h = splitmix64(acc ^ (k as u64) << 32 ^ i as u64);
        h = splitmix64(h ^ a.count);
        h = splitmix64(h ^ a.sum as u64);
        h = splitmix64(h ^ (a.sum >> 64) as u64);
        splitmix64(h ^ a.rows_checksum)
    })
}

fn percentile_us(latencies_ns: &mut [f64], pct: f64) -> f64 {
    if latencies_ns.is_empty() {
        return 0.0;
    }
    latencies_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let idx = ((latencies_ns.len() as f64) * pct / 100.0).ceil() as usize;
    latencies_ns[idx.saturating_sub(1).min(latencies_ns.len() - 1)] / 1_000.0
}

fn cell_from(
    clients: usize,
    writers: usize,
    mut answers: Vec<(usize, usize, ServeAnswer)>,
    mut latencies_ns: Vec<f64>,
    wall_ms: f64,
    final_generation: u64,
) -> ServeCell {
    answers.sort_by_key(|&(k, i, _)| (k, i));
    let total_reads = answers.len();
    ServeCell {
        clients,
        writers,
        total_reads,
        wall_ms,
        reads_per_sec: total_reads as f64 / (wall_ms / 1_000.0).max(1e-9),
        p50_us: percentile_us(&mut latencies_ns, 50.0),
        p95_us: percentile_us(&mut latencies_ns, 95.0),
        p99_us: percentile_us(&mut latencies_ns, 99.0),
        final_generation,
        checksum: fold_answers(&answers),
        answers,
    }
}

/// The single-threaded twin: commit each round's writes, answer every read
/// inline between commits.
fn run_sequential<B: Backend>(
    backend: &B,
    scale: &Scale,
    rounds: &[ServeRound],
    parallelism: Parallelism,
) -> ServeCell {
    let mut table = build_table(backend, scale, parallelism, 0);
    let handle = table.handle();
    let mut answers = Vec::new();
    let mut latencies = Vec::new();
    let started = Instant::now();
    for (k, round) in rounds.iter().enumerate() {
        for &(col, row, value) in &round.writes {
            table.write(col, row, value);
        }
        table.tick().expect("tick");
        for (i, read) in round.reads.iter().enumerate() {
            let read_started = Instant::now();
            let snap = handle.pin();
            let got = answer(&snap, read);
            latencies.push(read_started.elapsed().as_nanos() as f64);
            answers.push((k, i, got));
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
    table.quiesce().expect("quiesce");
    cell_from(0, 0, answers, latencies, wall_ms, table.generation())
}

/// One concurrent run: `num_clients` reader threads against one
/// maintenance thread, optionally fed by `num_writers` writer threads
/// through the sharded ingest front door (`num_writers == 0` keeps the
/// direct maintenance-thread write path).
///
/// Readers pin snapshots with the swept `parallelism`, so `--threads`
/// drives the intra-query morsel fan-out; the sequential twin always reads
/// sequentially, which is exactly the bit-identity gate.
fn run_concurrent<B: Backend>(
    backend: &B,
    scale: &Scale,
    rounds: &[ServeRound],
    parallelism: Parallelism,
    num_clients: usize,
    num_writers: usize,
) -> ServeCell {
    let mut table = build_table(backend, scale, parallelism, num_writers);
    let handle = table.handle().with_parallelism(parallelism);
    let writer = table.writer();
    // Rounds the maintenance thread has committed and opened for reading.
    let round_ready = AtomicUsize::new(0);
    // Total client-round completions; round k is done at (k+1)*clients.
    let finished = AtomicUsize::new(0);
    // Rounds opened for writer-thread sends, and completed writer-round
    // sends; round k's lanes are fully fed at (k+1)*writers.
    let write_round_open = AtomicUsize::new(0);
    let writes_done = AtomicUsize::new(0);

    let mut answers = Vec::new();
    let mut latencies = Vec::new();
    let started = Instant::now();
    std::thread::scope(|scope| {
        let round_ready = &round_ready;
        let finished = &finished;
        let write_round_open = &write_round_open;
        let writes_done = &writes_done;
        for w in 0..num_writers {
            let writer = writer.clone();
            scope.spawn(move || {
                for (k, round) in rounds.iter().enumerate() {
                    while write_round_open.load(Ordering::Acquire) <= k {
                        std::thread::yield_now();
                    }
                    for (col, row, value) in round.writes_for_shard(w, num_writers) {
                        writer.write(col, row, value);
                    }
                    writes_done.fetch_add(1, Ordering::AcqRel);
                }
            });
        }
        let clients: Vec<_> = (0..num_clients)
            .map(|client| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut lat = Vec::new();
                    for (k, round) in rounds.iter().enumerate() {
                        while round_ready.load(Ordering::Acquire) <= k {
                            std::thread::yield_now();
                        }
                        for (i, read) in round.reads.iter().enumerate() {
                            if i % num_clients != client {
                                continue;
                            }
                            let read_started = Instant::now();
                            let snap = handle.pin();
                            let got = answer(&snap, read);
                            lat.push(read_started.elapsed().as_nanos() as f64);
                            out.push((k, i, got));
                        }
                        finished.fetch_add(1, Ordering::AcqRel);
                    }
                    (out, lat)
                })
            })
            .collect();

        for (k, round) in rounds.iter().enumerate() {
            if num_writers == 0 {
                for &(col, row, value) in &round.writes {
                    table.write(col, row, value);
                }
            } else {
                // Open the round's lanes and wait for every writer thread
                // to finish its sends: the release/acquire pair makes all
                // sent messages visible to the drain in the tick below, so
                // the commit acknowledges the complete round — the same
                // boundary the direct path has.
                write_round_open.store(k + 1, Ordering::Release);
                while writes_done.load(Ordering::Acquire) < (k + 1) * num_writers {
                    std::thread::yield_now();
                }
            }
            // One tick commits the staged acknowledgements; every epoch a
            // client pins until the next round's commit answers
            // identically (chunk publishes and retires are invariant).
            table.tick().expect("tick");
            round_ready.store(k + 1, Ordering::Release);
            while finished.load(Ordering::Acquire) < (k + 1) * num_clients {
                table.tick().expect("tick");
                std::thread::yield_now();
            }
        }
        for client in clients {
            let (out, lat) = client.join().expect("client thread");
            answers.extend(out);
            latencies.extend(lat);
        }
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
    table.quiesce().expect("quiesce");
    cell_from(
        num_clients,
        num_writers,
        answers,
        latencies,
        wall_ms,
        table.generation(),
    )
}

/// Runs the `clients × writers` sweep on `backend`.
///
/// # Panics
/// Panics if any cell's answer set deviates from the sequential twin's —
/// the serving layer must be deterministic (across reader parallelism,
/// client counts and writer-shard counts alike) before its timings mean
/// anything.
pub fn run_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
    clients: &[usize],
    writers: &[usize],
) -> ServeReport {
    let spec = spec_for(scale);
    let num_rows = scale.serve_pages * VALUES_PER_PAGE;
    let rounds = ServeWorkload::new(seed ^ 0x5E57E).rounds(&spec, COLUMNS, num_rows);

    let sequential = run_sequential(backend, scale, &rounds, parallelism);
    let mut cells = vec![sequential];
    for &num_writers in writers {
        for &num_clients in clients {
            assert!(num_clients > 0, "client counts must be positive");
            let cell = run_concurrent(
                backend,
                scale,
                &rounds,
                parallelism,
                num_clients,
                num_writers,
            );
            assert_eq!(
                cell.answers, cells[0].answers,
                "{num_clients} clients / {num_writers} writers diverged \
                 from the sequential twin"
            );
            assert_eq!(cell.checksum, cells[0].checksum);
            cells.push(cell);
        }
    }
    ServeReport {
        cells,
        rounds: spec.rounds,
        reads_per_round: spec.reads_per_round,
        writes_per_round: spec.writes_per_round,
        num_rows,
    }
}

fn clients_label(clients: usize) -> String {
    if clients == 0 {
        "seq".to_string()
    } else {
        clients.to_string()
    }
}

/// The unique label of one swept cell, used for CSV directory names and
/// the JSON record: `seq` for the twin, the client count for direct-write
/// cells, `CLIENTSwWRITERS` for sharded-ingest cells.
pub fn cell_label(cell: &ServeCell) -> String {
    if cell.clients == 0 {
        "seq".to_string()
    } else if cell.writers == 0 {
        clients_label(cell.clients)
    } else {
        format!("{}w{}", cell.clients, cell.writers)
    }
}

/// Renders the throughput/latency cells.
pub fn to_table(report: &ServeReport) -> Table {
    let mut table = Table::new(
        format!(
            "Serve: epoch-pinned readers vs one maintenance thread \
             ({} rounds x {} reads, {} writes/round, {} rows/column)",
            report.rounds, report.reads_per_round, report.writes_per_round, report.num_rows
        ),
        &[
            "clients", "writers", "reads", "wall ms", "reads/s", "p50 us", "p95 us", "p99 us",
            "checksum",
        ],
    );
    for cell in &report.cells {
        table.add_row(vec![
            clients_label(cell.clients),
            cell.writers.to_string(),
            cell.total_reads.to_string(),
            format!("{:.2}", cell.wall_ms),
            format!("{:.0}", cell.reads_per_sec),
            format!("{:.1}", cell.p50_us),
            format!("{:.1}", cell.p95_us),
            format!("{:.1}", cell.p99_us),
            format!("x{:x}", cell.checksum),
        ]);
    }
    table
}

/// Renders one cell's full answer set as an exact-match table (counts are
/// plain integers, checksums non-numeric labels), for
/// `experiments compare ... --max-delta-pct 0` across client counts.
pub fn answers_table(cell: &ServeCell) -> Table {
    let mut table = Table::new(
        "Serve answers (identical for every client count)",
        &["round", "read", "count", "checksum"],
    );
    for &(k, i, a) in &cell.answers {
        table.add_row(vec![
            k.to_string(),
            i.to_string(),
            a.count.to_string(),
            a.checksum_label(),
        ]);
    }
    table
}

/// Builds the one-line JSON record appended to `BENCH_serve.json` after
/// every run — the tracked perf history (hand-rendered: the harness has no
/// JSON dependency).
pub fn bench_json_line(
    report: &ServeReport,
    backend: &str,
    scale: &str,
    seed: u64,
    threads: &str,
    unix_ms: u128,
) -> String {
    let mut cells = String::new();
    for (i, cell) in report.cells.iter().enumerate() {
        if i > 0 {
            cells.push(',');
        }
        cells.push_str(&format!(
            "{{\"clients\":\"{}\",\"writers\":{},\"reads\":{},\"reads_per_sec\":{:.0},\
             \"p50_us\":{:.1},\"p95_us\":{:.1},\"p99_us\":{:.1},\"checksum\":\"{:x}\"}}",
            clients_label(cell.clients),
            cell.writers,
            cell.total_reads,
            cell.reads_per_sec,
            cell.p50_us,
            cell.p95_us,
            cell.p99_us,
            cell.checksum,
        ));
    }
    format!(
        "{{\"experiment\":\"serve\",\"backend\":\"{}\",\"scale\":\"{}\",\
         \"seed\":{},\"threads\":\"{}\",\"unix_ms\":{},\"rounds\":{},\"reads_per_round\":{},\
         \"writes_per_round\":{},\"rows_per_column\":{},\
         \"best_speedup\":{:.3},\"cells\":[{}]}}",
        backend,
        scale,
        seed,
        threads,
        unix_ms,
        report.rounds,
        report.reads_per_round,
        report.writes_per_round,
        report.num_rows,
        report.best_speedup(),
        cells,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::SimBackend;

    #[test]
    fn tiny_sweep_is_deterministic_across_client_counts() {
        let scale = Scale::tiny();
        let report = run_with(
            &SimBackend::new(),
            &scale,
            7,
            Parallelism::Sequential,
            &[1, 2],
            &[0],
        );
        assert_eq!(report.cells.len(), 3); // seq + 2 client counts
        assert_eq!(report.cells[0].clients, 0);
        let expected_reads = scale.serve_rounds * scale.serve_reads_per_round;
        for cell in &report.cells {
            assert_eq!(cell.total_reads, expected_reads);
            assert_eq!(cell.checksum, report.cells[0].checksum);
            assert_eq!(cell.answers, report.cells[0].answers);
            assert!(cell.wall_ms > 0.0);
            assert!(cell.reads_per_sec > 0.0);
            assert!(cell.p50_us <= cell.p95_us);
            assert!(cell.p95_us <= cell.p99_us);
        }
        assert!(report.best_speedup() > 0.0);
        // At least one read found something.
        assert!(report.cells[0].answers.iter().any(|&(_, _, a)| a.count > 0));
        let table = to_table(&report);
        assert_eq!(table.num_rows(), report.cells.len());
        let answers = answers_table(&report.cells[1]);
        assert_eq!(answers.num_rows(), expected_reads);
        assert_eq!(
            answers.to_csv(),
            answers_table(&report.cells[2]).to_csv(),
            "answer tables render byte-identically across client counts"
        );
    }

    #[test]
    fn parallel_readers_and_sharded_writers_match_the_twin() {
        // The full grid on the tiny scale: morsel-parallel reads
        // (threads 2) × sharded ingest (writers 2) × 2 clients must all be
        // bit-identical to the sequential twin — run_with asserts it, this
        // test additionally checks the labels and axes land in the report.
        let report = run_with(
            &SimBackend::new(),
            &Scale::tiny(),
            7,
            Parallelism::from_threads(2),
            &[2],
            &[0, 2],
        );
        assert_eq!(report.cells.len(), 3); // seq + (2 clients × {0, 2} writers)
        assert_eq!(cell_label(&report.cells[0]), "seq");
        assert_eq!(cell_label(&report.cells[1]), "2");
        assert_eq!(cell_label(&report.cells[2]), "2w2");
        assert_eq!(report.cells[2].writers, 2);
        for cell in &report.cells {
            assert_eq!(cell.answers, report.cells[0].answers);
        }
    }

    #[test]
    fn bench_json_line_is_one_line_and_balanced() {
        let report = run_with(
            &SimBackend::new(),
            &Scale::tiny(),
            5,
            Parallelism::Sequential,
            &[2],
            &[0, 2],
        );
        let line = bench_json_line(&report, "sim", "tiny", 5, "sequential", 1_700_000_000_000);
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert!(line.contains("\"experiment\":\"serve\""));
        assert!(line.contains("\"threads\":\"sequential\""));
        assert!(line.contains("\"clients\":\"seq\""));
        assert!(line.contains("\"clients\":\"2\""));
        assert!(line.contains("\"writers\":0"));
        assert!(line.contains("\"writers\":2"));
    }

    #[test]
    fn percentiles_of_small_samples() {
        assert_eq!(percentile_us(&mut [], 50.0), 0.0);
        assert_eq!(percentile_us(&mut [2_000.0], 99.0), 2.0);
        let mut four = [4_000.0, 1_000.0, 3_000.0, 2_000.0];
        assert_eq!(percentile_us(&mut four, 50.0), 2.0);
        assert_eq!(percentile_us(&mut four, 99.0), 4.0);
    }
}
