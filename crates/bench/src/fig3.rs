//! Figure 3 — query performance of explicit vs virtual partial views.
//!
//! Paper setup (§3.1): a column of 1M pages filled with uniform random 8-byte
//! integers in `[0, 100M]`. A single partial view indexes all pages with
//! values in `[0, k]`, with `k` swept in logarithmic steps from 1,250
//! (0.65 % of pages qualify) to 80,000 (33.55 %). After creating the index,
//! 10,000 uniformly selected entries are updated, then a query selecting
//! `[0, k/2]` is answered and timed.

use asv_baselines::{
    BitmapIndex, PageIdVectorIndex, PhysicalScanBaseline, RangeIndex, VirtualViewIndex,
    ZoneMapIndex,
};
use asv_core::{CreationOptions, Parallelism};
use asv_util::{average_runtime, ValueRange};
use asv_vmem::Backend;
use asv_workloads::{Distribution, UpdateWorkload, DEFAULT_MAX_VALUE};

use crate::report::Table;
use crate::scale::Scale;

/// The `k` values of the paper's sweep (index range `[0, k]`).
pub const K_VALUES: [u64; 7] = [1_250, 2_500, 5_000, 10_000, 20_000, 40_000, 80_000];

/// One measured (k, variant) cell of Figure 3.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Upper bound of the indexed value range `[0, k]`.
    pub k: u64,
    /// Fraction of pages the index covers, in percent.
    pub index_selectivity_pct: f64,
    /// Variant name.
    pub variant: String,
    /// Average query runtime in milliseconds.
    pub runtime_ms: f64,
    /// Result cardinality of the query `[0, k/2]` (identical across
    /// variants; kept as a consistency check).
    pub count: u64,
    /// Number of pages the variant indexes.
    pub indexed_pages: usize,
}

/// Runs the Figure 3 experiment on `backend` and returns one row per
/// (k, variant).
pub fn run<B: Backend>(backend: &B, scale: &Scale, seed: u64) -> Vec<Fig3Row> {
    run_with(backend, scale, seed, Parallelism::Sequential)
}

/// [`run`] with an explicit scan parallelism.
///
/// Parallelism applies to the virtual-view variant (the paper's own
/// approach), whose query scan shards the view's page range across the
/// fork-join pool. The explicit baselines keep their single-threaded scan
/// loops — they model fixed reference implementations.
pub fn run_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<Fig3Row> {
    let dist = Distribution::Uniform {
        max_value: DEFAULT_MAX_VALUE,
    };
    let values = dist.generate_pages(scale.fig3_pages, seed);
    let writes = UpdateWorkload::new(seed ^ 0xF163).uniform_writes(
        scale.fig3_updates,
        values.len(),
        DEFAULT_MAX_VALUE,
    );
    let mut rows = Vec::new();

    for &k in &K_VALUES {
        let index_range = ValueRange::new(0, k);
        let query = ValueRange::new(0, k / 2);
        let mut reference: Option<(u64, u128)> = None;

        // Each variant owns its own representation of the same logical data;
        // build → update → query, timing only the query.
        let mut measure = |index: &mut dyn RangeIndex| -> Fig3Row {
            index.apply_writes(&writes);
            let mut answer = index.query(&query); // warm-up + correctness
            let elapsed = average_runtime(scale.repetitions, || {
                answer = index.query(&query);
            });
            match reference {
                None => reference = Some((answer.count, answer.sum)),
                Some((c, s)) => {
                    assert_eq!(
                        (c, s),
                        (answer.count, answer.sum),
                        "variant {} disagrees with reference for k={k}",
                        index.name()
                    );
                }
            }
            Fig3Row {
                k,
                index_selectivity_pct: 100.0 * index.indexed_pages() as f64
                    / scale.fig3_pages as f64,
                variant: index.name().to_string(),
                runtime_ms: elapsed.as_secs_f64() * 1e3,
                count: answer.count,
                indexed_pages: index.indexed_pages(),
            }
        };

        {
            let mut idx = ZoneMapIndex::build(&values, index_range);
            rows.push(measure(&mut idx));
        }
        {
            let mut idx =
                BitmapIndex::build(backend.clone(), &values, index_range).expect("bitmap column");
            rows.push(measure(&mut idx));
        }
        {
            let mut idx = PageIdVectorIndex::build(backend.clone(), &values, index_range)
                .expect("page-id column");
            rows.push(measure(&mut idx));
        }
        {
            let mut idx = PhysicalScanBaseline::build(&values, index_range);
            rows.push(measure(&mut idx));
        }
        {
            let mut idx = VirtualViewIndex::build(
                backend.clone(),
                &values,
                index_range,
                &CreationOptions::ALL,
            )
            .expect("virtual view column")
            .with_parallelism(parallelism);
            rows.push(measure(&mut idx));
        }
    }
    rows
}

/// Renders the Figure 3 rows as a table (one line per k × variant).
pub fn to_table(rows: &[Fig3Row]) -> Table {
    let mut table = Table::new(
        "Figure 3: explicit vs virtual partial views (query [0, k/2])",
        &["k", "index-sel %", "variant", "runtime ms", "indexed pages"],
    );
    for r in rows {
        table.add_row(vec![
            r.k.to_string(),
            format!("{:.2}", r.index_selectivity_pct),
            r.variant.clone(),
            format!("{:.3}", r.runtime_ms),
            r.indexed_pages.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_consistent_rows() {
        let rows = run(&asv_vmem::SimBackend::new(), &Scale::tiny(), 7);
        // 7 k-values × 5 variants.
        assert_eq!(rows.len(), K_VALUES.len() * 5);
        for chunk in rows.chunks(5) {
            let count = chunk[0].count;
            assert!(chunk.iter().all(|r| r.count == count));
            assert!(chunk.iter().all(|r| r.runtime_ms >= 0.0));
        }
        // Selectivity grows with k for every variant.
        let zonemap: Vec<&Fig3Row> = rows
            .iter()
            .filter(|r| r.variant == "virtual-view")
            .collect();
        assert!(zonemap.first().unwrap().indexed_pages <= zonemap.last().unwrap().indexed_pages);
        let table = to_table(&rows);
        assert_eq!(table.num_rows(), rows.len());
    }
}
