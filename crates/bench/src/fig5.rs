//! Figure 5 — adaptive query processing, multi-view mode.
//!
//! Paper setup (§3.2): the sine distribution with queries of *fixed*
//! selectivity — 1 % (up to 200 views allowed) and 10 % (up to 20 views).
//! Multiple partial views answer a query together whenever they cover the
//! selected range in conjunction. Reported per query: response time and the
//! number of views considered.

use asv_core::{AdaptiveColumn, AdaptiveConfig, Parallelism, RangeQuery};
use asv_vmem::Backend;
use asv_workloads::{Distribution, QueryWorkload};

use crate::report::Table;
use crate::scale::Scale;

/// Per-query measurements (one plotted point of Figure 5).
#[derive(Clone, Copy, Debug)]
pub struct Fig5QueryRow {
    /// Position in the query sequence.
    pub query_idx: usize,
    /// Response time of the adaptive layer in milliseconds.
    pub adaptive_ms: f64,
    /// Number of views used for this query.
    pub views_used: usize,
    /// Physical pages scanned.
    pub scanned_pages: usize,
    /// Response time of the full-scan baseline in milliseconds.
    pub fullscan_ms: f64,
}

/// Result of one Figure 5 configuration.
#[derive(Clone, Debug)]
pub struct Fig5Result {
    /// Query selectivity (fraction of the value domain).
    pub selectivity: f64,
    /// Maximum number of views allowed.
    pub max_views: usize,
    /// Per-query rows.
    pub rows: Vec<Fig5QueryRow>,
    /// Partial views existing after the sequence.
    pub final_views: usize,
    /// Largest number of views used by any query.
    pub max_views_used: usize,
    /// Accumulated adaptive response time in seconds.
    pub adaptive_total_s: f64,
    /// Accumulated full-scan response time in seconds.
    pub fullscan_total_s: f64,
}

/// Runs one Figure 5 configuration (fixed selectivity, multi-view mode) on
/// `backend`.
pub fn run_config<B: Backend>(
    backend: &B,
    selectivity: f64,
    max_views: usize,
    scale: &Scale,
    seed: u64,
) -> Fig5Result {
    run_config_with(
        backend,
        selectivity,
        max_views,
        scale,
        seed,
        Parallelism::Sequential,
    )
}

/// [`run_config`] with an explicit scan parallelism (applied to both the
/// adaptive queries and the full-scan baseline).
pub fn run_config_with<B: Backend>(
    backend: &B,
    selectivity: f64,
    max_views: usize,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Fig5Result {
    let dist = Distribution::sine();
    let values = dist.generate_pages(scale.fig45_pages, seed);
    let queries = QueryWorkload::new(seed ^ 0xF165).fixed_selectivity(
        scale.num_queries,
        selectivity,
        dist.max_value(),
    );
    let config = AdaptiveConfig::paper_multi_view(max_views).with_parallelism(parallelism);
    let mut adaptive = AdaptiveColumn::from_values(backend.clone(), &values, config)
        .expect("column materialization");

    let mut rows = Vec::with_capacity(queries.len());
    let mut adaptive_total = 0.0f64;
    let mut fullscan_total = 0.0f64;
    let mut max_views_used = 0usize;
    for (query_idx, range) in queries.iter().enumerate() {
        let q = RangeQuery::from_range(*range);
        let outcome = adaptive.query(&q).expect("adaptive query");
        let baseline = adaptive.full_scan(&q);
        assert_eq!(
            (outcome.count, outcome.sum),
            (baseline.count, baseline.sum),
            "adaptive answer diverges from full scan for query {query_idx}"
        );
        max_views_used = max_views_used.max(outcome.num_views_used());
        adaptive_total += outcome.elapsed.as_secs_f64();
        fullscan_total += baseline.elapsed.as_secs_f64();
        rows.push(Fig5QueryRow {
            query_idx,
            adaptive_ms: outcome.elapsed_ms(),
            views_used: outcome.num_views_used(),
            scanned_pages: outcome.scanned_pages,
            fullscan_ms: baseline.elapsed.as_secs_f64() * 1e3,
        });
    }
    Fig5Result {
        selectivity,
        max_views,
        rows,
        final_views: adaptive.views().num_partial_views(),
        max_views_used,
        adaptive_total_s: adaptive_total,
        fullscan_total_s: fullscan_total,
    }
}

/// Runs both paper configurations: 1 % selectivity (≤ 200 views, Figure 5a)
/// and 10 % selectivity (≤ 20 views, Figure 5b).
pub fn run_all<B: Backend>(backend: &B, scale: &Scale, seed: u64) -> Vec<Fig5Result> {
    run_all_with(backend, scale, seed, Parallelism::Sequential)
}

/// [`run_all`] with an explicit scan parallelism.
pub fn run_all_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<Fig5Result> {
    vec![
        run_config_with(backend, 0.01, 200, scale, seed, parallelism),
        run_config_with(backend, 0.10, 20, scale, seed, parallelism),
    ]
}

/// Renders the per-query series of one configuration.
pub fn to_table(result: &Fig5Result) -> Table {
    let mut table = Table::new(
        format!(
            "Figure 5 (sine, selectivity {:.0}%, max {} views): multi-view mode",
            result.selectivity * 100.0,
            result.max_views
        ),
        &[
            "query",
            "adaptive ms",
            "views used",
            "scanned pages",
            "fullscan ms",
        ],
    );
    for r in &result.rows {
        table.add_row(vec![
            r.query_idx.to_string(),
            format!("{:.3}", r.adaptive_ms),
            r.views_used.to_string(),
            r.scanned_pages.to_string(),
            format!("{:.3}", r.fullscan_ms),
        ]);
    }
    table
}

/// Renders the summary over all configurations.
pub fn summary_table(results: &[Fig5Result]) -> Table {
    let mut table = Table::new(
        "Figure 5 summary: accumulated response time over the sequence",
        &[
            "selectivity",
            "max views",
            "fullscan total s",
            "adaptive total s",
            "speedup",
            "max views used",
            "final views",
        ],
    );
    for r in results {
        table.add_row(vec![
            format!("{:.0}%", r.selectivity * 100.0),
            r.max_views.to_string(),
            format!("{:.2}", r.fullscan_total_s),
            format!("{:.2}", r.adaptive_total_s),
            format!("{:.2}x", r.fullscan_total_s / r.adaptive_total_s.max(1e-9)),
            r.max_views_used.to_string(),
            r.final_views.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_multi_view_run_uses_views() {
        let result = run_config(&asv_vmem::SimBackend::new(), 0.05, 50, &Scale::tiny(), 5);
        assert_eq!(result.rows.len(), Scale::tiny().num_queries);
        assert!(result.final_views >= 1);
        assert!(result.max_views_used >= 1);
        assert!(result.adaptive_total_s > 0.0);
        let t = to_table(&result);
        assert_eq!(t.num_rows(), result.rows.len());
        let s = summary_table(std::slice::from_ref(&result));
        assert_eq!(s.num_rows(), 1);
    }
}
