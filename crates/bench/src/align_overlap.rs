//! align-overlap — query throughput *during* update alignment.
//!
//! Beyond the paper: measures what the background (epoch-handoff)
//! alignment buys over the stop-the-world call. The setup mirrors
//! Figure 7 (five partial views over 1/1024-ths of the domain, one
//! uniform update batch), but instead of only timing the alignment it
//! counts how many range queries the column answers *while* the batch is
//! being aligned:
//!
//! * **sync** — `align_views` blocks the column for the whole batch; by
//!   construction zero queries run during alignment.
//! * **background** — `align_views_async` ships the planning to the
//!   epoch-handoff worker; the driver pumps queries (answered on the
//!   pre-batch view epoch) until the plan is ready, then publishes it.
//!
//! Both modes then answer the same post-publish query sequence; its
//! checksum must match across modes (asserted here), since background and
//! synchronous alignment produce identical view layouts.

use asv_core::{
    build_view_for_range_with, AdaptiveColumn, AdaptiveConfig, CreationOptions, Parallelism,
    RangeQuery,
};
use asv_util::Timer;
use asv_vmem::Backend;
use asv_workloads::{Distribution, UpdateWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fig7;
use crate::report::Table;
use crate::scale::Scale;

/// Post-publish queries per cell (throughput baseline + cross-mode
/// answer check).
pub const QUERIES_AFTER: usize = 48;
/// Distinct probe queries the during-alignment loop cycles through.
const QUERY_POOL: usize = 32;
/// Safety bound on the during-alignment loop (the worker always finishes;
/// this only guards against pathological scheduling).
const MAX_QUERIES_DURING: usize = 1_000_000;

/// One measured (mode, batch size) cell.
#[derive(Clone, Debug)]
pub struct OverlapRow {
    /// Alignment mode (`sync` / `background`).
    pub mode: String,
    /// Number of updates in the batch.
    pub batch_size: usize,
    /// Wall time from alignment start until the aligned views were
    /// published, in milliseconds.
    pub align_wall_ms: f64,
    /// Queries answered between alignment start and publish.
    pub queries_during: usize,
    /// Query throughput during alignment (queries/s; 0 for sync).
    pub qps_during: f64,
    /// Query throughput after publish (queries/s).
    pub qps_after: f64,
    /// `(view, page)` additions performed by the alignment.
    pub pages_added: usize,
    /// `(view, page)` removals performed by the alignment.
    pub pages_removed: usize,
    /// Checksum over the post-publish query answers (must be identical
    /// across modes for the same batch size).
    pub checksum_after: u128,
}

/// Builds the Figure-7 column with the five partial views installed.
fn build_column<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> AdaptiveColumn<B> {
    let dist = Distribution::Uniform {
        max_value: u64::MAX,
    };
    let values = dist.generate_pages(scale.fig7_pages, seed);
    let config = AdaptiveConfig::default()
        .with_adaptive_creation(false)
        .with_parallelism(parallelism);
    let mut col = AdaptiveColumn::from_values(backend.clone(), &values, config).expect("column");
    for range in fig7::draw_view_ranges(seed ^ 0xF167) {
        let (buffer, _) =
            build_view_for_range_with(col.column(), &range, &CreationOptions::ALL, parallelism)
                .expect("view creation");
        col.install_view(range, buffer);
    }
    col
}

/// Probe queries: sub-ranges of the installed view ranges, so the queries
/// route through exactly the views being re-aligned.
fn probe_queries(seed: u64) -> Vec<RangeQuery> {
    let ranges = fig7::draw_view_ranges(seed ^ 0xF167);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0E41);
    (0..QUERY_POOL)
        .map(|_| {
            let view = &ranges[rng.gen_range(0..ranges.len())];
            let width = (view.width() / 8).max(1);
            let lo = view.low() + rng.gen_range(0..=view.width() - width);
            RangeQuery::new(lo, lo + width - 1)
        })
        .collect()
}

fn run_one<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
    batch_size: usize,
    background: bool,
) -> OverlapRow {
    let mut col = build_column(backend, scale, seed, parallelism);
    let queries = probe_queries(seed);
    let writes = UpdateWorkload::new(seed ^ batch_size as u64).uniform_writes(
        batch_size,
        col.column().num_rows(),
        u64::MAX,
    );
    let updates = col.write_batch(&writes);

    let timer = Timer::start();
    let mut queries_during = 0usize;
    let stats = if background {
        col.align_views_async(&updates).expect("async alignment");
        loop {
            if let Some(stats) = col.poll_aligned_views().expect("poll") {
                break stats;
            }
            if queries_during >= MAX_QUERIES_DURING {
                break col
                    .publish_aligned_views()
                    .expect("publish")
                    .expect("a plan was pending");
            }
            let q = &queries[queries_during % queries.len()];
            col.query(q).expect("mid-alignment query");
            queries_during += 1;
        }
    } else {
        col.align_views(&updates).expect("sync alignment")
    };
    let align_wall_ms = timer.elapsed_ms();

    let after_timer = Timer::start();
    let mut checksum_after = 0u128;
    for i in 0..QUERIES_AFTER {
        let out = col.query(&queries[i % queries.len()]).expect("query");
        checksum_after = checksum_after
            .wrapping_add(out.sum)
            .wrapping_add(out.count as u128);
    }
    let after_ms = after_timer.elapsed_ms();

    OverlapRow {
        mode: if background { "background" } else { "sync" }.to_string(),
        batch_size,
        align_wall_ms,
        queries_during,
        qps_during: if align_wall_ms > 0.0 {
            queries_during as f64 / (align_wall_ms / 1e3)
        } else {
            0.0
        },
        qps_after: if after_ms > 0.0 {
            QUERIES_AFTER as f64 / (after_ms / 1e3)
        } else {
            0.0
        },
        pages_added: stats.pages_added,
        pages_removed: stats.pages_removed,
        checksum_after,
    }
}

/// Runs the overlap experiment: every Figure-7 batch size, sync vs
/// background, on `backend`.
pub fn run_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<OverlapRow> {
    let mut rows = Vec::new();
    for &batch_size in &scale.fig7_batch_sizes {
        let sync = run_one(backend, scale, seed, parallelism, batch_size, false);
        let background = run_one(backend, scale, seed, parallelism, batch_size, true);
        assert_eq!(
            sync.checksum_after, background.checksum_after,
            "batch {batch_size}: sync and background answers diverge after publish"
        );
        assert_eq!(
            (sync.pages_added, sync.pages_removed),
            (background.pages_added, background.pages_removed),
            "batch {batch_size}: sync and background alignments diverge"
        );
        rows.push(sync);
        rows.push(background);
    }
    rows
}

/// [`run_with`] at the default (sequential) scan parallelism.
pub fn run<B: Backend>(backend: &B, scale: &Scale, seed: u64) -> Vec<OverlapRow> {
    run_with(backend, scale, seed, Parallelism::Sequential)
}

/// Renders the overlap rows.
pub fn to_table(rows: &[OverlapRow]) -> Table {
    let mut table = Table::new(
        "align-overlap: query throughput during view alignment (sync vs background)",
        &[
            "mode",
            "batch size",
            "align wall ms",
            "queries during",
            "qps during",
            "qps after",
            "pages added",
            "pages removed",
        ],
    );
    for r in rows {
        table.add_row(vec![
            r.mode.clone(),
            r.batch_size.to_string(),
            format!("{:.2}", r.align_wall_ms),
            r.queries_during.to_string(),
            format!("{:.0}", r.qps_during),
            format!("{:.0}", r.qps_after),
            r.pages_added.to_string(),
            r.pages_removed.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_covers_both_modes_and_agrees_across_them() {
        let scale = Scale::tiny();
        let rows = run(&asv_vmem::SimBackend::new(), &scale, 7);
        assert_eq!(rows.len(), 2 * scale.fig7_batch_sizes.len());
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].mode, "sync");
            assert_eq!(pair[1].mode, "background");
            assert_eq!(pair[0].batch_size, pair[1].batch_size);
            assert_eq!(pair[0].queries_during, 0, "sync blocks all queries");
            assert_eq!(pair[0].checksum_after, pair[1].checksum_after);
            assert!(pair[0].align_wall_ms >= 0.0 && pair[1].align_wall_ms >= 0.0);
        }
        let table = to_table(&rows);
        assert_eq!(table.num_rows(), rows.len());
    }
}
