//! align-overlap — query + write throughput *during* update alignment.
//!
//! Beyond the paper: measures what background (epoch-handoff) alignment,
//! chunked publishing and the pending-writes queue buy over the
//! stop-the-world call. The setup mirrors Figure 7 (five partial views
//! over 1/1024-ths of the domain, one uniform update batch), but instead
//! of only timing the alignment it sweeps **chunk size × write rate** and
//! records what happens *while* the batch is being aligned:
//!
//! * **sync** — `align_views` blocks the column for the whole batch; by
//!   construction zero queries run during alignment and the single
//!   query-excluding window spans the entire batch (reported as the
//!   publish latency).
//! * **background** — `align_views_async` ships the planning to the
//!   epoch-handoff worker with the configured
//!   [`asv_core::AlignChunking::chunk_updates`]; the driver pumps queries
//!   (answered on the pre-batch view epoch, overlay-corrected) and, at the
//!   configured write rate, submits write bursts that are *queued
//!   mid-alignment* and folded into follow-up rounds automatically. The
//!   loop polls one chunk at a time until every round has drained, so the
//!   reported publish-latency percentiles are per-chunk — the quantity
//!   chunking bounds.
//!
//! Every background cell is checked against a synchronous twin that
//! applies the same base batch and the same queued bursts with
//! stop-the-world alignments: the post-drain answer checksums must match.

use asv_core::{
    build_view_for_range_with, AdaptiveColumn, AdaptiveConfig, AlignChunking, ChunkPublishStats,
    CreationOptions, Parallelism, RangeQuery,
};
use asv_util::Timer;
use asv_vmem::Backend;
use asv_workloads::{Distribution, MixedOp, MixedSpec, MixedWorkload, UpdateWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fig7;
use crate::report::Table;
use crate::scale::Scale;

/// Post-drain queries per cell (throughput baseline + cross-mode answer
/// check).
pub const QUERIES_AFTER: usize = 48;
/// Distinct probe queries the during-alignment loop cycles through.
const QUERY_POOL: usize = 32;
/// Safety bound on the during-alignment loop (the worker always finishes;
/// this only guards against pathological scheduling).
const MAX_QUERIES_DURING: usize = 1_000_000;

/// Sweep parameters of the overlap experiment.
#[derive(Clone, Debug)]
pub struct OverlapConfig {
    /// Chunk sizes (updates per published chunk) swept per batch size.
    /// `None` derives `[0, max(batch / 8, 1)]` per batch (0 = unchunked).
    pub chunk_sizes: Option<Vec<usize>>,
    /// Write rates swept: a burst is queued every `write_every`
    /// during-alignment queries (0 = read-only during alignment).
    pub write_everys: Vec<usize>,
    /// Writes per queued burst.
    pub write_burst: usize,
    /// Maximum bursts queued per cell (bounds the auto-fold cascade).
    pub max_bursts: usize,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        Self {
            chunk_sizes: None,
            write_everys: vec![0, 8],
            write_burst: 32,
            max_bursts: 6,
        }
    }
}

impl OverlapConfig {
    /// The chunk sizes swept for `batch_size`.
    fn chunk_sizes_for(&self, batch_size: usize) -> Vec<usize> {
        match &self.chunk_sizes {
            Some(sizes) => sizes.clone(),
            None => {
                let derived = (batch_size / 8).max(1);
                if derived > 1 {
                    vec![0, derived]
                } else {
                    vec![0]
                }
            }
        }
    }
}

/// One measured cell of the sweep.
#[derive(Clone, Debug)]
pub struct OverlapRow {
    /// Alignment mode (`sync` / `background`).
    pub mode: String,
    /// Number of updates in the base batch.
    pub batch_size: usize,
    /// Updates per published chunk (0 = whole batch in one epoch).
    pub chunk_updates: usize,
    /// A write burst was queued every this many during-alignment queries
    /// (0 = none).
    pub write_every: usize,
    /// Writes acknowledged mid-alignment (queued + auto-folded).
    pub writes_queued: usize,
    /// Wall time from alignment start until every round had drained, in
    /// milliseconds.
    pub align_wall_ms: f64,
    /// Queries answered between alignment start and final drain.
    pub queries_during: usize,
    /// Query throughput during alignment (queries/s; 0 for sync).
    pub qps_during: f64,
    /// Query throughput after the drain (queries/s).
    pub qps_after: f64,
    /// Chunks (epochs) published.
    pub chunks_published: usize,
    /// Median per-chunk publish latency in milliseconds (the
    /// query-excluding window; for sync, the whole alignment call).
    pub publish_p50_ms: f64,
    /// 95th-percentile per-chunk publish latency in milliseconds.
    pub publish_p95_ms: f64,
    /// Largest per-chunk publish latency in milliseconds.
    pub publish_max_ms: f64,
    /// `(view, page)` additions performed across all rounds.
    pub pages_added: usize,
    /// `(view, page)` removals performed across all rounds.
    pub pages_removed: usize,
    /// Checksum over the post-drain query answers (must be identical to
    /// the synchronous twin fed the same writes).
    pub checksum_after: u128,
}

/// Builds the Figure-7 column with the five partial views installed.
fn build_column<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
    chunk_updates: usize,
) -> AdaptiveColumn<B> {
    let dist = Distribution::Uniform {
        max_value: u64::MAX,
    };
    let values = dist.generate_pages(scale.fig7_pages, seed);
    let config = AdaptiveConfig::default()
        .with_adaptive_creation(false)
        .with_parallelism(parallelism)
        .with_chunking(AlignChunking::default().with_chunk_updates(chunk_updates));
    let mut col = AdaptiveColumn::from_values(backend.clone(), &values, config).expect("column");
    for range in fig7::draw_view_ranges(seed ^ 0xF167) {
        let (buffer, _) =
            build_view_for_range_with(col.column(), &range, &CreationOptions::ALL, parallelism)
                .expect("view creation");
        col.install_view(range, buffer);
    }
    col
}

/// Probe queries: sub-ranges of the installed view ranges, so the queries
/// route through exactly the views being re-aligned.
fn probe_queries(seed: u64) -> Vec<RangeQuery> {
    let ranges = fig7::draw_view_ranges(seed ^ 0xF167);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0E41);
    (0..QUERY_POOL)
        .map(|_| {
            let view = &ranges[rng.gen_range(0..ranges.len())];
            let width = (view.width() / 8).max(1);
            let lo = view.low() + rng.gen_range(0..=view.width() - width);
            RangeQuery::new(lo, lo + width - 1)
        })
        .collect()
}

/// The write bursts a cell may queue mid-alignment, drawn from the mixed
/// read/write stream generator.
fn queued_bursts(seed: u64, num_rows: usize, cfg: &OverlapConfig) -> Vec<Vec<(usize, u64)>> {
    let spec = MixedSpec {
        num_ops: cfg.max_bursts,
        write_every: 1,
        writes_per_burst: cfg.write_burst,
        query_width: 1,
        max_value: u64::MAX,
    };
    MixedWorkload::new(seed ^ 0xB00C)
        .ops(&spec, num_rows)
        .into_iter()
        .filter_map(|op| match op {
            MixedOp::WriteBatch(writes) => Some(writes),
            MixedOp::Query(_) => None,
        })
        .collect()
}

/// Post-drain throughput + answer checksum.
fn measure_after<B: Backend>(col: &mut AdaptiveColumn<B>, queries: &[RangeQuery]) -> (f64, u128) {
    let timer = Timer::start();
    let mut checksum = 0u128;
    for i in 0..QUERIES_AFTER {
        let out = col.query(&queries[i % queries.len()]).expect("query");
        checksum = checksum
            .wrapping_add(out.sum)
            .wrapping_add(out.count as u128);
    }
    let ms = timer.elapsed_ms();
    let qps = if ms > 0.0 {
        QUERIES_AFTER as f64 / (ms / 1e3)
    } else {
        0.0
    };
    (qps, checksum)
}

/// Runs one background cell; returns the row plus the bursts it queued
/// (so the synchronous twin can replay exactly the same writes).
#[allow(clippy::too_many_arguments)]
fn run_background<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
    batch_size: usize,
    chunk_updates: usize,
    write_every: usize,
    cfg: &OverlapConfig,
) -> (OverlapRow, usize) {
    let mut col = build_column(backend, scale, seed, parallelism, chunk_updates);
    let queries = probe_queries(seed);
    let writes = UpdateWorkload::new(seed ^ batch_size as u64).uniform_writes(
        batch_size,
        col.column().num_rows(),
        u64::MAX,
    );
    let bursts = queued_bursts(seed, col.column().num_rows(), cfg);
    let updates = col.write_batch(&writes);

    let timer = Timer::start();
    let mut queries_during = 0usize;
    let mut bursts_used = 0usize;
    let mut writes_queued = 0usize;
    let mut pages_added = 0usize;
    let mut pages_removed = 0usize;
    col.align_views_async(&updates).expect("async alignment");
    // The first burst arrives right after the round starts (alignment is
    // pending until the first poll, so this is guaranteed to be queued);
    // further bursts follow every `write_every` queries.
    if write_every > 0 && !bursts.is_empty() {
        col.write_batch(&bursts[0]);
        writes_queued += bursts[0].len();
        bursts_used = 1;
    }
    while col.alignment_pending() {
        if let Some(stats) = col.poll_aligned_views().expect("poll") {
            pages_added += stats.pages_added;
            pages_removed += stats.pages_removed;
            continue;
        }
        if queries_during >= MAX_QUERIES_DURING {
            let stats = col
                .flush_pending_writes()
                .expect("flush")
                .expect("work was pending");
            pages_added += stats.pages_added;
            pages_removed += stats.pages_removed;
            break;
        }
        let q = &queries[queries_during % queries.len()];
        col.query(q).expect("mid-alignment query");
        queries_during += 1;
        if write_every > 0
            && queries_during.is_multiple_of(write_every)
            && bursts_used < bursts.len()
        {
            let burst = &bursts[bursts_used];
            col.write_batch(burst);
            writes_queued += burst.len();
            bursts_used += 1;
        }
    }
    let align_wall_ms = timer.elapsed_ms();
    let publish = ChunkPublishStats::from_records(col.take_chunk_records());
    let (qps_after, checksum_after) = measure_after(&mut col, &queries);

    let row = OverlapRow {
        mode: "background".to_string(),
        batch_size,
        chunk_updates,
        write_every,
        writes_queued,
        align_wall_ms,
        queries_during,
        qps_during: if align_wall_ms > 0.0 {
            queries_during as f64 / (align_wall_ms / 1e3)
        } else {
            0.0
        },
        qps_after,
        chunks_published: publish.len(),
        publish_p50_ms: publish.publish_ms_percentile(50.0),
        publish_p95_ms: publish.publish_ms_percentile(95.0),
        publish_max_ms: publish.max_publish_ms(),
        pages_added,
        pages_removed,
        checksum_after,
    };
    (row, bursts_used)
}

/// Runs the synchronous twin of a cell: the same base batch, then the same
/// `bursts_used` bursts, each applied directly and aligned stop-the-world.
fn run_sync<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
    batch_size: usize,
    bursts_used: usize,
    cfg: &OverlapConfig,
) -> OverlapRow {
    let mut col = build_column(backend, scale, seed, parallelism, 0);
    let queries = probe_queries(seed);
    let writes = UpdateWorkload::new(seed ^ batch_size as u64).uniform_writes(
        batch_size,
        col.column().num_rows(),
        u64::MAX,
    );
    let bursts = queued_bursts(seed, col.column().num_rows(), cfg);

    // Each stop-the-world alignment call is one query-excluding window;
    // reuse the per-chunk collector so sync and background percentiles
    // come from the same nearest-rank implementation.
    let mut publish = ChunkPublishStats::new();
    let mut record_window = |index: usize, updates: usize, duration| {
        publish.record(asv_core::ChunkPublishRecord {
            chunk_index: index,
            updates,
            pages_added: 0,
            pages_removed: 0,
            publish_time: duration,
            generation: index as u64 + 1,
        });
    };

    let timer = Timer::start();
    let updates = col.write_batch(&writes);
    let batch_timer = Timer::start();
    let mut stats = col.align_views(&updates).expect("sync alignment");
    record_window(0, updates.len(), batch_timer.elapsed());
    let mut writes_queued = 0usize;
    for (i, burst) in bursts.iter().take(bursts_used).enumerate() {
        let updates = col.write_batch(burst);
        let burst_timer = Timer::start();
        stats.absorb(&col.align_views(&updates).expect("sync burst alignment"));
        record_window(i + 1, updates.len(), burst_timer.elapsed());
        writes_queued += burst.len();
    }
    let align_wall_ms = timer.elapsed_ms();
    let (qps_after, checksum_after) = measure_after(&mut col, &queries);

    OverlapRow {
        mode: "sync".to_string(),
        batch_size,
        chunk_updates: 0,
        write_every: 0,
        writes_queued,
        align_wall_ms,
        queries_during: 0,
        qps_during: 0.0,
        qps_after,
        chunks_published: publish.len(),
        publish_p50_ms: publish.publish_ms_percentile(50.0),
        publish_p95_ms: publish.publish_ms_percentile(95.0),
        publish_max_ms: publish.max_publish_ms(),
        pages_added: stats.pages_added,
        pages_removed: stats.pages_removed,
        checksum_after,
    }
}

/// Runs the overlap sweep: every Figure-7 batch size × chunk size × write
/// rate, background cells checked against synchronous twins, on `backend`.
pub fn run_with_config<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
    cfg: &OverlapConfig,
) -> Vec<OverlapRow> {
    let mut rows = Vec::new();
    for &batch_size in &scale.fig7_batch_sizes {
        // The read-only stop-the-world baseline.
        rows.push(run_sync(
            backend,
            scale,
            seed,
            parallelism,
            batch_size,
            0,
            cfg,
        ));
        for &chunk_updates in &cfg.chunk_sizes_for(batch_size) {
            for &write_every in &cfg.write_everys {
                let (row, bursts_used) = run_background(
                    backend,
                    scale,
                    seed,
                    parallelism,
                    batch_size,
                    chunk_updates,
                    write_every,
                    cfg,
                );
                // Cross-mode check: a synchronous twin fed the identical
                // base batch + queued bursts must answer identically.
                let twin = run_sync(
                    backend,
                    scale,
                    seed,
                    parallelism,
                    batch_size,
                    bursts_used,
                    cfg,
                );
                assert_eq!(
                    row.checksum_after, twin.checksum_after,
                    "batch {batch_size} chunk {chunk_updates} rate {write_every}: \
                     background and sync answers diverge after drain"
                );
                rows.push(row);
            }
        }
    }
    rows
}

/// [`run_with_config`] with the default sweep.
pub fn run_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<OverlapRow> {
    run_with_config(backend, scale, seed, parallelism, &OverlapConfig::default())
}

/// [`run_with`] at the default (sequential) scan parallelism.
pub fn run<B: Backend>(backend: &B, scale: &Scale, seed: u64) -> Vec<OverlapRow> {
    run_with(backend, scale, seed, Parallelism::Sequential)
}

/// Renders the overlap rows.
pub fn to_table(rows: &[OverlapRow]) -> Table {
    let mut table = Table::new(
        "align-overlap: query/write throughput during view alignment (chunk size × write rate)",
        &[
            "mode",
            "batch size",
            "chunk updates",
            "write every",
            "writes queued",
            "align wall ms",
            "queries during",
            "qps during",
            "qps after",
            "chunks",
            "publish p50 ms",
            "publish p95 ms",
            "publish max ms",
            "pages added",
            "pages removed",
        ],
    );
    for r in rows {
        table.add_row(vec![
            r.mode.clone(),
            r.batch_size.to_string(),
            r.chunk_updates.to_string(),
            r.write_every.to_string(),
            r.writes_queued.to_string(),
            format!("{:.2}", r.align_wall_ms),
            r.queries_during.to_string(),
            format!("{:.0}", r.qps_during),
            format!("{:.0}", r.qps_after),
            r.chunks_published.to_string(),
            format!("{:.4}", r.publish_p50_ms),
            format!("{:.4}", r.publish_p95_ms),
            format!("{:.4}", r.publish_max_ms),
            r.pages_added.to_string(),
            r.pages_removed.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_covers_modes_chunks_and_write_rates() {
        let scale = Scale::tiny();
        let cfg = OverlapConfig {
            chunk_sizes: Some(vec![0, 4]),
            write_everys: vec![0, 4],
            write_burst: 8,
            max_bursts: 2,
        };
        let rows = run_with_config(
            &asv_vmem::SimBackend::new(),
            &scale,
            7,
            Parallelism::Sequential,
            &cfg,
        );
        // Per batch size: 1 sync baseline + 2 chunk sizes × 2 write rates.
        assert_eq!(rows.len(), scale.fig7_batch_sizes.len() * 5);
        for batch_rows in rows.chunks(5) {
            let sync = &batch_rows[0];
            assert_eq!(sync.mode, "sync");
            assert_eq!(sync.queries_during, 0, "sync blocks all queries");
            assert_eq!(sync.writes_queued, 0, "baseline queues nothing");
            for bg in &batch_rows[1..] {
                assert_eq!(bg.mode, "background");
                assert_eq!(bg.batch_size, sync.batch_size);
                assert!(bg.chunks_published >= 1);
                assert!(bg.publish_p50_ms <= bg.publish_p95_ms + 1e-9);
                assert!(bg.publish_p95_ms <= bg.publish_max_ms + 1e-9);
                if bg.write_every == 0 {
                    assert_eq!(bg.writes_queued, 0);
                    // Identical logical writes: checksum equals the
                    // read-only sync baseline.
                    assert_eq!(bg.checksum_after, sync.checksum_after);
                } else {
                    assert!(
                        bg.writes_queued >= cfg.write_burst,
                        "the first burst is always queued mid-alignment"
                    );
                }
                if bg.chunk_updates > 0 && bg.batch_size > bg.chunk_updates {
                    assert!(
                        bg.chunks_published > 1,
                        "chunking splits batch {} into epochs",
                        bg.batch_size
                    );
                }
            }
        }
        let table = to_table(&rows);
        assert_eq!(table.num_rows(), rows.len());
    }
}
