//! The `incremental-align` experiment: dependency-graph-driven incremental
//! alignment vs full replanning (new experiment, beyond the paper).
//!
//! A linearly clustered [`ServeTable`] column with `V` installed views
//! partitioning the value domain is driven through seeded hot-zone-churn
//! rounds ([`asv_workloads::UpdateWorkload::hot_zone_churn`]): every
//! round's writes fall into one contiguous row window with page-local
//! values, so only the views whose predicate range overlaps that slice of
//! the domain are affected. The sweep crosses view counts with touch
//! fractions and runs each cell twice:
//!
//! * **incremental** — the dependency graph prunes the fold to the views
//!   whose ranges intersect the written zones' bands, and the serve loop
//!   drains the per-view delta queue item by item;
//! * **full** — every live view is replanned each round (the pre-delta
//!   baseline, kept as the correctness twin).
//!
//! Correctness is gated before any numbers are reported: both variants
//! must produce the **bit-identical answer set** over one range query per
//! installed view after every round. The harness reports the
//! planned-views/candidate-views ratio (the fraction of planning work the
//! dependency graph could not prune) and the p50/p95/p99 per-item publish
//! latency. The per-variant answer tables are exported so
//! `experiments compare DIR_inc DIR_full --max-delta-pct 0` gates the
//! equivalence on the rendered CSV bytes.

use std::time::Instant;

use asv_core::{AdaptiveConfig, AlignChunking, Parallelism, ServeTable};
use asv_util::ValueRange;
use asv_vmem::{Backend, VALUES_PER_PAGE};
use asv_workloads::{ChurnRound, Distribution, UpdateWorkload, DEFAULT_MAX_VALUE};

use crate::report::Table;
use crate::scale::Scale;

/// The two measured variants, in export order.
pub const VARIANTS: [&str; 2] = ["incremental", "full"];

/// The answer of one per-view range query — the equivalence witness
/// asserted across variants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncAnswer {
    /// Qualifying rows.
    pub count: u64,
    /// Sum of qualifying values.
    pub sum: u128,
}

impl IncAnswer {
    /// A compact exact witness, rendered as a non-numeric label so the
    /// `compare` subcommand requires byte equality instead of a float
    /// tolerance.
    pub fn checksum_label(&self) -> String {
        format!("x{:x}", self.sum)
    }
}

/// One measured (view count, touch fraction, variant) cell.
#[derive(Clone, Debug)]
pub struct IncCell {
    /// Installed views.
    pub views: usize,
    /// Touch fraction in per mille of the rows.
    pub touch_permille: usize,
    /// `"incremental"` or `"full"`.
    pub variant: &'static str,
    /// Alignment rounds folded.
    pub align_rounds: u64,
    /// Views snapshotted and replanned across all rounds.
    pub planned_views: u64,
    /// Live views at fold time, summed across all rounds (the work a
    /// full replan performs).
    pub candidate_views: u64,
    /// Delta work items published.
    pub published_items: u64,
    /// Median per-item publish latency, microseconds.
    pub publish_p50_us: f64,
    /// 95th-percentile per-item publish latency, microseconds.
    pub publish_p95_us: f64,
    /// 99th-percentile per-item publish latency, microseconds.
    pub publish_p99_us: f64,
    /// Wall-clock time of the whole run (writes + maintenance + reads),
    /// milliseconds.
    pub wall_ms: f64,
    /// Every answer as `(round, view, answer)`, sorted.
    pub answers: Vec<(usize, usize, IncAnswer)>,
    /// Checksum folding every answer in (round, view) order.
    pub checksum: u64,
}

impl IncCell {
    /// Fraction of the full-replan planning work this variant performed
    /// (1.0 = no pruning).
    pub fn planned_ratio(&self) -> f64 {
        if self.candidate_views == 0 {
            return 1.0;
        }
        self.planned_views as f64 / self.candidate_views as f64
    }
}

/// The full result of one `incremental-align` run.
#[derive(Clone, Debug)]
pub struct IncReport {
    /// Cells in sweep order: for every (views, touch) pair the
    /// incremental cell, then its full-replan twin.
    pub cells: Vec<IncCell>,
    /// Churn rounds per cell.
    pub rounds: usize,
    /// Writes per churn round.
    pub writes_per_round: usize,
    /// Rows of the column.
    pub num_rows: usize,
}

impl IncReport {
    /// The smallest planned-views/candidate-views ratio any incremental
    /// cell achieved — the headline pruning number.
    pub fn best_planned_ratio(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.variant == "incremental")
            .map(IncCell::planned_ratio)
            .fold(1.0, f64::min)
    }
}

/// `V` contiguous views partitioning `[0, max_value]`.
fn view_ranges(views: usize, max_value: u64) -> Vec<ValueRange> {
    let width = (max_value / views as u64).max(1);
    (0..views as u64)
        .map(|i| {
            let lo = i * width;
            let hi = if i + 1 == views as u64 {
                max_value
            } else {
                (i + 1) * width - 1
            };
            ValueRange::new(lo, hi.max(lo))
        })
        .collect()
}

fn config_for(parallelism: Parallelism, incremental: bool) -> AdaptiveConfig {
    AdaptiveConfig::default()
        .with_parallelism(parallelism)
        .with_chunking(
            AlignChunking::default()
                .with_chunk_updates(64)
                .with_group_commit_idle(0)
                .with_incremental_align(incremental),
        )
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fold_answers(answers: &[(usize, usize, IncAnswer)]) -> u64 {
    answers.iter().fold(0u64, |acc, &(k, v, a)| {
        let mut h = splitmix64(acc ^ ((k as u64) << 32) ^ v as u64);
        h = splitmix64(h ^ a.count);
        h = splitmix64(h ^ a.sum as u64);
        splitmix64(h ^ (a.sum >> 64) as u64)
    })
}

fn percentile_us(samples_us: &mut [u64], pct: f64) -> f64 {
    if samples_us.is_empty() {
        return 0.0;
    }
    samples_us.sort_unstable();
    let idx = ((samples_us.len() as f64) * pct / 100.0).ceil() as usize;
    samples_us[idx.saturating_sub(1).min(samples_us.len() - 1)] as f64
}

/// Runs one (views, touch, variant) cell.
#[allow(clippy::too_many_arguments)]
fn run_cell<B: Backend>(
    backend: &B,
    parallelism: Parallelism,
    values: &[u64],
    ranges: &[ValueRange],
    churn: &[ChurnRound],
    views: usize,
    touch_permille: usize,
    incremental: bool,
) -> IncCell {
    let mut table = ServeTable::new(backend.clone(), config_for(parallelism, incremental));
    let col = table.add_column(values).expect("column materialization");
    for range in ranges {
        table.install_view(col, *range).expect("view installation");
    }
    let handle = table.handle();

    let mut answers = Vec::new();
    let started = Instant::now();
    for (k, round) in churn.iter().enumerate() {
        table.write_batch(col, &round.writes);
        table.quiesce().expect("quiesce");
        let snap = handle.pin();
        for (v, range) in ranges.iter().enumerate() {
            let out = snap.query_range(col, range);
            answers.push((
                k,
                v,
                IncAnswer {
                    count: out.count,
                    sum: out.sum,
                },
            ));
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
    let activity = table.align_activity();
    let mut publish_us = table.drain_publish_micros();
    answers.sort_by_key(|&(k, v, _)| (k, v));
    let checksum = fold_answers(&answers);
    IncCell {
        views,
        touch_permille,
        variant: if incremental { "incremental" } else { "full" },
        align_rounds: activity.rounds,
        planned_views: activity.planned_views,
        candidate_views: activity.candidate_views,
        published_items: activity.published_items,
        publish_p50_us: percentile_us(&mut publish_us, 50.0),
        publish_p95_us: percentile_us(&mut publish_us, 95.0),
        publish_p99_us: percentile_us(&mut publish_us, 99.0),
        wall_ms,
        answers,
        checksum,
    }
}

/// Runs the view-count x touch-fraction sweep on `backend`.
///
/// # Panics
/// Panics if any incremental cell's answer set deviates from its
/// full-replan twin's — the pruned planner must be exact before its
/// pruning ratio means anything.
pub fn run_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> IncReport {
    let num_rows = scale.inc_pages * VALUES_PER_PAGE;
    let max_value = DEFAULT_MAX_VALUE;
    let values = Distribution::Linear { max_value }.generate_pages(scale.inc_pages, seed);

    let mut cells = Vec::new();
    for &views in &scale.inc_view_counts {
        let ranges = view_ranges(views, max_value);
        for &touch in &scale.inc_touch_permille {
            let churn = UpdateWorkload::new(seed ^ (views as u64) << 20 ^ touch as u64)
                .hot_zone_churn(
                    scale.inc_rounds,
                    scale.inc_writes_per_round,
                    num_rows,
                    touch as f64 / 1_000.0,
                    max_value,
                );
            let inc = run_cell(
                backend,
                parallelism,
                &values,
                &ranges,
                &churn,
                views,
                touch,
                true,
            );
            let full = run_cell(
                backend,
                parallelism,
                &values,
                &ranges,
                &churn,
                views,
                touch,
                false,
            );
            assert_eq!(
                inc.answers, full.answers,
                "incremental diverged from the full-replan twin \
                 ({views} views, {touch} permille touch)"
            );
            assert_eq!(inc.checksum, full.checksum);
            assert!(
                inc.planned_views <= inc.candidate_views,
                "the dependency graph can only prune, never add work"
            );
            assert_eq!(
                full.planned_views, full.candidate_views,
                "the full twin replans every live view"
            );
            cells.push(inc);
            cells.push(full);
        }
    }
    IncReport {
        cells,
        rounds: scale.inc_rounds,
        writes_per_round: scale.inc_writes_per_round,
        num_rows,
    }
}

/// Renders the sweep cells.
pub fn to_table(report: &IncReport) -> Table {
    let mut table = Table::new(
        format!(
            "Incremental alignment: dependency-pruned vs full replanning \
             ({} churn rounds x {} writes, {} rows)",
            report.rounds, report.writes_per_round, report.num_rows
        ),
        &[
            "views",
            "touch \u{2030}",
            "variant",
            "folds",
            "planned",
            "candidates",
            "ratio",
            "items",
            "pub p50 us",
            "pub p95 us",
            "pub p99 us",
            "wall ms",
            "checksum",
        ],
    );
    for cell in &report.cells {
        table.add_row(vec![
            cell.views.to_string(),
            cell.touch_permille.to_string(),
            cell.variant.to_string(),
            cell.align_rounds.to_string(),
            cell.planned_views.to_string(),
            cell.candidate_views.to_string(),
            format!("{:.3}", cell.planned_ratio()),
            cell.published_items.to_string(),
            format!("{:.1}", cell.publish_p50_us),
            format!("{:.1}", cell.publish_p95_us),
            format!("{:.1}", cell.publish_p99_us),
            format!("{:.2}", cell.wall_ms),
            format!("x{:x}", cell.checksum),
        ]);
    }
    table
}

/// Renders one variant's full answer set as an exact-match table (counts
/// are plain integers, sums non-numeric labels), for
/// `experiments compare ... --max-delta-pct 0` across variants.
pub fn answers_table(report: &IncReport, variant: &str) -> Table {
    let mut table = Table::new(
        "Incremental-alignment answers (identical for both variants)",
        &[
            "views",
            "touch \u{2030}",
            "round",
            "view",
            "count",
            "checksum",
        ],
    );
    for cell in report.cells.iter().filter(|c| c.variant == variant) {
        for &(k, v, a) in &cell.answers {
            table.add_row(vec![
                cell.views.to_string(),
                cell.touch_permille.to_string(),
                k.to_string(),
                v.to_string(),
                a.count.to_string(),
                a.checksum_label(),
            ]);
        }
    }
    table
}

/// Builds the one-line JSON record appended to
/// `BENCH_incremental_align.json` after every run — the tracked perf
/// history (hand-rendered: the harness has no JSON dependency).
pub fn bench_json_line(
    report: &IncReport,
    backend: &str,
    scale: &str,
    seed: u64,
    threads: &str,
    unix_ms: u128,
) -> String {
    let mut cells = String::new();
    for (i, cell) in report.cells.iter().enumerate() {
        if i > 0 {
            cells.push(',');
        }
        cells.push_str(&format!(
            "{{\"views\":{},\"touch_permille\":{},\"variant\":\"{}\",\
             \"planned\":{},\"candidates\":{},\"ratio\":{:.3},\"items\":{},\
             \"pub_p50_us\":{:.1},\"pub_p95_us\":{:.1},\"pub_p99_us\":{:.1},\
             \"wall_ms\":{:.2},\"checksum\":\"{:x}\"}}",
            cell.views,
            cell.touch_permille,
            cell.variant,
            cell.planned_views,
            cell.candidate_views,
            cell.planned_ratio(),
            cell.published_items,
            cell.publish_p50_us,
            cell.publish_p95_us,
            cell.publish_p99_us,
            cell.wall_ms,
            cell.checksum,
        ));
    }
    format!(
        "{{\"experiment\":\"incremental_align\",\"backend\":\"{}\",\"scale\":\"{}\",\
         \"seed\":{},\"threads\":\"{}\",\"unix_ms\":{},\"rounds\":{},\
         \"writes_per_round\":{},\"num_rows\":{},\"best_planned_ratio\":{:.3},\
         \"cells\":[{}]}}",
        backend,
        scale,
        seed,
        threads,
        unix_ms,
        report.rounds,
        report.writes_per_round,
        report.num_rows,
        report.best_planned_ratio(),
        cells,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::SimBackend;

    #[test]
    fn tiny_sweep_matches_full_replan_and_prunes() {
        let scale = Scale::tiny();
        let report = run_with(&SimBackend::new(), &scale, 7, Parallelism::Sequential);
        let pairs = scale.inc_view_counts.len() * scale.inc_touch_permille.len();
        assert_eq!(report.cells.len(), 2 * pairs);
        for pair in report.cells.chunks(2) {
            let [inc, full] = pair else { unreachable!() };
            assert_eq!(inc.variant, "incremental");
            assert_eq!(full.variant, "full");
            assert_eq!(inc.answers, full.answers);
            assert_eq!(inc.checksum, full.checksum);
            assert!(inc.align_rounds > 0);
            assert!(inc.planned_ratio() <= full.planned_ratio());
            assert!(inc.publish_p50_us <= inc.publish_p99_us);
            // Every round queries every view.
            assert_eq!(
                inc.answers.len(),
                scale.inc_rounds * inc.views,
                "one answer per (round, view)"
            );
            assert!(inc.answers.iter().any(|&(_, _, a)| a.count > 0));
        }
        // Hot-zone churn touches a contiguous slice of the domain: with
        // several views installed the dependency graph must prune work
        // somewhere in the sweep.
        assert!(
            report.best_planned_ratio() < 1.0,
            "no cell pruned any planning work"
        );
        let table = to_table(&report);
        assert_eq!(table.num_rows(), report.cells.len());
        let inc_answers = answers_table(&report, "incremental");
        let full_answers = answers_table(&report, "full");
        assert_eq!(
            inc_answers.to_csv(),
            full_answers.to_csv(),
            "answer tables render byte-identically across variants"
        );
    }

    #[test]
    fn view_ranges_partition_the_domain() {
        let ranges = view_ranges(4, 99);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].low(), 0);
        assert_eq!(ranges[3].high(), 99);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].high() + 1, pair[1].low());
        }
    }

    #[test]
    fn bench_json_line_is_one_line_and_balanced() {
        let report = run_with(
            &SimBackend::new(),
            &Scale::tiny(),
            5,
            Parallelism::Sequential,
        );
        let line = bench_json_line(&report, "sim", "tiny", 5, "sequential", 1_700_000_000_000);
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert!(line.contains("\"experiment\":\"incremental_align\""));
        assert!(line.contains("\"variant\":\"incremental\""));
        assert!(line.contains("\"variant\":\"full\""));
    }
}
