//! Plain-text table and CSV reporting for the experiment harness.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (h, w) in self.header.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ", w = w);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Writes CSV content to `path`, creating parent directories as needed.
pub fn write_csv(path: impl AsRef<Path>, csv: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, csv)
}

/// Appends `line` (plus a newline) to `path`, creating the file and parent
/// directories as needed — the perf-history writer behind the
/// `BENCH_*.json` files (one JSON record per line, one line per run).
pub fn append_line(path: impl AsRef<Path>, line: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{line}")
}

/// Formats a millisecond value with two decimals.
pub fn ms(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a seconds value with one decimal (Table 1 style).
pub fn secs(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_text_and_csv() {
        let mut t = Table::new("demo", &["k", "variant", "ms"]);
        t.add_row(vec!["1250".into(), "zonemap".into(), ms(12.345)]);
        t.add_row(vec!["80000".into(), "virtual-view".into(), ms(1.5)]);
        assert_eq!(t.num_rows(), 2);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("virtual-view"));
        assert!(text.contains("12.35") || text.contains("12.34"));
        let csv = t.to_csv();
        assert!(csv.starts_with("k,variant,ms\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn csv_writing_creates_directories() {
        let dir = std::env::temp_dir().join(format!("asv-report-test-{}", std::process::id()));
        let path = dir.join("nested/out.csv");
        write_csv(&path, "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_line_accumulates_a_history() {
        let dir = std::env::temp_dir().join(format!("asv-append-test-{}", std::process::id()));
        let path = dir.join("BENCH_demo.json");
        append_line(&path, "{\"run\":1}").unwrap();
        append_line(&path, "{\"run\":2}").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "{\"run\":1}\n{\"run\":2}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(1.005), "1.00");
        assert_eq!(secs(58.64), "58.6");
    }
}
