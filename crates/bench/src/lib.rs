//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each `figN` module sets up the exact workload of the corresponding figure
//! (scaled by a [`Scale`] preset), runs it, and returns plain row structs
//! that the `experiments` binary prints as aligned tables / CSV and that the
//! Criterion benches re-use as their measured bodies.
//!
//! | Module | Paper artefact |
//! |--------|----------------|
//! | [`fig3`] | Figure 3 — explicit vs virtual partial views |
//! | [`fig4`] | Figure 4 — adaptive query processing, single-view mode |
//! | [`fig5`] | Figure 5 — adaptive query processing, multi-view mode |
//! | [`fig6`] | Figure 6 — impact of view-creation optimizations |
//! | [`fig7`] | Figure 7 — update performance |
//! | [`table1`] | Table 1 — accumulated response times |
//! | [`scaling`] | Multicore scaling of the scan path (beyond the paper) |
//! | [`align_overlap`] | Query throughput during view alignment (beyond the paper) |
//! | [`table_scan`] | Planned vs naive multi-column conjunctive scans (beyond the paper) |
//! | [`filter_kernel`] | Chunked vs scalar page-filter kernels (beyond the paper) |
//! | [`serve`] | Concurrent serving: read throughput/tail latency vs client count (beyond the paper) |
//! | [`incremental_align`] | Dependency-pruned incremental alignment vs full replanning (beyond the paper) |
//! | [`recover`] | Durable tier: journal overhead and crash-recovery time (beyond the paper) |
//!
//! The [`compare`] module diffs two `--csv-dir` outputs (the `compare`
//! subcommand of the `experiments` binary), making timing changes between
//! two commits reviewable.

pub mod ablation;
pub mod align_overlap;
pub mod compare;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod filter_kernel;
pub mod incremental_align;
pub mod recover;
pub mod report;
pub mod scale;
pub mod scaling;
pub mod serve;
pub mod table1;
pub mod table_scan;

pub use report::{write_csv, Table};
pub use scale::Scale;

/// The default RNG seed used by every experiment unless overridden.
pub const DEFAULT_SEED: u64 = 0xA51CE;
