//! Figure 6 — impact of the view-creation optimizations.
//!
//! Paper setup (§3.3): the time to create a single partial view on a 3.9 GB
//! column is measured (a) without optimizations, (b) with consecutive
//! qualifying pages mapped in one `mmap()`, (c) with mapping performed by a
//! separate thread, and (d) with both optimizations.
//!
//! * Figure 6a: uniform distribution over `[0, 100M]`, view `v[0, 100k]`
//!   (≈ 40 % of all pages qualify).
//! * Figure 6b: sine distribution over `[0, 2^64 - 1]`, view `v[0, 2^63]`
//!   (≈ 52 % of all pages qualify, heavily clustered).

use asv_core::{build_view_for_range_with, CreationOptions, Parallelism};
use asv_storage::Column;
use asv_util::{average_runtime, ValueRange};
use asv_vmem::Backend;
use asv_workloads::{Distribution, DEFAULT_MAX_VALUE};

use crate::report::Table;
use crate::scale::Scale;

/// One measured (distribution, optimization variant) cell of Figure 6.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Distribution name (uniform / sine).
    pub distribution: String,
    /// Optimization variant label.
    pub variant: &'static str,
    /// Average time to create the partial view, in milliseconds.
    pub create_ms: f64,
    /// Number of pages the created view maps.
    pub mapped_pages: usize,
}

/// The four optimization variants in the paper's plotting order.
pub const VARIANTS: [(&str, CreationOptions); 4] = [
    ("no-optimizations", CreationOptions::NONE),
    ("consecutively-mapped", CreationOptions::COALESCED),
    ("concurrently-mapped", CreationOptions::CONCURRENT),
    ("both-optimizations", CreationOptions::ALL),
];

/// Runs Figure 6 for both distributions on `backend`.
pub fn run<B: Backend>(backend: &B, scale: &Scale, seed: u64) -> Vec<Fig6Row> {
    run_with(backend, scale, seed, Parallelism::Sequential)
}

/// [`run`] with an explicit scan parallelism: the qualifying-page detection
/// scan of view creation is sharded across the fork-join pool (the mapping
/// calls themselves stay governed by the [`CreationOptions`] under test).
pub fn run_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    // Figure 6a: uniform distribution, view [0, 100k].
    {
        let dist = Distribution::Uniform {
            max_value: DEFAULT_MAX_VALUE,
        };
        let values = dist.generate_pages(scale.fig6_pages, seed);
        let column = Column::from_values(backend.clone(), &values).expect("column");
        rows.extend(run_column(
            &column,
            "uniform",
            &ValueRange::new(0, 100_000),
            scale,
            parallelism,
        ));
    }
    // Figure 6b: sine distribution over the full u64 domain, view [0, 2^63].
    {
        let dist = Distribution::Sine {
            max_value: u64::MAX,
            period_pages: 100,
        };
        let values = dist.generate_pages(scale.fig6_pages, seed);
        let column = Column::from_values(backend.clone(), &values).expect("column");
        rows.extend(run_column(
            &column,
            "sine",
            &ValueRange::new(0, 1u64 << 63),
            scale,
            parallelism,
        ));
    }
    rows
}

fn run_column<B: Backend>(
    column: &Column<B>,
    distribution: &str,
    view_range: &ValueRange,
    scale: &Scale,
    parallelism: Parallelism,
) -> Vec<Fig6Row> {
    VARIANTS
        .iter()
        .map(|(label, options)| {
            let mut mapped_pages = 0usize;
            let elapsed = average_runtime(scale.repetitions, || {
                let (view, pages) =
                    build_view_for_range_with(column, view_range, options, parallelism)
                        .expect("view creation");
                mapped_pages = pages;
                drop(view);
            });
            Fig6Row {
                distribution: distribution.to_string(),
                variant: label,
                create_ms: elapsed.as_secs_f64() * 1e3,
                mapped_pages,
            }
        })
        .collect()
}

/// Renders the Figure 6 rows.
pub fn to_table(rows: &[Fig6Row]) -> Table {
    let mut table = Table::new(
        "Figure 6: time to create a single partial view",
        &["distribution", "variant", "create ms", "mapped pages"],
    );
    for r in rows {
        table.add_row(vec![
            r.distribution.clone(),
            r.variant.to_string(),
            format!("{:.2}", r.create_ms),
            r.mapped_pages.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_measures_all_variants() {
        let rows = run(&asv_vmem::SimBackend::new(), &Scale::tiny(), 11);
        assert_eq!(rows.len(), 8); // 2 distributions × 4 variants
                                   // All variants of one distribution map the same number of pages.
        for chunk in rows.chunks(4) {
            let pages = chunk[0].mapped_pages;
            assert!(pages > 0);
            assert!(chunk.iter().all(|r| r.mapped_pages == pages));
            assert!(chunk.iter().all(|r| r.create_ms >= 0.0));
        }
        let table = to_table(&rows);
        assert_eq!(table.num_rows(), 8);
    }
}
