//! The `filter-kernel` microbench: chunked branch-free page kernels vs
//! their scalar references (new experiment, beyond the paper).
//!
//! Every other experiment measures the adaptive machinery end to end; this
//! one isolates the page-filter hot path itself. For each kernel mode ×
//! selectivity cell it runs both variants over the same column:
//!
//! * **scalar** — the original per-value branchy loops
//!   ([`asv_storage::PageRef::scan_filter_scalar`] and friends), kept as
//!   reference implementations;
//! * **chunked** — the fixed-width-lane kernels of `asv_storage::simd`
//!   the production scan path runs on.
//!
//! The modes are the five kernel entry points: `scan` (count + checksum),
//! `count` (count-only fast path), `collect` (row-id collection),
//! `exclude` (overlay-aware scan skipping excluded rows) and `probe`
//! (per-candidate semi-join qualification). Every cell's full answer —
//! count, checksum, collected-row checksum, widening bounds — is asserted
//! **bit-identical** across the two variants before any timing is
//! reported, and the per-variant answers are also exported as tables so
//! the `compare` subcommand can gate them at `--max-delta-pct 0`.
//!
//! Timings are wall-clock per full pass over the column (probe: over the
//! candidate set), summarized as mean and p95 over
//! [`Scale::kernel_passes`] passes.

use std::time::Instant;

use asv_storage::{simd, Column, ExclusionMasks, PageScanResult};
use asv_util::ValueRange;
use asv_vmem::{Backend, VALUES_PER_PAGE};
use asv_workloads::KernelWorkload;

use crate::report::Table;
use crate::scale::Scale;

/// Selectivities (percent of qualifying values) the microbench sweeps.
pub const SELECTIVITIES: [f64; 4] = [1.0, 10.0, 50.0, 90.0];

/// The kernel modes, in report order.
pub const MODES: [&str; 5] = ["scan", "count", "collect", "exclude", "probe"];

/// The two measured variants, in report order.
pub const VARIANTS: [&str; 2] = ["scalar", "chunked"];

/// The complete answer of one (mode, selectivity, variant) cell — the
/// equivalence witness the microbench asserts across variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelAnswer {
    /// Qualifying values.
    pub count: u64,
    /// Exact checksum of qualifying values (0 in `count` mode).
    pub sum: u128,
    /// Wrapping sum of `row + 1` over collected rows (0 unless rows are
    /// collected).
    pub rows_sum: u64,
    /// Merged widening bound below the range (scan modes only).
    pub below: Option<u64>,
    /// Merged widening bound above the range (scan modes only).
    pub above: Option<u64>,
}

impl KernelAnswer {
    /// A compact exact witness of the answer, rendered as a non-numeric
    /// label so the `compare` subcommand requires byte equality instead of
    /// a float tolerance.
    pub fn checksum_label(&self) -> String {
        let below = self.below.map_or(u64::MAX, |b| b);
        let above = self.above.map_or(u64::MAX, |a| a);
        format!(
            "x{:x}.{:x}.{:x}.{:x}",
            self.sum, self.rows_sum, below, above
        )
    }
}

/// One measured (mode, selectivity, variant) cell.
#[derive(Clone, Debug)]
pub struct KernelCell {
    /// Kernel mode (one of [`MODES`]).
    pub mode: &'static str,
    /// Measured variant (one of [`VARIANTS`]).
    pub variant: &'static str,
    /// Target selectivity in percent.
    pub selectivity: f64,
    /// Mean wall-clock time of one pass, in nanoseconds.
    pub mean_ns: f64,
    /// 95th-percentile pass time, in nanoseconds.
    pub p95_ns: f64,
    /// Values qualified per second, in millions (probe: candidates).
    pub mvalues_per_sec: f64,
    /// The cell's (variant-independent) answer.
    pub answer: KernelAnswer,
}

/// The full result of one `filter-kernel` run.
#[derive(Clone, Debug)]
pub struct FilterKernelReport {
    /// All measured cells (mode-major, selectivity, then variant order).
    pub cells: Vec<KernelCell>,
    /// Values per pass each non-probe cell processes.
    pub values_per_pass: usize,
    /// Candidates per pass the probe cells process.
    pub probe_rows_per_pass: usize,
}

impl FilterKernelReport {
    /// Mean scalar/chunked speedup of the `count` (CountOnly) cells — the
    /// headline number of the kernel restructuring.
    pub fn count_only_speedup(&self) -> f64 {
        self.speedup_for("count")
    }

    /// Mean scalar/chunked speedup over the cells of `mode`.
    pub fn speedup_for(&self, mode: &str) -> f64 {
        let mut ratios = Vec::new();
        for sel in SELECTIVITIES {
            let mean_of = |variant: &str| {
                self.cells
                    .iter()
                    .find(|c| c.mode == mode && c.variant == variant && c.selectivity == sel)
                    .map(|c| c.mean_ns)
            };
            if let (Some(scalar), Some(chunked)) = (mean_of("scalar"), mean_of("chunked")) {
                if chunked > 0.0 {
                    ratios.push(scalar / chunked);
                }
            }
        }
        if ratios.is_empty() {
            return 1.0;
        }
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

/// Merges one page's result into a running [`KernelAnswer`], applying the
/// same non-qualifying-page bound rule as [`asv_storage::ScanOutput`].
fn merge_page(answer: &mut KernelAnswer, res: &PageScanResult) {
    answer.count += res.count;
    answer.sum += res.sum;
    if res.count == 0 {
        if let Some(b) = res.below_max {
            answer.below = Some(answer.below.map_or(b, |cur| cur.max(b)));
        }
        if let Some(a) = res.above_min {
            answer.above = Some(answer.above.map_or(a, |cur| cur.min(a)));
        }
    }
}

fn empty_answer() -> KernelAnswer {
    KernelAnswer {
        count: 0,
        sum: 0,
        rows_sum: 0,
        below: None,
        above: None,
    }
}

fn rows_checksum(rows: &[u64]) -> u64 {
    rows.iter().fold(0u64, |acc, &r| acc.wrapping_add(r + 1))
}

/// Groups ascending candidate rows into `(page, index range)` runs.
fn probe_runs(rows: &[u64]) -> Vec<(usize, std::ops::Range<usize>)> {
    let mut runs = Vec::new();
    let mut start = 0usize;
    while start < rows.len() {
        let page = (rows[start] / VALUES_PER_PAGE as u64) as usize;
        let mut end = start + 1;
        while end < rows.len() && (rows[end] / VALUES_PER_PAGE as u64) as usize == page {
            end += 1;
        }
        runs.push((page, start..end));
        start = end;
    }
    runs
}

/// Per-page excluded slots, the shape the pre-kernel exclusion path derived
/// on every page visit (the scalar `exclude` cells re-derive this *inside*
/// the timed pass, exactly like the old implementation did).
fn excluded_slots_on(excluded_rows: &[u64], page: usize) -> Vec<usize> {
    let base = (page * VALUES_PER_PAGE) as u64;
    let end = base + VALUES_PER_PAGE as u64;
    let lo = excluded_rows.partition_point(|&r| r < base);
    let hi = excluded_rows.partition_point(|&r| r < end);
    excluded_rows[lo..hi]
        .iter()
        .map(|&r| (r - base) as usize)
        .collect()
}

/// Runs one timed pass of `(mode, variant)` and returns its answer.
#[allow(clippy::too_many_arguments)]
fn run_pass<B: Backend>(
    column: &Column<B>,
    mode: &str,
    variant: &str,
    range: &ValueRange,
    excluded_rows: &[u64],
    masks: &ExclusionMasks,
    runs: &[(usize, std::ops::Range<usize>)],
    probe_rows: &[u64],
    rows_buf: &mut Vec<u64>,
) -> KernelAnswer {
    let mut answer = empty_answer();
    let chunked = variant == "chunked";
    match mode {
        "scan" => {
            for p in 0..column.num_pages() {
                let page = column.page_ref(p);
                let res = if chunked {
                    page.scan_filter(range)
                } else {
                    page.scan_filter_scalar(range)
                };
                merge_page(&mut answer, &res);
            }
        }
        "count" => {
            for p in 0..column.num_pages() {
                let page = column.page_ref(p);
                let res = if chunked {
                    page.scan_filter_count(range)
                } else {
                    page.scan_filter_count_scalar(range)
                };
                merge_page(&mut answer, &res);
            }
        }
        "collect" => {
            rows_buf.clear();
            for p in 0..column.num_pages() {
                let page = column.page_ref(p);
                let res = if chunked {
                    page.scan_filter_collect(range, rows_buf)
                } else {
                    page.scan_filter_collect_scalar(range, rows_buf)
                };
                merge_page(&mut answer, &res);
            }
            answer.rows_sum = rows_checksum(rows_buf);
        }
        "exclude" => {
            for p in 0..column.num_pages() {
                let page = column.page_ref(p);
                let res = if chunked {
                    match masks.mask_for(p as u64) {
                        Some(mask) => page.scan_filter_excluding(range, mask, false, None),
                        None => page.scan_filter(range),
                    }
                } else {
                    let slots = excluded_slots_on(excluded_rows, p);
                    if slots.is_empty() {
                        page.scan_filter_scalar(range)
                    } else {
                        page.scan_filter_excluding_scalar(range, &slots, false, None)
                    }
                };
                merge_page(&mut answer, &res);
            }
        }
        "probe" => {
            rows_buf.clear();
            for (p, idx) in runs {
                let page = column.page_ref(*p);
                let base_row = (*p * VALUES_PER_PAGE) as u64;
                let candidates = &probe_rows[idx.clone()];
                let res = if chunked {
                    simd::probe_rows_chunked(
                        page.values(),
                        range,
                        base_row,
                        candidates,
                        false,
                        Some(rows_buf),
                    )
                } else {
                    page.probe_rows_scalar(range, candidates, false, Some(rows_buf))
                };
                answer.count += res.count;
                answer.sum += res.sum;
            }
            answer.rows_sum = rows_checksum(rows_buf);
        }
        other => unreachable!("unknown kernel mode '{other}'"),
    }
    answer
}

/// Runs the full mode × selectivity × variant sweep on `backend`.
///
/// # Panics
/// Panics if any cell's chunked answer deviates from its scalar answer —
/// the kernels must be bit-identical before their timings mean anything.
pub fn run_with<B: Backend>(backend: &B, scale: &Scale, seed: u64) -> FilterKernelReport {
    let workload = KernelWorkload::generate(scale.kernel_pages, seed ^ 0xF117E);
    let column =
        Column::from_values(backend.clone(), workload.values()).expect("column materialization");
    let masks = ExclusionMasks::from_rows(workload.excluded_rows().to_vec());
    let runs = probe_runs(workload.probe_rows());
    let passes = scale.kernel_passes.max(1);

    let mut rows_buf: Vec<u64> = Vec::new();
    let mut cells = Vec::new();
    for mode in MODES {
        for sel in SELECTIVITIES {
            let range = workload.range_for_selectivity(sel);
            let mut answers = [empty_answer(), empty_answer()];
            for (variant_idx, variant) in VARIANTS.iter().enumerate() {
                let mut pass_ns: Vec<f64> = Vec::with_capacity(passes);
                let mut answer = empty_answer();
                for _ in 0..passes {
                    let started = Instant::now();
                    answer = run_pass(
                        &column,
                        mode,
                        variant,
                        &range,
                        workload.excluded_rows(),
                        &masks,
                        &runs,
                        workload.probe_rows(),
                        &mut rows_buf,
                    );
                    pass_ns.push(started.elapsed().as_nanos() as f64);
                }
                answers[variant_idx] = answer;
                let processed = if mode == "probe" {
                    workload.probe_rows().len()
                } else {
                    workload.values().len()
                };
                let mean_ns = pass_ns.iter().sum::<f64>() / pass_ns.len() as f64;
                let p95_ns = percentile_95(&mut pass_ns);
                cells.push(KernelCell {
                    mode,
                    variant,
                    selectivity: sel,
                    mean_ns,
                    p95_ns,
                    mvalues_per_sec: processed as f64 / mean_ns.max(1.0) * 1_000.0,
                    answer,
                });
            }
            assert_eq!(
                answers[0], answers[1],
                "chunked answer deviates from scalar ({mode}, {sel}%)"
            );
        }
    }
    FilterKernelReport {
        cells,
        values_per_pass: workload.values().len(),
        probe_rows_per_pass: workload.probe_rows().len(),
    }
}

fn percentile_95(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let idx = ((samples.len() as f64) * 0.95).ceil() as usize;
    samples[idx.saturating_sub(1).min(samples.len() - 1)]
}

/// Renders the timing cells, with a per-cell scalar/chunked speedup column.
pub fn to_table(report: &FilterKernelReport) -> Table {
    let mut table = Table::new(
        "Filter kernel: chunked branch-free vs scalar reference \
         (per full pass; speedup = scalar mean / chunked mean)",
        &[
            "mode",
            "sel",
            "variant",
            "mean ms",
            "p95 ms",
            "Mvalues/s",
            "speedup",
        ],
    );
    for cell in &report.cells {
        let speedup = if cell.variant == "chunked" {
            report
                .cells
                .iter()
                .find(|c| {
                    c.mode == cell.mode
                        && c.selectivity == cell.selectivity
                        && c.variant == "scalar"
                })
                .map(|scalar| scalar.mean_ns / cell.mean_ns.max(1.0))
        } else {
            None
        };
        table.add_row(vec![
            cell.mode.to_string(),
            format!("{:.0}%", cell.selectivity),
            cell.variant.to_string(),
            format!("{:.3}", cell.mean_ns / 1e6),
            format!("{:.3}", cell.p95_ns / 1e6),
            format!("{:.1}", cell.mvalues_per_sec),
            speedup.map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
        ]);
    }
    table
}

/// Renders one variant's answers as an exact-match table (counts are plain
/// integers, checksums non-numeric labels), for
/// `experiments compare ... --max-delta-pct 0` between the two variants.
pub fn answers_table(report: &FilterKernelReport, variant: &str) -> Table {
    let mut table = Table::new(
        format!("Filter kernel answers ({variant})"),
        &["mode", "sel", "count", "checksum"],
    );
    for cell in report.cells.iter().filter(|c| c.variant == variant) {
        table.add_row(vec![
            cell.mode.to_string(),
            format!("{:.0}%", cell.selectivity),
            cell.answer.count.to_string(),
            cell.answer.checksum_label(),
        ]);
    }
    table
}

/// Builds the one-line JSON record appended to `BENCH_filter_kernel.json`
/// after every run — the tracked perf history (hand-rendered: the harness
/// has no JSON dependency).
pub fn bench_json_line(
    report: &FilterKernelReport,
    backend: &str,
    scale: &str,
    seed: u64,
    unix_ms: u128,
) -> String {
    let mut cells = String::new();
    for (i, cell) in report.cells.iter().enumerate() {
        if i > 0 {
            cells.push(',');
        }
        cells.push_str(&format!(
            "{{\"mode\":\"{}\",\"variant\":\"{}\",\"selectivity\":{},\
             \"mean_ns\":{:.0},\"p95_ns\":{:.0},\"mvalues_per_sec\":{:.2}}}",
            cell.mode,
            cell.variant,
            cell.selectivity,
            cell.mean_ns,
            cell.p95_ns,
            cell.mvalues_per_sec,
        ));
    }
    format!(
        "{{\"experiment\":\"filter-kernel\",\"backend\":\"{}\",\"scale\":\"{}\",\
         \"seed\":{},\"unix_ms\":{},\"values_per_pass\":{},\"probe_rows_per_pass\":{},\
         \"count_only_speedup\":{:.3},\"cells\":[{}]}}",
        backend,
        scale,
        seed,
        unix_ms,
        report.values_per_pass,
        report.probe_rows_per_pass,
        report.count_only_speedup(),
        cells,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::SimBackend;

    #[test]
    fn tiny_run_is_equivalent_and_fully_populated() {
        let scale = Scale::tiny();
        let report = run_with(&SimBackend::new(), &scale, 99);
        // modes x selectivities x variants
        assert_eq!(
            report.cells.len(),
            MODES.len() * SELECTIVITIES.len() * VARIANTS.len()
        );
        assert_eq!(
            report.values_per_pass,
            scale.kernel_pages * asv_vmem::VALUES_PER_PAGE
        );
        assert!(report.probe_rows_per_pass > 0);
        for cell in &report.cells {
            assert!(cell.mean_ns > 0.0, "{} {}", cell.mode, cell.variant);
            assert!(cell.p95_ns >= cell.mean_ns * 0.5);
            assert!(cell.mvalues_per_sec > 0.0);
        }
        // Wider predicates qualify more values.
        let count_at = |sel: f64| {
            report
                .cells
                .iter()
                .find(|c| c.mode == "count" && c.selectivity == sel && c.variant == "chunked")
                .unwrap()
                .answer
                .count
        };
        assert!(count_at(1.0) < count_at(50.0));
        assert!(count_at(50.0) < count_at(90.0));
        // Excluding rows can only shrink the answer.
        for sel in SELECTIVITIES {
            let find = |mode: &str| {
                report
                    .cells
                    .iter()
                    .find(|c| c.mode == mode && c.selectivity == sel && c.variant == "chunked")
                    .unwrap()
            };
            assert!(find("exclude").answer.count <= find("scan").answer.count);
            assert_eq!(find("scan").answer, find("collect").answer_without_rows());
        }
        let table = to_table(&report);
        assert_eq!(table.num_rows(), report.cells.len());
        assert!(report.count_only_speedup() > 0.0);
    }

    impl KernelCell {
        /// The cell's answer with the rows checksum blanked (scan vs
        /// collect comparison).
        fn answer_without_rows(&self) -> KernelAnswer {
            KernelAnswer {
                rows_sum: 0,
                ..self.answer
            }
        }
    }

    #[test]
    fn answers_tables_match_across_variants() {
        let report = run_with(&SimBackend::new(), &Scale::tiny(), 5);
        let scalar = answers_table(&report, "scalar").to_csv();
        let chunked = answers_table(&report, "chunked").to_csv();
        assert_eq!(scalar, chunked, "variant answers must render identically");
        assert!(scalar.lines().count() > 1);
    }

    #[test]
    fn bench_json_line_is_one_line_and_balanced() {
        let report = run_with(&SimBackend::new(), &Scale::tiny(), 5);
        let line = bench_json_line(&report, "sim", "tiny", 5, 1_700_000_000_000);
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "balanced braces"
        );
        assert!(line.contains("\"experiment\":\"filter-kernel\""));
        assert!(line.contains("\"backend\":\"sim\""));
        assert!(line.contains("\"mode\":\"probe\""));
    }

    #[test]
    fn percentile_of_small_samples() {
        assert_eq!(percentile_95(&mut [5.0]), 5.0);
        assert_eq!(percentile_95(&mut [3.0, 1.0, 2.0]), 3.0);
        let mut twenty: Vec<f64> = (1..=20).map(|v| v as f64).collect();
        assert_eq!(percentile_95(&mut twenty), 19.0);
    }
}
