//! Table 1 — accumulated response time over all queries of a sequence.
//!
//! The table aggregates the five adaptive experiments (Figure 4a/4b/4c and
//! Figure 5a/5b) into two rows: the accumulated response time when every
//! query is answered with a full scan, and when the adaptive view selection
//! is used.

use asv_core::Parallelism;
use asv_vmem::Backend;

use crate::fig4;
use crate::fig5;
use crate::report::Table;
use crate::scale::Scale;

/// One column of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Entry {
    /// Which experiment the column corresponds to (e.g. "Fig 4a (sine)").
    pub label: String,
    /// Accumulated full-scan time in seconds.
    pub fullscan_s: f64,
    /// Accumulated adaptive time in seconds.
    pub adaptive_s: f64,
}

impl Table1Entry {
    /// Speedup of adaptive view selection over full scans.
    pub fn speedup(&self) -> f64 {
        self.fullscan_s / self.adaptive_s.max(1e-9)
    }
}

/// Runs all five configurations on `backend` and returns one entry per
/// column of Table 1.
pub fn run<B: Backend>(backend: &B, scale: &Scale, seed: u64) -> Vec<Table1Entry> {
    run_with(backend, scale, seed, Parallelism::Sequential)
}

/// [`run`] with an explicit scan parallelism, forwarded to the Figure 4/5
/// drivers it aggregates.
pub fn run_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<Table1Entry> {
    let fig4_results = fig4::run_all_with(backend, scale, seed, parallelism);
    let fig5_results = fig5::run_all_with(backend, scale, seed, parallelism);
    let mut entries = Vec::new();
    let fig4_labels = ["Fig 4a (sine)", "Fig 4b (linear)", "Fig 4c (sparse)"];
    for (r, label) in fig4_results.iter().zip(fig4_labels) {
        entries.push(Table1Entry {
            label: label.to_string(),
            fullscan_s: r.fullscan_total_s,
            adaptive_s: r.adaptive_total_s,
        });
    }
    let fig5_labels = ["Fig 5a (sine 1%)", "Fig 5b (sine 10%)"];
    for (r, label) in fig5_results.iter().zip(fig5_labels) {
        entries.push(Table1Entry {
            label: label.to_string(),
            fullscan_s: r.fullscan_total_s,
            adaptive_s: r.adaptive_total_s,
        });
    }
    entries
}

/// Renders the entries in the paper's layout (modes as rows, experiments as
/// columns).
pub fn to_table(entries: &[Table1Entry]) -> Table {
    let mut header: Vec<String> = vec!["mode".to_string()];
    header.extend(entries.iter().map(|e| e.label.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Table 1: accumulated response time over the query sequence [s]",
        &header_refs,
    );
    let mut full_row = vec!["full scans only".to_string()];
    full_row.extend(entries.iter().map(|e| format!("{:.2}", e.fullscan_s)));
    table.add_row(full_row);
    let mut adaptive_row = vec!["adaptive view selection".to_string()];
    adaptive_row.extend(entries.iter().map(|e| format!("{:.2}", e.adaptive_s)));
    table.add_row(adaptive_row);
    let mut speedup_row = vec!["speedup".to_string()];
    speedup_row.extend(entries.iter().map(|e| format!("{:.2}x", e.speedup())));
    table.add_row(speedup_row);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_all_five_columns() {
        let entries = run(&asv_vmem::SimBackend::new(), &Scale::tiny(), 13);
        assert_eq!(entries.len(), 5);
        for e in &entries {
            assert!(e.fullscan_s > 0.0);
            assert!(e.adaptive_s > 0.0);
            assert!(e.speedup() > 0.0);
        }
        let table = to_table(&entries);
        assert_eq!(table.num_rows(), 3);
    }
}
