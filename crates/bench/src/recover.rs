//! The `recover` experiment: journal overhead and recovery time of the
//! durable serving tier (new experiment, beyond the paper).
//!
//! One column of clustered values plus one installed view is driven
//! through a seeded sequence of acknowledged write batches, each followed
//! by a commit (`tick`). The run is timed twice — once in-memory and once
//! with the write-ahead journal attached — and the difference is the
//! journal overhead for each swept fsync policy (`fsync_every_chunks` =
//! 1, 8 and 0 = quiesce-only). The durable table is then dropped *without*
//! a quiesce (the in-process stand-in for a kill) and rebuilt with
//! [`ServeTable::recover`], timing the replay.
//!
//! Correctness is gated before any timing is reported: the recovered
//! table's answers over a fixed probe-query set must be **bit-identical**
//! to both the live (never-crashed) table's answers and an independent
//! reference replay of the workload's sealed batch prefix. The live and
//! recovered answer tables are exported so
//! `experiments compare DIR/recover_live DIR/recover_recovered
//! --max-delta-pct 0` gates recovery exactness on the rendered CSV bytes.
//!
//! The same workload generator backs the binary's hidden
//! `recover-ingest` / `recover-verify` modes ([`run_ingest`] /
//! [`run_verify`]), which the kill-and-recover integration test drives
//! with a real SIGKILL between them.

use std::path::Path;
use std::time::Instant;

use asv_core::{
    AdaptiveConfig, AlignChunking, DurabilityConfig, RecoveryInfo, ServeTable, Snapshot,
};
use asv_util::ValueRange;
use asv_vmem::{Backend, VmemError, VALUES_PER_PAGE};

use crate::report::Table;
use crate::scale::Scale;

/// Fsync policies swept: a sync per commit, one per 8 commits, and
/// quiesce-only (`0`).
pub const DEFAULT_FSYNC_EVERY: [usize; 3] = [1, 8, 0];

/// The full answer of one probe query — the exactness witness compared
/// across the live, recovered and reference executions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverAnswer {
    /// Qualifying rows.
    pub count: u64,
    /// Sum of qualifying values.
    pub sum: u128,
}

impl RecoverAnswer {
    /// Non-numeric exact witness for the `compare` gate (byte equality,
    /// not a float tolerance).
    pub fn checksum_label(&self) -> String {
        format!("x{:x}", self.sum)
    }
}

/// One measured fsync-policy cell.
#[derive(Clone, Debug)]
pub struct RecoverCell {
    /// Commits per fsync (`0` = quiesce-only).
    pub fsync_every: usize,
    /// Wall-clock of the in-memory twin run, milliseconds.
    pub baseline_wall_ms: f64,
    /// Wall-clock of the journaled run, milliseconds.
    pub durable_wall_ms: f64,
    /// Journal overhead relative to the in-memory twin, percent.
    pub overhead_pct: f64,
    /// Journal size at the kill point, bytes.
    pub journal_bytes: u64,
    /// Wall-clock of [`ServeTable::recover`], milliseconds.
    pub recover_ms: f64,
    /// What recovery found in the journal.
    pub info: RecoveryInfo,
    /// Checksum folding every probe answer.
    pub checksum: u64,
}

/// The full result of one `recover` run.
#[derive(Clone, Debug)]
pub struct RecoverReport {
    /// One cell per swept fsync policy.
    pub cells: Vec<RecoverCell>,
    /// Acknowledged batches per run.
    pub batches: usize,
    /// Writes per batch.
    pub writes_per_batch: usize,
    /// Rows of the column.
    pub num_rows: usize,
    /// The probe answers (identical across cells, live and recovered —
    /// asserted before the report is built).
    pub answers: Vec<RecoverAnswer>,
}

impl RecoverReport {
    /// Journal overhead of the strictest policy (an fsync per commit) —
    /// the headline durability cost.
    pub fn strict_overhead_pct(&self) -> f64 {
        self.cells
            .iter()
            .find(|c| c.fsync_every == 1)
            .map_or(0.0, |c| c.overhead_pct)
    }

    /// Slowest recovery across the swept policies, milliseconds.
    pub fn max_recover_ms(&self) -> f64 {
        self.cells.iter().map(|c| c.recover_ms).fold(0.0, f64::max)
    }
}

/// Clustered base data: page p holds values around p*1000.
pub fn base_values(scale: &Scale) -> Vec<u64> {
    (0..scale.recover_pages * VALUES_PER_PAGE)
        .map(|i| ((i / VALUES_PER_PAGE) * 1_000 + i % VALUES_PER_PAGE) as u64)
        .collect()
}

/// Value domain of the workload (also bounds the probe ranges).
pub fn domain(scale: &Scale) -> u64 {
    scale.recover_pages as u64 * 1_000
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `k`-th acknowledged batch — a pure function of `(seed, k)`, so an
/// independent process (the `recover-verify` mode) can regenerate exactly
/// the prefix a killed ingest sealed.
pub fn batch(seed: u64, k: usize, num_rows: usize, writes_per_batch: usize) -> Vec<(usize, u64)> {
    let mut rng = seed ^ (k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..writes_per_batch)
        .map(|_| {
            (
                (splitmix(&mut rng) as usize) % num_rows,
                splitmix(&mut rng) % (num_rows as u64 * 2),
            )
        })
        .collect()
}

/// The view installed on the column (one band in the middle of the
/// domain).
pub fn view_range(domain: u64) -> ValueRange {
    ValueRange::new(domain / 8, domain / 8 + domain / 6)
}

/// The fixed probe-query set answered by the live, recovered and
/// reference executions.
pub fn probe_ranges(domain: u64) -> Vec<ValueRange> {
    let mut ranges = vec![
        ValueRange::full(),
        view_range(domain),
        ValueRange::new(0, domain / 4),
        ValueRange::new(domain / 2, u64::MAX),
    ];
    let mut rng = 0xB007u64;
    for _ in 0..12 {
        let lo = splitmix(&mut rng) % domain;
        let hi = lo + splitmix(&mut rng) % (domain / 4).max(1);
        ranges.push(ValueRange::new(lo, hi));
    }
    ranges
}

/// Answers the probe set on a pinned snapshot.
pub fn snapshot_answers<B: Backend>(snap: &Snapshot<B>, domain: u64) -> Vec<RecoverAnswer> {
    probe_ranges(domain)
        .iter()
        .map(|range| {
            let out = snap.query_range(0, range);
            RecoverAnswer {
                count: out.count,
                sum: out.sum,
            }
        })
        .collect()
}

/// Answers the probe set by a naive filter over raw values — the
/// journal-independent reference.
pub fn reference_answers(values: &[u64], domain: u64) -> Vec<RecoverAnswer> {
    probe_ranges(domain)
        .iter()
        .map(|range| {
            let mut answer = RecoverAnswer::default();
            for &v in values {
                if range.contains(v) {
                    answer.count += 1;
                    answer.sum += v as u128;
                }
            }
            answer
        })
        .collect()
}

fn fold_answers(answers: &[RecoverAnswer]) -> u64 {
    answers.iter().enumerate().fold(0u64, |acc, (i, a)| {
        let mut state = acc ^ i as u64;
        let mut h = splitmix(&mut state);
        state = h ^ a.count;
        h = splitmix(&mut state);
        state = h ^ a.sum as u64;
        h = splitmix(&mut state);
        state = h ^ (a.sum >> 64) as u64;
        splitmix(&mut state)
    })
}

fn config() -> AdaptiveConfig {
    AdaptiveConfig::default().with_chunking(
        AlignChunking::default()
            .with_chunk_updates(64)
            .with_group_commit_idle(0),
    )
}

/// Runs the seeded batch workload against `table`; every batch is
/// acknowledged (journaled on a durable table) and committed by a tick.
fn run_workload<B: Backend>(
    table: &mut ServeTable<B>,
    scale: &Scale,
    seed: u64,
    batches: usize,
) -> Result<(), VmemError> {
    let num_rows = scale.recover_pages * VALUES_PER_PAGE;
    for k in 0..batches {
        let writes = batch(seed, k, num_rows, scale.recover_writes_per_batch);
        table.try_write_batch(0, &writes)?;
        table.tick()?;
    }
    Ok(())
}

fn build_table<B: Backend>(table: &mut ServeTable<B>, scale: &Scale) -> Result<(), VmemError> {
    let values = base_values(scale);
    table.add_column(&values)?;
    table.install_view(0, view_range(domain(scale)))?;
    Ok(())
}

fn run_cell<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    fsync_every: usize,
    journal: &Path,
) -> (RecoverCell, Vec<RecoverAnswer>) {
    let dom = domain(scale);
    // The in-memory twin: identical workload, no journal.
    let started = Instant::now();
    {
        let mut table = ServeTable::new(backend.clone(), config());
        build_table(&mut table, scale).expect("in-memory column load");
        run_workload(&mut table, scale, seed, scale.recover_batches).expect("in-memory workload");
    }
    let baseline_wall_ms = started.elapsed().as_secs_f64() * 1_000.0;

    // The journaled run, killed (dropped) without a quiesce.
    let _ = std::fs::remove_file(journal);
    let durability = DurabilityConfig::new(journal).with_fsync_every_chunks(fsync_every);
    let started = Instant::now();
    let mut table = ServeTable::with_durability(backend.clone(), config(), durability)
        .expect("journal creation");
    build_table(&mut table, scale).expect("durable column load");
    run_workload(&mut table, scale, seed, scale.recover_batches).expect("durable workload");
    let durable_wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
    let live = snapshot_answers(&table.handle().pin(), dom);
    drop(table);

    let journal_bytes = std::fs::metadata(journal).map_or(0, |m| m.len());
    let started = Instant::now();
    let (recovered, info) =
        ServeTable::recover(backend.clone(), config(), DurabilityConfig::new(journal))
            .expect("recovery");
    let recover_ms = started.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(
        info.batches_applied, scale.recover_batches,
        "every acknowledged-and-committed batch is sealed"
    );
    let got = snapshot_answers(&recovered.handle().pin(), dom);
    assert_eq!(
        got, live,
        "fsync_every={fsync_every}: recovered answers diverge from the live table"
    );
    let mut mirror = base_values(scale);
    let num_rows = mirror.len();
    for k in 0..info.batches_applied {
        for (row, value) in batch(seed, k, num_rows, scale.recover_writes_per_batch) {
            mirror[row] = value;
        }
    }
    assert_eq!(
        got,
        reference_answers(&mirror, dom),
        "fsync_every={fsync_every}: recovered answers diverge from the reference replay"
    );
    let cell = RecoverCell {
        fsync_every,
        baseline_wall_ms,
        durable_wall_ms,
        overhead_pct: (durable_wall_ms - baseline_wall_ms) / baseline_wall_ms.max(1e-9) * 100.0,
        journal_bytes,
        recover_ms,
        info,
        checksum: fold_answers(&got),
    };
    (cell, got)
}

/// Runs the fsync-policy sweep on `backend`, journaling at `journal`
/// (the file is recreated per cell and left behind after the last one).
///
/// # Panics
/// Panics if any cell's recovered answers deviate from the live table or
/// from the reference replay of the sealed batch prefix — recovery must
/// be exact before its timings mean anything.
pub fn run_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    fsync_everys: &[usize],
    journal: &Path,
) -> RecoverReport {
    let mut cells = Vec::new();
    let mut answers: Option<Vec<RecoverAnswer>> = None;
    for &fsync_every in fsync_everys {
        let (cell, got) = run_cell(backend, scale, seed, fsync_every, journal);
        if let Some(prev) = &answers {
            assert_eq!(&got, prev, "answers are invariant across fsync policies");
        } else {
            answers = Some(got);
        }
        cells.push(cell);
    }
    RecoverReport {
        cells,
        batches: scale.recover_batches,
        writes_per_batch: scale.recover_writes_per_batch,
        num_rows: scale.recover_pages * VALUES_PER_PAGE,
        answers: answers.unwrap_or_default(),
    }
}

/// What a completed (or killed-short) `recover-verify` found.
#[derive(Clone, Debug)]
pub struct VerifyOutcome {
    /// What recovery found in the journal.
    pub info: RecoveryInfo,
    /// Probe answers of the recovered table.
    pub recovered: Vec<RecoverAnswer>,
    /// Probe answers of the reference replay of the sealed batch prefix.
    pub reference: Vec<RecoverAnswer>,
}

/// The binary's hidden `recover-ingest` mode: run the journaled workload
/// for up to `batches` acknowledged-and-committed batches, calling
/// `on_seal(k)` after each commit is sealed — the progress markers the
/// kill-and-recover test waits on before delivering SIGKILL. Exits
/// *without* a quiesce, so even a run that is never killed leaves a
/// journal that exercises the non-checkpoint recovery path.
pub fn run_ingest<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    journal: &Path,
    batches: usize,
    mut on_seal: impl FnMut(usize),
) {
    let durability = DurabilityConfig::new(journal);
    let mut table = ServeTable::with_durability(backend.clone(), config(), durability)
        .expect("journal creation");
    build_table(&mut table, scale).expect("durable column load");
    let num_rows = scale.recover_pages * VALUES_PER_PAGE;
    for k in 0..batches {
        let writes = batch(seed, k, num_rows, scale.recover_writes_per_batch);
        table
            .try_write_batch(0, &writes)
            .expect("acknowledged batch");
        table.tick().expect("commit");
        on_seal(k);
    }
}

/// The binary's hidden `recover-verify` mode: recover the journal a
/// killed `recover-ingest` left behind and answer the probe set twice —
/// once on the recovered table, once by regenerating exactly the sealed
/// batch prefix (`RecoveryInfo::batches_applied` batches of the same
/// seeded generator) over the base values. The two answer sets must match
/// byte-for-byte; the caller exports both for the `compare` gate.
pub fn run_verify<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    journal: &Path,
) -> VerifyOutcome {
    let (table, info) =
        ServeTable::recover(backend.clone(), config(), DurabilityConfig::new(journal))
            .expect("recovery");
    let dom = domain(scale);
    let recovered = snapshot_answers(&table.handle().pin(), dom);
    let mut mirror = base_values(scale);
    let num_rows = mirror.len();
    for k in 0..info.batches_applied {
        for (row, value) in batch(seed, k, num_rows, scale.recover_writes_per_batch) {
            mirror[row] = value;
        }
    }
    let reference = reference_answers(&mirror, dom);
    VerifyOutcome {
        info,
        recovered,
        reference,
    }
}

/// Renders the fsync-policy cells.
pub fn to_table(report: &RecoverReport) -> Table {
    let mut table = Table::new(
        format!(
            "Recover: journal overhead and replay time \
             ({} batches x {} writes, {} rows)",
            report.batches, report.writes_per_batch, report.num_rows
        ),
        &[
            "fsync every",
            "base ms",
            "durable ms",
            "overhead %",
            "journal KiB",
            "recover ms",
            "sealed epoch",
            "batches",
            "checksum",
        ],
    );
    for cell in &report.cells {
        table.add_row(vec![
            fsync_label(cell.fsync_every),
            format!("{:.2}", cell.baseline_wall_ms),
            format!("{:.2}", cell.durable_wall_ms),
            format!("{:.1}", cell.overhead_pct),
            format!("{:.1}", cell.journal_bytes as f64 / 1024.0),
            format!("{:.2}", cell.recover_ms),
            cell.info.sealed_epoch.to_string(),
            cell.info.batches_applied.to_string(),
            format!("x{:x}", cell.checksum),
        ]);
    }
    table
}

/// `quiesce` for the sync-only-at-quiesce policy, the count otherwise.
fn fsync_label(fsync_every: usize) -> String {
    if fsync_every == 0 {
        "quiesce".to_string()
    } else {
        fsync_every.to_string()
    }
}

/// Renders one probe-answer set as an exact-match table (counts are plain
/// integers, sums non-numeric labels) for
/// `experiments compare ... --max-delta-pct 0`.
pub fn answers_table(answers: &[RecoverAnswer]) -> Table {
    let mut table = Table::new(
        "Recover probe answers (identical live, recovered and reference)",
        &["probe", "count", "checksum"],
    );
    for (i, a) in answers.iter().enumerate() {
        table.add_row(vec![i.to_string(), a.count.to_string(), a.checksum_label()]);
    }
    table
}

/// Builds the one-line JSON record appended to `BENCH_recover.json` after
/// every run — the tracked durability-cost history (hand-rendered: the
/// harness has no JSON dependency).
pub fn bench_json_line(
    report: &RecoverReport,
    backend: &str,
    scale: &str,
    seed: u64,
    unix_ms: u128,
) -> String {
    let mut cells = String::new();
    for (i, cell) in report.cells.iter().enumerate() {
        if i > 0 {
            cells.push(',');
        }
        cells.push_str(&format!(
            "{{\"fsync_every\":\"{}\",\"overhead_pct\":{:.1},\"journal_bytes\":{},\
             \"recover_ms\":{:.2},\"sealed_epoch\":{},\"batches_applied\":{},\
             \"checksum\":\"{:x}\"}}",
            fsync_label(cell.fsync_every),
            cell.overhead_pct,
            cell.journal_bytes,
            cell.recover_ms,
            cell.info.sealed_epoch,
            cell.info.batches_applied,
            cell.checksum,
        ));
    }
    format!(
        "{{\"experiment\":\"recover\",\"backend\":\"{}\",\"scale\":\"{}\",\
         \"seed\":{},\"unix_ms\":{},\"batches\":{},\"writes_per_batch\":{},\"rows\":{},\
         \"strict_overhead_pct\":{:.1},\"max_recover_ms\":{:.2},\"cells\":[{}]}}",
        backend,
        scale,
        seed,
        unix_ms,
        report.batches,
        report.writes_per_batch,
        report.num_rows,
        report.strict_overhead_pct(),
        report.max_recover_ms(),
        cells,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::SimBackend;
    use std::path::PathBuf;

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "asv-bench-recover-{}-{tag}.wal",
            std::process::id()
        ))
    }

    #[test]
    fn tiny_sweep_recovers_exactly_on_every_policy() {
        let scale = Scale::tiny();
        let journal = temp_journal("sweep");
        let report = run_with(
            &SimBackend::new(),
            &scale,
            7,
            &DEFAULT_FSYNC_EVERY,
            &journal,
        );
        let _ = std::fs::remove_file(&journal);
        assert_eq!(report.cells.len(), DEFAULT_FSYNC_EVERY.len());
        for cell in &report.cells {
            assert_eq!(cell.info.batches_applied, scale.recover_batches);
            assert!(cell.info.sealed_epoch > 0);
            assert!(cell.journal_bytes > 0);
            assert_eq!(cell.checksum, report.cells[0].checksum);
        }
        assert!(report.answers.iter().any(|a| a.count > 0));
        assert!(report.max_recover_ms() > 0.0);
        let table = to_table(&report);
        assert_eq!(table.num_rows(), report.cells.len());
        assert_eq!(
            answers_table(&report.answers).num_rows(),
            report.answers.len()
        );
    }

    #[test]
    fn ingest_then_verify_round_trips() {
        let scale = Scale::tiny();
        let journal = temp_journal("ingest");
        let mut sealed = Vec::new();
        run_ingest(&SimBackend::new(), &scale, 42, &journal, 4, |k| {
            sealed.push(k)
        });
        assert_eq!(sealed, vec![0, 1, 2, 3]);
        let out = run_verify(&SimBackend::new(), &scale, 42, &journal);
        let _ = std::fs::remove_file(&journal);
        assert_eq!(out.info.batches_applied, 4);
        assert_eq!(out.recovered, out.reference);
        // A wrong seed must not verify: the reference replay diverges.
        let journal = temp_journal("ingest-bad-seed");
        run_ingest(&SimBackend::new(), &scale, 42, &journal, 4, |_| {});
        let bad = run_verify(&SimBackend::new(), &scale, 43, &journal);
        let _ = std::fs::remove_file(&journal);
        assert_ne!(bad.recovered, bad.reference);
    }

    #[test]
    fn bench_json_line_is_one_line_and_balanced() {
        let journal = temp_journal("json");
        let report = run_with(&SimBackend::new(), &Scale::tiny(), 5, &[1, 0], &journal);
        let _ = std::fs::remove_file(&journal);
        let line = bench_json_line(&report, "sim", "tiny", 5, 1_700_000_000_000);
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert!(line.contains("\"experiment\":\"recover\""));
        assert!(line.contains("\"fsync_every\":\"1\""));
        assert!(line.contains("\"fsync_every\":\"quiesce\""));
    }
}
