//! Figure 7 — update performance of partial views.
//!
//! Paper setup (§3.4): a one-column table of 1M pages, filled uniformly
//! (Figure 7a) or with the sine distribution (Figure 7b) over
//! `[0, 2^64 - 1]`. Five partial views are created, each covering a
//! randomly selected 1/1024-th of the value range. A varying number of
//! updates (100 … 1M) is applied in one batch and all views are aligned;
//! the total time is split into the time to parse the memory mappings and
//! the time to update the views. Additionally, the time to rebuild all five
//! views from scratch is reported as the comparison point, together with
//! the number of physical pages added/removed during alignment.

use asv_core::{
    align_views_after_updates_with, apply_plan, build_view_for_range_with, snapshot_alignment,
    spawn_alignment, CreationOptions, Parallelism, UpdateAlignmentStats, ViewSet,
};
use asv_storage::{Column, Update};
use asv_util::{Timer, ValueRange};
use asv_vmem::{Backend, VmemError};
use asv_workloads::{Distribution, UpdateWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::Table;
use crate::scale::Scale;

/// Number of partial views maintained in the experiment (as in the paper).
pub const NUM_VIEWS: usize = 5;
/// Each view covers a 1/1024-th of the value range (as in the paper).
pub const RANGE_FRACTION: u64 = 1024;

/// How the views are aligned with the update batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AlignMode {
    /// Stop-the-world alignment on the calling thread (the paper's setup;
    /// the default, bit-identical to the pre-background harness).
    #[default]
    Sync,
    /// Epoch-handoff alignment: snapshot on the caller, plan on a
    /// background worker, publish on the caller.
    Background,
}

impl AlignMode {
    /// Parses a `--align-mode` value.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "sync" => Some(AlignMode::Sync),
            "background" => Some(AlignMode::Background),
            _ => None,
        }
    }

    /// The mode's display name.
    pub fn name(&self) -> &'static str {
        match self {
            AlignMode::Sync => "sync",
            AlignMode::Background => "background",
        }
    }
}

/// Aligns `views` with `batch` in the given mode, returning the usual
/// alignment stats. In background mode the caller blocks until the worker
/// finishes (the figure measures alignment cost, not overlap — see the
/// `align-overlap` experiment for throughput during alignment).
pub fn align_with_mode<B: Backend>(
    column: &Column<B>,
    views: &mut ViewSet<B>,
    batch: &[Update],
    parallelism: Parallelism,
    mode: AlignMode,
) -> Result<UpdateAlignmentStats, VmemError> {
    match mode {
        AlignMode::Sync => align_views_after_updates_with(column, views, batch, parallelism),
        AlignMode::Background => {
            let snapshot = snapshot_alignment(column, views, batch)?;
            let pending = spawn_alignment(snapshot, parallelism);
            let plan = pending.join();
            apply_plan(column, views, &plan)
        }
    }
}

/// One measured (distribution, batch size) cell of Figure 7.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Distribution name (uniform / sine).
    pub distribution: String,
    /// Number of updates in the batch.
    pub batch_size: usize,
    /// Time to materialize the memory mappings (parse `/proc/self/maps`),
    /// in milliseconds.
    pub parse_ms: f64,
    /// Time to update the partial views, in milliseconds.
    pub align_ms: f64,
    /// Physical pages newly added to some view.
    pub pages_added: usize,
    /// Physical pages removed from some view.
    pub pages_removed: usize,
    /// Time to rebuild all views from scratch instead (the "New" bar), in
    /// milliseconds.
    pub rebuild_ms: f64,
    /// Total pages indexed by the views before the batch.
    pub indexed_pages_before: usize,
}

/// Draws the `NUM_VIEWS` random view ranges (each 1/1024 of the domain).
pub fn draw_view_ranges(seed: u64) -> Vec<ValueRange> {
    let mut rng = StdRng::seed_from_u64(seed);
    let width = u64::MAX / RANGE_FRACTION;
    (0..NUM_VIEWS)
        .map(|_| {
            let start = rng.gen_range(0..=u64::MAX - width);
            ValueRange::new(start, start + width - 1)
        })
        .collect()
}

fn setup_views<B: Backend>(
    column: &Column<B>,
    ranges: &[ValueRange],
    parallelism: Parallelism,
) -> ViewSet<B> {
    let mut views = ViewSet::new(ranges.len());
    for range in ranges {
        let (buffer, _) =
            build_view_for_range_with(column, range, &CreationOptions::ALL, parallelism)
                .expect("view creation");
        views.insert_unchecked(*range, buffer);
    }
    views
}

/// Runs Figure 7 for one distribution on `backend`.
pub fn run_distribution<B: Backend>(
    backend: &B,
    dist: &Distribution,
    scale: &Scale,
    seed: u64,
) -> Vec<Fig7Row> {
    run_distribution_with(backend, dist, scale, seed, Parallelism::Sequential)
}

/// [`run_distribution`] with an explicit scan parallelism (applied to the
/// source scans of view creation and rebuild, and to the per-view planning
/// fork-join of the alignment itself).
pub fn run_distribution_with<B: Backend>(
    backend: &B,
    dist: &Distribution,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<Fig7Row> {
    run_distribution_with_mode(backend, dist, scale, seed, parallelism, AlignMode::Sync)
}

/// [`run_distribution_with`] with an explicit [`AlignMode`]: `Background`
/// plans the alignment on the epoch-handoff worker instead of the calling
/// thread. Pages added/removed are identical across modes by construction;
/// only the timings differ.
pub fn run_distribution_with_mode<B: Backend>(
    backend: &B,
    dist: &Distribution,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
    mode: AlignMode,
) -> Vec<Fig7Row> {
    let values = dist.generate_pages(scale.fig7_pages, seed);
    let ranges = draw_view_ranges(seed ^ 0xF167);
    let mut rows = Vec::new();
    for &batch_size in &scale.fig7_batch_sizes {
        // Fresh column and fresh views per batch size so measurements are
        // independent of previous batches.
        let mut column = Column::from_values(backend.clone(), &values).expect("column");
        let mut views = setup_views(&column, &ranges, parallelism);
        let indexed_pages_before: usize = views.partial_views().iter().map(|v| v.num_pages()).sum();

        let writes = UpdateWorkload::new(seed ^ batch_size as u64).uniform_writes(
            batch_size,
            column.num_rows(),
            u64::MAX,
        );
        let updates = column.write_batch(&writes);
        let stats = align_with_mode(&column, &mut views, &updates, parallelism, mode)
            .expect("view alignment");

        // Rebuild-from-scratch comparison, measured on the updated column.
        let rebuild_timer = Timer::start();
        let rebuilt = setup_views(&column, &ranges, parallelism);
        let rebuild_ms = rebuild_timer.elapsed_ms();
        drop(rebuilt);

        rows.push(Fig7Row {
            distribution: dist.name().to_string(),
            batch_size,
            parse_ms: stats.parse_time.as_secs_f64() * 1e3,
            align_ms: stats.align_time.as_secs_f64() * 1e3,
            pages_added: stats.pages_added,
            pages_removed: stats.pages_removed,
            rebuild_ms,
            indexed_pages_before,
        });
    }
    rows
}

/// Runs Figure 7 for both distributions (7a uniform, 7b sine), over the
/// full `[0, 2^64 - 1]` domain as in the paper.
pub fn run_all<B: Backend>(backend: &B, scale: &Scale, seed: u64) -> Vec<Fig7Row> {
    run_all_with(backend, scale, seed, Parallelism::Sequential)
}

/// [`run_all`] with an explicit scan parallelism.
pub fn run_all_with<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<Fig7Row> {
    run_all_with_mode(backend, scale, seed, parallelism, AlignMode::Sync)
}

/// [`run_all_with`] with an explicit [`AlignMode`].
pub fn run_all_with_mode<B: Backend>(
    backend: &B,
    scale: &Scale,
    seed: u64,
    parallelism: Parallelism,
    mode: AlignMode,
) -> Vec<Fig7Row> {
    let uniform = Distribution::Uniform {
        max_value: u64::MAX,
    };
    let sine = Distribution::Sine {
        max_value: u64::MAX,
        period_pages: 100,
    };
    let mut rows = run_distribution_with_mode(backend, &uniform, scale, seed, parallelism, mode);
    rows.extend(run_distribution_with_mode(
        backend,
        &sine,
        scale,
        seed,
        parallelism,
        mode,
    ));
    rows
}

/// Renders the Figure 7 rows.
pub fn to_table(rows: &[Fig7Row]) -> Table {
    let mut table = Table::new(
        "Figure 7: update performance (batched view alignment vs rebuild)",
        &[
            "distribution",
            "batch size",
            "parse ms",
            "update ms",
            "total ms",
            "rebuild ms",
            "pages added",
            "pages removed",
            "indexed before",
        ],
    );
    for r in rows {
        table.add_row(vec![
            r.distribution.clone(),
            r.batch_size.to_string(),
            format!("{:.2}", r.parse_ms),
            format!("{:.2}", r.align_ms),
            format!("{:.2}", r.parse_ms + r.align_ms),
            format!("{:.2}", r.rebuild_ms),
            r.pages_added.to_string(),
            r.pages_removed.to_string(),
            r.indexed_pages_before.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_reports_alignment_and_rebuild() {
        let scale = Scale::tiny();
        let rows = run_distribution(
            &asv_vmem::SimBackend::new(),
            &Distribution::Uniform {
                max_value: u64::MAX,
            },
            &scale,
            9,
        );
        assert_eq!(rows.len(), scale.fig7_batch_sizes.len());
        for r in &rows {
            assert!(r.parse_ms >= 0.0 && r.align_ms >= 0.0 && r.rebuild_ms > 0.0);
        }
        // Larger batches touch at least as many pages.
        assert!(
            rows.last().unwrap().pages_added + rows.last().unwrap().pages_removed
                >= rows.first().unwrap().pages_added + rows.first().unwrap().pages_removed
        );
        let table = to_table(&rows);
        assert_eq!(table.num_rows(), rows.len());
    }

    #[test]
    fn background_mode_matches_sync_page_counts() {
        let scale = Scale::tiny();
        let dist = Distribution::Uniform {
            max_value: u64::MAX,
        };
        let b = asv_vmem::SimBackend::new();
        let sync = run_distribution_with_mode(
            &b,
            &dist,
            &scale,
            9,
            Parallelism::Sequential,
            AlignMode::Sync,
        );
        let bg = run_distribution_with_mode(
            &b,
            &dist,
            &scale,
            9,
            Parallelism::Threads(2),
            AlignMode::Background,
        );
        assert_eq!(sync.len(), bg.len());
        for (s, g) in sync.iter().zip(&bg) {
            assert_eq!(s.batch_size, g.batch_size);
            assert_eq!(s.pages_added, g.pages_added, "batch {}", s.batch_size);
            assert_eq!(s.pages_removed, g.pages_removed, "batch {}", s.batch_size);
            assert_eq!(s.indexed_pages_before, g.indexed_pages_before);
        }
        assert_eq!(
            AlignMode::by_name("background"),
            Some(AlignMode::Background)
        );
        assert_eq!(AlignMode::by_name("sync"), Some(AlignMode::Sync));
        assert!(AlignMode::by_name("nope").is_none());
        assert_eq!(AlignMode::default().name(), "sync");
    }

    #[test]
    fn view_ranges_are_deterministic_fractions() {
        let a = draw_view_ranges(1);
        let b = draw_view_ranges(1);
        assert_eq!(a, b);
        assert_eq!(a.len(), NUM_VIEWS);
        for r in &a {
            assert_eq!(r.width(), u64::MAX / RANGE_FRACTION);
        }
    }
}
