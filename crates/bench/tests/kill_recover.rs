//! Kill-and-recover integration test: a real SIGKILL against a real
//! process, not an injected fault.
//!
//! The test spawns the `experiments` binary in its hidden
//! `recover-ingest` mode, which journals acknowledged write batches and
//! flushes a `sealed batch N` marker after each commit. Once enough
//! markers have streamed out, the child is SIGKILLed mid-run — whatever
//! instant the kernel picks is the crash point. A second invocation in
//! `recover-verify` mode then recovers the journal, regenerates the
//! sealed batch prefix independently from the same seed, and writes both
//! probe-answer tables as CSV; a third invocation gates them with
//! `experiments compare --max-delta-pct 0`, so recovery exactness is
//! enforced on the rendered bytes — the same check CI runs.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// Markers to wait for before delivering SIGKILL: enough that the kill
/// lands well inside the batch loop, past the column load and the first
/// commits.
const SEALED_BEFORE_KILL: usize = 5;

/// Batch budget of the child — a bound, not a target: the kill arrives
/// after ~[`SEALED_BEFORE_KILL`] batches, and even a never-killed child
/// exits (without a quiesce) rather than running forever.
const BATCH_BUDGET: usize = 20_000;

fn experiments_bin() -> &'static str {
    env!("CARGO_BIN_EXE_experiments")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asv-kill-recover-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Spawns `recover-ingest`, SIGKILLs it after enough sealed markers, and
/// returns how many seals were observed before the kill.
fn ingest_then_kill(journal: &Path, backend_args: &[&str]) -> usize {
    let mut child = Command::new(experiments_bin())
        .args([
            "recover-ingest",
            "--scale",
            "tiny",
            "--seed",
            "42",
            "--journal",
        ])
        .arg(journal)
        .args(["--batches", &BATCH_BUDGET.to_string()])
        .args(backend_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn recover-ingest");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut sealed = 0usize;
    let mut line = String::new();
    while sealed < SEALED_BEFORE_KILL {
        line.clear();
        let n = reader.read_line(&mut line).expect("read ingest marker");
        assert!(
            n > 0,
            "ingest child exited after only {sealed} sealed batches"
        );
        if line.starts_with("sealed batch") {
            sealed += 1;
        }
    }
    // On Unix `kill()` delivers SIGKILL: no atexit hooks, no Drop glue,
    // no final flush — the journal tail is whatever made it to the file.
    child.kill().expect("SIGKILL the ingest child");
    let _ = child.wait();
    sealed
}

fn run_kill_recover(tag: &str, backend_args: &[&str]) {
    let dir = scratch_dir(tag);
    let journal = dir.join("serve.wal");
    let sealed = ingest_then_kill(&journal, backend_args);
    assert!(sealed >= SEALED_BEFORE_KILL);

    let verify_dir = dir.join("verify");
    let status = Command::new(experiments_bin())
        .args([
            "recover-verify",
            "--scale",
            "tiny",
            "--seed",
            "42",
            "--journal",
        ])
        .arg(&journal)
        .arg("--csv-dir")
        .arg(&verify_dir)
        .args(backend_args)
        .status()
        .expect("run recover-verify");
    assert!(
        status.success(),
        "recover-verify failed after SIGKILL (exit: {status})"
    );

    let status = Command::new(experiments_bin())
        .arg("compare")
        .arg(verify_dir.join("recover_recovered"))
        .arg(verify_dir.join("recover_reference"))
        .args(["--max-delta-pct", "0"])
        .status()
        .expect("run compare gate");
    assert!(
        status.success(),
        "recovered answers are not byte-identical to the sealed-prefix reference"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_mid_ingest_recovers_exactly_on_sim_backend() {
    run_kill_recover("sim", &["--backend", "sim"]);
}

#[cfg(target_os = "linux")]
#[test]
fn sigkill_mid_ingest_recovers_exactly_on_file_backend() {
    // The child's stores and the verifier's rebuilt stores land in one
    // pinned directory so the test can clean up what the SIGKILLed child
    // never will.
    let dir = scratch_dir("file-stores");
    let stores = dir.join("stores");
    run_kill_recover(
        "file",
        &["--backend", "file", "--store-dir", stores.to_str().unwrap()],
    );
    let _ = std::fs::remove_dir_all(&dir);
}
