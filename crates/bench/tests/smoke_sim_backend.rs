//! End-to-end smoke test of the experiment harness on the portable
//! simulation backend.
//!
//! Runs every figure/table driver at the `tiny` scale on
//! `AnyBackend::Sim` — the configuration that must work on *any* platform —
//! and asserts the produced series are non-empty and internally consistent.
//! For Figure 3 the reported result cardinalities are additionally checked
//! against a scalar rescan of the (updated) raw values.

use asv_bench::{
    ablation, align_overlap, fig3, fig4, fig5, fig6, fig7, filter_kernel, scaling, table1, Scale,
};
use asv_util::{Parallelism, ValueRange};
use asv_vmem::AnyBackend;
use asv_workloads::{Distribution, UpdateWorkload, DEFAULT_MAX_VALUE};

const SEED: u64 = 0x51A0;

fn backend() -> AnyBackend {
    AnyBackend::sim()
}

#[test]
fn fig3_counts_match_a_scalar_rescan() {
    let scale = Scale::tiny();
    let rows = fig3::run(&backend(), &scale, SEED);
    assert_eq!(
        rows.len(),
        fig3::K_VALUES.len() * 5,
        "7 k-values x 5 variants"
    );

    // Reproduce the driver's data: same distribution, same seed, same
    // updates (the driver applies them through every index before querying).
    let dist = Distribution::Uniform {
        max_value: DEFAULT_MAX_VALUE,
    };
    let mut values = dist.generate_pages(scale.fig3_pages, SEED);
    let writes = UpdateWorkload::new(SEED ^ 0xF163).uniform_writes(
        scale.fig3_updates,
        values.len(),
        DEFAULT_MAX_VALUE,
    );
    for &(row, v) in &writes {
        values[row] = v;
    }

    for chunk in rows.chunks(5) {
        let k = chunk[0].k;
        let query = ValueRange::new(0, k / 2);
        let expected = values.iter().filter(|v| query.contains(**v)).count() as u64;
        for row in chunk {
            assert_eq!(row.k, k, "rows must be grouped by k");
            assert_eq!(
                row.count, expected,
                "variant {} disagrees with the scalar rescan for k={k}",
                row.variant
            );
            assert!(row.runtime_ms >= 0.0);
            assert!(row.indexed_pages <= scale.fig3_pages);
        }
    }
}

#[test]
fn fig4_series_are_complete_and_views_emerge() {
    let scale = Scale::tiny();
    let results = fig4::run_all(&backend(), &scale, SEED);
    assert_eq!(results.len(), 3, "sine, linear, sparse");
    for r in &results {
        assert_eq!(r.rows.len(), scale.num_queries);
        assert!(
            r.final_views >= 1,
            "{}: clustered data must produce views",
            r.distribution
        );
        assert!(r.adaptive_total_s > 0.0 && r.fullscan_total_s > 0.0);
        // The adaptive layer must beat a full scan on scan volume at least
        // once (the driver itself asserts count/sum equality per query).
        assert!(r.rows.iter().any(|q| q.scanned_pages < scale.fig45_pages));
    }
}

#[test]
fn fig5_multi_view_mode_uses_views() {
    let scale = Scale::tiny();
    let results = fig5::run_all(&backend(), &scale, SEED);
    assert_eq!(results.len(), 2, "1% and 10% selectivity configs");
    for r in &results {
        assert_eq!(r.rows.len(), scale.num_queries);
        assert!(r.final_views >= 1);
        assert!(r.final_views <= r.max_views);
        assert!(r.max_views_used >= 1);
        assert!(r.adaptive_total_s > 0.0 && r.fullscan_total_s > 0.0);
    }
}

#[test]
fn fig6_all_variants_map_the_same_pages() {
    let scale = Scale::tiny();
    let rows = fig6::run(&backend(), &scale, SEED);
    assert_eq!(rows.len(), 8, "2 distributions x 4 variants");
    for chunk in rows.chunks(4) {
        let pages = chunk[0].mapped_pages;
        assert!(pages > 0, "a view over clustered data must map pages");
        assert!(
            chunk.iter().all(|r| r.mapped_pages == pages),
            "optimizations must not change which pages qualify"
        );
        assert!(chunk.iter().all(|r| r.create_ms >= 0.0));
    }
}

#[test]
fn fig7_alignment_touches_pages_and_reports_timings() {
    let scale = Scale::tiny();
    let rows = fig7::run_all(&backend(), &scale, SEED);
    assert_eq!(rows.len(), 2 * scale.fig7_batch_sizes.len());
    for r in &rows {
        assert!(r.parse_ms >= 0.0 && r.align_ms >= 0.0);
        assert!(r.rebuild_ms > 0.0);
        assert!(r.indexed_pages_before <= fig7::NUM_VIEWS * scale.fig7_pages);
    }
    // Somewhere in the series an update batch must actually move pages.
    assert!(
        rows.iter().any(|r| r.pages_added + r.pages_removed > 0),
        "random updates over the full domain must change view membership"
    );
}

#[test]
fn fig7_background_alignment_matches_sync_results() {
    // Same figure, aligned via the epoch-handoff worker: identical page
    // movements and view sizes, only the timings may differ.
    let scale = Scale::tiny();
    let sync = fig7::run_all(&backend(), &scale, SEED);
    let bg = fig7::run_all_with_mode(
        &backend(),
        &scale,
        SEED,
        Parallelism::Threads(2),
        fig7::AlignMode::Background,
    );
    assert_eq!(sync.len(), bg.len());
    for (s, b) in sync.iter().zip(&bg) {
        assert_eq!(s.distribution, b.distribution);
        assert_eq!(s.batch_size, b.batch_size);
        assert_eq!(
            s.pages_added, b.pages_added,
            "{}/{}",
            s.distribution, s.batch_size
        );
        assert_eq!(s.pages_removed, b.pages_removed);
        assert_eq!(s.indexed_pages_before, b.indexed_pages_before);
    }
}

#[test]
fn align_overlap_reports_both_modes_with_consistent_answers() {
    let scale = Scale::tiny();
    let rows = align_overlap::run(&backend(), &scale, SEED);
    // Per batch size: one sync baseline + (chunk sizes × write rates)
    // background cells; the run itself asserts every background cell's
    // post-drain checksum against its synchronous twin.
    assert!(rows.len() >= 3 * scale.fig7_batch_sizes.len());
    for batch_size in &scale.fig7_batch_sizes {
        let batch_rows: Vec<_> = rows
            .iter()
            .filter(|r| r.batch_size == *batch_size)
            .collect();
        let sync = batch_rows
            .iter()
            .find(|r| r.mode == "sync")
            .expect("sync baseline row");
        assert_eq!(sync.queries_during, 0, "sync alignment blocks queries");
        for bg in batch_rows.iter().filter(|r| r.mode == "background") {
            assert!(bg.chunks_published >= 1);
            assert!(bg.publish_p50_ms <= bg.publish_max_ms + 1e-9);
            if bg.write_every == 0 {
                // Identical logical writes: same answers as the baseline.
                assert_eq!(bg.checksum_after, sync.checksum_after);
            } else {
                assert!(
                    bg.writes_queued > 0,
                    "write cells queue at least one mid-alignment burst"
                );
            }
            assert!(bg.align_wall_ms >= 0.0);
        }
    }
}

#[test]
fn table1_aggregates_all_five_experiments() {
    let entries = table1::run(&backend(), &Scale::tiny(), SEED);
    assert_eq!(entries.len(), 5);
    for e in &entries {
        assert!(e.fullscan_s > 0.0 && e.adaptive_s > 0.0);
        assert!(e.speedup() > 0.0);
    }
}

#[test]
fn ablation_covers_every_configuration() {
    let rows = ablation::run(&backend(), &Scale::tiny(), SEED);
    assert_eq!(rows.len(), ablation::configurations().len());
    for r in &rows {
        assert!(r.total_s > 0.0, "{} produced no measurement", r.label);
    }
}

#[test]
fn scaling_sweep_covers_all_thread_counts() {
    let rows = scaling::run(&backend(), &Scale::tiny(), SEED);
    assert_eq!(rows.len(), scaling::THREAD_COUNTS.len() * 2);
    for r in &rows {
        assert!(
            r.total_s > 0.0,
            "{}@{}T produced no time",
            r.variant,
            r.threads
        );
    }
    // The run itself asserts count/sum equality and identical view
    // decisions across thread counts; here we only check shape.
    assert!(rows.iter().any(|r| r.variant == "full-scan"));
    assert!(rows.iter().any(|r| r.variant == "adaptive"));
}

#[test]
fn parallel_drivers_agree_with_sequential_drivers() {
    // Every figure driver must produce the same *results* (counts, view
    // counts, mapped pages) regardless of the scan parallelism; only the
    // timings may differ.
    let scale = Scale::tiny();
    let threads = Parallelism::Threads(2);

    let seq = fig4::run_all(&backend(), &scale, SEED);
    let par = fig4::run_all_with(&backend(), &scale, SEED, threads);
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.distribution, p.distribution);
        assert_eq!(s.final_views, p.final_views);
        let seq_pages: Vec<usize> = s.rows.iter().map(|r| r.scanned_pages).collect();
        let par_pages: Vec<usize> = p.rows.iter().map(|r| r.scanned_pages).collect();
        assert_eq!(seq_pages, par_pages, "{}", s.distribution);
    }

    let seq = fig6::run(&backend(), &scale, SEED);
    let par = fig6::run_with(&backend(), &scale, SEED, threads);
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(
            s.mapped_pages, p.mapped_pages,
            "{}/{}",
            s.distribution, s.variant
        );
    }
}

#[test]
fn filter_kernel_chunked_matches_scalar_on_sim() {
    // `run_with` itself asserts per-cell bit-identical answers between the
    // chunked kernels and the scalar references; here we check the report's
    // shape and that the exported answer tables (the compare-gate inputs)
    // render identically for both variants.
    let report = with_sim_backend(|b| filter_kernel::run_with(b, &Scale::tiny(), SEED));
    assert_eq!(
        report.cells.len(),
        filter_kernel::MODES.len()
            * filter_kernel::SELECTIVITIES.len()
            * filter_kernel::VARIANTS.len()
    );
    let scalar = filter_kernel::answers_table(&report, "scalar").to_csv();
    let chunked = filter_kernel::answers_table(&report, "chunked").to_csv();
    assert_eq!(scalar, chunked);
    let line = filter_kernel::bench_json_line(&report, "sim", "tiny", SEED, 0);
    assert!(line.contains("\"count_only_speedup\""));
}

/// Runs `f` against the concrete `SimBackend` inside `AnyBackend::sim()`.
fn with_sim_backend<R>(f: impl FnOnce(&asv_vmem::SimBackend) -> R) -> R {
    match backend() {
        AnyBackend::Sim(b) => f(&b),
        #[cfg(target_os = "linux")]
        AnyBackend::Mmap(_) => unreachable!("backend() is always sim"),
        #[cfg(target_os = "linux")]
        AnyBackend::File(_) => unreachable!("backend() is always sim"),
    }
}

#[cfg(target_os = "linux")]
#[test]
fn fig3_sim_and_mmap_backends_agree_on_counts() {
    // The same experiment on both backends must report identical result
    // cardinalities and indexed page counts — only the timings may differ.
    let scale = Scale::tiny();
    let sim = fig3::run(&AnyBackend::sim(), &scale, SEED);
    let mmap = fig3::run(&AnyBackend::mmap(), &scale, SEED);
    assert_eq!(sim.len(), mmap.len());
    for (s, m) in sim.iter().zip(&mmap) {
        assert_eq!(s.k, m.k);
        assert_eq!(s.variant, m.variant);
        assert_eq!(s.count, m.count, "variant {} k={}", s.variant, s.k);
        assert_eq!(s.indexed_pages, m.indexed_pages);
    }
}
