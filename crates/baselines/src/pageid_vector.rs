//! The "Vector of Page-IDs" explicit-index variant (paper §3.1).
//!
//! "Variant 'Vector of Page-IDs' maintains a vector containing only IDs of
//! qualifying pages. A lookup utilizes the IDs to locate the actual pages in
//! the column. Note that this variant can benefit from prefetching to speed
//! up lookups to subsequent pages" — the paper issues
//! `__builtin_prefetch(pages[i+1], 0, 0)`; we issue the equivalent
//! `_mm_prefetch` hint on x86-64.

use asv_storage::Column;
use asv_util::ValueRange;
use asv_vmem::{Backend, VALUES_PER_PAGE};

use crate::index::{IndexAnswer, RangeIndex};

/// A column plus a vector of qualifying page ids for one index range.
pub struct PageIdVectorIndex<B: Backend> {
    column: Column<B>,
    page_ids: Vec<u32>,
    index_range: ValueRange,
}

/// Issues a non-temporal prefetch hint for the given page, mirroring the
/// paper's `__builtin_prefetch(addr, 0, 0)`.
#[inline]
fn prefetch_page(data: &[u64]) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no memory effects; any address is allowed.
    unsafe {
        core::arch::x86_64::_mm_prefetch(
            data.as_ptr() as *const i8,
            core::arch::x86_64::_MM_HINT_NTA,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = data;
}

impl<B: Backend> PageIdVectorIndex<B> {
    /// Builds the page-id vector over a freshly materialized column.
    pub fn build(backend: B, values: &[u64], index_range: ValueRange) -> asv_vmem::Result<Self> {
        let column = Column::from_values(backend, values)?;
        let mut page_ids = Vec::new();
        for page in 0..column.num_pages() {
            if column
                .page_ref(page)
                .values()
                .iter()
                .any(|v| index_range.contains(*v))
            {
                page_ids.push(page as u32);
            }
        }
        Ok(Self {
            column,
            page_ids,
            index_range,
        })
    }

    /// The underlying column.
    pub fn column(&self) -> &Column<B> {
        &self.column
    }

    /// The vector of qualifying page ids (in insertion order; updates append
    /// at the end, which "might scatter the order in which pages are
    /// indexed", as the paper notes).
    pub fn page_ids(&self) -> &[u32] {
        &self.page_ids
    }
}

impl<B: Backend> RangeIndex for PageIdVectorIndex<B> {
    fn name(&self) -> &'static str {
        "explicit-pageid-vector"
    }

    fn index_range(&self) -> ValueRange {
        self.index_range
    }

    fn indexed_pages(&self) -> usize {
        self.page_ids.len()
    }

    fn query(&self, query: &ValueRange) -> IndexAnswer {
        let mut answer = IndexAnswer::default();
        for (i, &page) in self.page_ids.iter().enumerate() {
            // Prefetch the next qualifying page while scanning this one.
            if let Some(&next) = self.page_ids.get(i + 1) {
                prefetch_page(self.column.page_ref(next as usize).raw());
            }
            let res = self.column.page_ref(page as usize).scan_filter(query);
            answer.add_page(res.count, res.sum);
        }
        answer
    }

    fn apply_writes(&mut self, writes: &[(usize, u64)]) {
        let mut touched: Vec<usize> = Vec::with_capacity(writes.len());
        for &(row, value) in writes {
            self.column.write(row, value);
            touched.push(row / VALUES_PER_PAGE);
        }
        touched.sort_unstable();
        touched.dedup();
        for page in touched {
            let qualifies = self
                .column
                .page_ref(page)
                .values()
                .iter()
                .any(|v| self.index_range.contains(*v));
            let present = self.page_ids.iter().any(|&p| p as usize == page);
            if qualifies && !present {
                self.page_ids.push(page as u32);
            } else if !qualifies && present {
                self.page_ids.retain(|&p| p as usize != page);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::SimBackend;

    fn clustered(pages: usize) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    #[test]
    fn build_collects_qualifying_page_ids() {
        let values = clustered(16);
        let idx =
            PageIdVectorIndex::build(SimBackend::new(), &values, ValueRange::new(3_000, 6_100))
                .unwrap();
        assert_eq!(idx.page_ids(), &[3, 4, 5, 6]);
        assert_eq!(idx.indexed_pages(), 4);
        assert_eq!(idx.name(), "explicit-pageid-vector");
        assert_eq!(idx.index_range(), ValueRange::new(3_000, 6_100));
        assert_eq!(idx.column().num_rows(), values.len());
    }

    #[test]
    fn query_is_exact_for_subranges() {
        let values = clustered(16);
        let idx = PageIdVectorIndex::build(SimBackend::new(), &values, ValueRange::new(0, 9_000))
            .unwrap();
        let q = ValueRange::new(4_100, 7_050);
        let ans = idx.query(&q);
        let expected: Vec<u64> = values.iter().copied().filter(|v| q.contains(*v)).collect();
        assert_eq!(ans.count, expected.len() as u64);
        assert_eq!(ans.sum, expected.iter().map(|&v| v as u128).sum::<u128>());
        assert_eq!(ans.pages_scanned, idx.indexed_pages());
    }

    #[test]
    fn updates_append_and_remove_page_ids() {
        let values = clustered(8);
        let mut idx =
            PageIdVectorIndex::build(SimBackend::new(), &values, ValueRange::new(0, 999)).unwrap();
        assert_eq!(idx.page_ids(), &[0]);
        idx.apply_writes(&[(6 * VALUES_PER_PAGE, 17)]);
        assert_eq!(idx.page_ids(), &[0, 6]); // appended, scattering order
        let writes: Vec<(usize, u64)> = (0..VALUES_PER_PAGE).map(|s| (s, 90_000)).collect();
        idx.apply_writes(&writes);
        assert_eq!(idx.page_ids(), &[6]);
        assert_eq!(idx.query(&ValueRange::new(0, 999)).count, 1);
    }

    #[test]
    fn empty_column() {
        let idx = PageIdVectorIndex::build(SimBackend::new(), &[], ValueRange::full()).unwrap();
        assert_eq!(idx.indexed_pages(), 0);
        assert_eq!(idx.query(&ValueRange::full()).count, 0);
    }
}
