//! Baseline indexing schemes from the paper's evaluation.
//!
//! Section 3.1 of the paper compares a *virtual* partial view against three
//! variants that index qualifying pages *explicitly* in software, plus an
//! artificial optimum:
//!
//! * [`ZoneMapIndex`] — per-page minimum/maximum stored in-place at the
//!   beginning of each page; scans skip non-qualifying pages but must
//!   inspect the metadata of *every* page.
//! * [`BitmapIndex`] — a separate bitvector with one bit per page; lookups
//!   scan the bitvector and jump into the column for each qualifying page.
//! * [`PageIdVectorIndex`] — a vector containing only the ids of qualifying
//!   pages, with software prefetching of the next page during scans.
//! * [`PhysicalScanBaseline`] — a freshly allocated contiguous copy of all
//!   qualifying pages ("resembles an artificial optimal baseline").
//! * [`VirtualViewIndex`] — the paper's virtual partial view, wrapped in the
//!   same [`RangeIndex`] interface for apples-to-apples benchmarking.
//!
//! All variants answer the same range queries over the same logical data and
//! support the random point updates the experiment applies before querying.

pub mod bitmap;
pub mod index;
pub mod pageid_vector;
pub mod physical_scan;
pub mod virtual_view;
pub mod zonemap;

pub use bitmap::BitmapIndex;
pub use index::{IndexAnswer, RangeIndex};
pub use pageid_vector::PageIdVectorIndex;
pub use physical_scan::PhysicalScanBaseline;
pub use virtual_view::VirtualViewIndex;
pub use zonemap::ZoneMapIndex;
