//! The "Zone Map" explicit-index variant (paper §3.1).
//!
//! "Variant 'Zone Map' stores the observed minimum and maximum value of
//! each page in-place at the beginning of the page, before the actual
//! values are materialized. During a scan, non-qualifying pages are simply
//! skipped."
//!
//! Because the metadata lives *inside* every page, a lookup must touch all
//! pages of the column (one address translation per page), which is exactly
//! why this variant loses against the virtual view in Figure 3.

use asv_util::ValueRange;
use asv_vmem::SLOTS_PER_PAGE;

use crate::index::{IndexAnswer, RangeIndex};

/// Slot of the in-place minimum.
const MIN_SLOT: usize = 0;
/// Slot of the in-place maximum.
const MAX_SLOT: usize = 1;
/// Number of value slots per page (two header slots are reserved).
pub const ZONEMAP_VALUES_PER_PAGE: usize = SLOTS_PER_PAGE - 2;

/// A column representation with an embedded zone map.
pub struct ZoneMapIndex {
    /// Page-structured buffer: `[min, max, v0, v1, ...]` per page.
    pages: Vec<u64>,
    num_rows: usize,
    index_range: ValueRange,
}

impl ZoneMapIndex {
    /// Builds the zone-mapped column from `values`, indexing `index_range`.
    pub fn build(values: &[u64], index_range: ValueRange) -> Self {
        let num_pages = values.len().div_ceil(ZONEMAP_VALUES_PER_PAGE);
        let mut pages = vec![0u64; num_pages * SLOTS_PER_PAGE];
        for page in 0..num_pages {
            let start = page * ZONEMAP_VALUES_PER_PAGE;
            let end = (start + ZONEMAP_VALUES_PER_PAGE).min(values.len());
            let chunk = &values[start..end];
            let raw = &mut pages[page * SLOTS_PER_PAGE..(page + 1) * SLOTS_PER_PAGE];
            raw[MIN_SLOT] = chunk.iter().copied().min().unwrap_or(u64::MAX);
            raw[MAX_SLOT] = chunk.iter().copied().max().unwrap_or(0);
            raw[2..2 + chunk.len()].copy_from_slice(chunk);
        }
        Self {
            pages,
            num_rows: values.len(),
            index_range,
        }
    }

    /// Number of pages of the zone-mapped column.
    pub fn num_pages(&self) -> usize {
        self.pages.len() / SLOTS_PER_PAGE
    }

    fn valid_values_on_page(&self, page: usize) -> usize {
        let full = self.num_rows / ZONEMAP_VALUES_PER_PAGE;
        if page < full {
            ZONEMAP_VALUES_PER_PAGE
        } else if page == full {
            self.num_rows % ZONEMAP_VALUES_PER_PAGE
        } else {
            0
        }
    }

    fn page_raw(&self, page: usize) -> &[u64] {
        &self.pages[page * SLOTS_PER_PAGE..(page + 1) * SLOTS_PER_PAGE]
    }

    /// Reads one value (test helper).
    pub fn value(&self, row: usize) -> u64 {
        assert!(row < self.num_rows, "row {row} out of bounds");
        let page = row / ZONEMAP_VALUES_PER_PAGE;
        let slot = row % ZONEMAP_VALUES_PER_PAGE;
        self.page_raw(page)[2 + slot]
    }
}

impl RangeIndex for ZoneMapIndex {
    fn name(&self) -> &'static str {
        "explicit-zonemap"
    }

    fn index_range(&self) -> ValueRange {
        self.index_range
    }

    fn indexed_pages(&self) -> usize {
        // Every page whose zone overlaps the index range would be visited
        // for a query over the full index range.
        (0..self.num_pages())
            .filter(|&p| {
                let raw = self.page_raw(p);
                self.valid_values_on_page(p) > 0
                    && raw[MIN_SLOT] <= self.index_range.high()
                    && raw[MAX_SLOT] >= self.index_range.low()
            })
            .count()
    }

    fn query(&self, query: &ValueRange) -> IndexAnswer {
        let mut answer = IndexAnswer::default();
        for page in 0..self.num_pages() {
            let raw = self.page_raw(page);
            // In-place metadata check: touches every page of the column.
            let zone_min = raw[MIN_SLOT];
            let zone_max = raw[MAX_SLOT];
            if zone_min > query.high() || zone_max < query.low() {
                continue;
            }
            let valid = self.valid_values_on_page(page);
            let mut count = 0u64;
            let mut sum = 0u128;
            for &v in &raw[2..2 + valid] {
                if query.contains(v) {
                    count += 1;
                    sum += v as u128;
                }
            }
            answer.add_page(count, sum);
        }
        answer
    }

    fn apply_writes(&mut self, writes: &[(usize, u64)]) {
        for &(row, value) in writes {
            assert!(row < self.num_rows, "row {row} out of bounds");
            let page = row / ZONEMAP_VALUES_PER_PAGE;
            let slot = row % ZONEMAP_VALUES_PER_PAGE;
            let raw = &mut self.pages[page * SLOTS_PER_PAGE..(page + 1) * SLOTS_PER_PAGE];
            raw[2 + slot] = value;
            // Widen the zone; shrinking would require a page rescan, which
            // zone maps typically defer (the zone stays a conservative
            // filter either way).
            if value < raw[MIN_SLOT] {
                raw[MIN_SLOT] = value;
            }
            if value > raw[MAX_SLOT] {
                raw[MAX_SLOT] = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(pages: usize) -> Vec<u64> {
        (0..pages * ZONEMAP_VALUES_PER_PAGE)
            .map(|i| ((i / ZONEMAP_VALUES_PER_PAGE) * 1000 + i % ZONEMAP_VALUES_PER_PAGE) as u64)
            .collect()
    }

    fn reference(values: &[u64], q: &ValueRange) -> (u64, u128) {
        values
            .iter()
            .filter(|v| q.contains(**v))
            .fold((0, 0), |(c, s), &v| (c + 1, s + v as u128))
    }

    #[test]
    fn build_and_query_matches_reference() {
        let values = clustered(16);
        let idx = ZoneMapIndex::build(&values, ValueRange::new(0, 9_000));
        assert_eq!(idx.num_pages(), 16);
        assert_eq!(idx.name(), "explicit-zonemap");
        assert_eq!(idx.index_range(), ValueRange::new(0, 9_000));
        let q = ValueRange::new(2_000, 4_500);
        let ans = idx.query(&q);
        let (c, s) = reference(&values, &q);
        assert_eq!(ans.count, c);
        assert_eq!(ans.sum, s);
        // Only the pages overlapping the query were scanned (pages 2..=4).
        assert_eq!(ans.pages_scanned, 3);
    }

    #[test]
    fn indexed_pages_counts_overlapping_zones() {
        let values = clustered(16);
        let idx = ZoneMapIndex::build(&values, ValueRange::new(0, 4_999));
        // Pages 0..=4 have zones overlapping [0, 4999].
        assert_eq!(idx.indexed_pages(), 5);
    }

    #[test]
    fn value_accessor_and_partial_last_page() {
        let mut values = clustered(2);
        values.truncate(ZONEMAP_VALUES_PER_PAGE + 10);
        let idx = ZoneMapIndex::build(&values, ValueRange::full());
        assert_eq!(idx.num_pages(), 2);
        assert_eq!(idx.value(0), values[0]);
        assert_eq!(
            idx.value(ZONEMAP_VALUES_PER_PAGE + 9),
            values[ZONEMAP_VALUES_PER_PAGE + 9]
        );
        let ans = idx.query(&ValueRange::full());
        assert_eq!(ans.count, values.len() as u64);
    }

    #[test]
    fn updates_are_visible_and_zones_widen() {
        let values = clustered(8);
        let mut idx = ZoneMapIndex::build(&values, ValueRange::full());
        idx.apply_writes(&[(0, 900_000), (ZONEMAP_VALUES_PER_PAGE * 3, 1)]);
        assert_eq!(idx.value(0), 900_000);
        // The huge value must be found by a query targeting it.
        let ans = idx.query(&ValueRange::new(900_000, 900_000));
        assert_eq!(ans.count, 1);
        // The tiny value on page 3 must be found as well.
        let ans = idx.query(&ValueRange::new(0, 1));
        assert_eq!(ans.count, 2); // original value 0 on page 0 was overwritten... page 0 slot 0 now 900_000
                                  // Actually: page 0's original value 0 became 900_000, and page 3 got a 1;
                                  // the only remaining values <= 1 are page 0's value 1 (row 1) and the new 1.
    }

    #[test]
    fn empty_column() {
        let idx = ZoneMapIndex::build(&[], ValueRange::full());
        assert_eq!(idx.num_pages(), 0);
        assert_eq!(idx.indexed_pages(), 0);
        assert_eq!(idx.query(&ValueRange::full()).count, 0);
    }
}
