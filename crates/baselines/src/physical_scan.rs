//! The "Physical Scan" baseline (paper §3.1).
//!
//! "Variant 'Physical Scan' resembles scanning a consecutive memory area,
//! that has been allocated traditionally with new and already contains all
//! qualifying pages. This resembles an artificial optimal baseline."
//!
//! The qualifying pages are copied into one contiguous heap allocation; a
//! query is a single linear scan over that copy.

use asv_util::ValueRange;
use asv_vmem::{SLOTS_PER_PAGE, VALUES_PER_PAGE};

use crate::index::{IndexAnswer, RangeIndex};

/// A contiguous physical copy of all qualifying pages.
pub struct PhysicalScanBaseline {
    /// Logical column values (kept to support updates and rebuilds).
    values: Vec<u64>,
    /// Contiguous copy of the qualifying pages, in page layout
    /// (`[pageID, v0, v1, ...]` per page).
    compact: Vec<u64>,
    index_range: ValueRange,
}

impl PhysicalScanBaseline {
    /// Builds the compact physical copy for `index_range`.
    pub fn build(values: &[u64], index_range: ValueRange) -> Self {
        let mut baseline = Self {
            values: values.to_vec(),
            compact: Vec::new(),
            index_range,
        };
        baseline.rebuild_compact();
        baseline
    }

    fn num_pages(&self) -> usize {
        self.values.len().div_ceil(VALUES_PER_PAGE)
    }

    fn rebuild_compact(&mut self) {
        self.compact.clear();
        for page in 0..self.num_pages() {
            let start = page * VALUES_PER_PAGE;
            let end = (start + VALUES_PER_PAGE).min(self.values.len());
            let chunk = &self.values[start..end];
            if chunk.iter().any(|v| self.index_range.contains(*v)) {
                let mut raw = vec![0u64; SLOTS_PER_PAGE];
                raw[0] = page as u64;
                raw[1..1 + chunk.len()].copy_from_slice(chunk);
                self.compact.extend_from_slice(&raw);
            }
        }
    }

    /// Number of values in the logical column.
    pub fn num_rows(&self) -> usize {
        self.values.len()
    }
}

impl RangeIndex for PhysicalScanBaseline {
    fn name(&self) -> &'static str {
        "physical-scan"
    }

    fn index_range(&self) -> ValueRange {
        self.index_range
    }

    fn indexed_pages(&self) -> usize {
        self.compact.len() / SLOTS_PER_PAGE
    }

    fn query(&self, query: &ValueRange) -> IndexAnswer {
        let mut answer = IndexAnswer::default();
        for raw in self.compact.chunks_exact(SLOTS_PER_PAGE) {
            let page_id = raw[0] as usize;
            let start = page_id * VALUES_PER_PAGE;
            let valid = (self.values.len() - start).min(VALUES_PER_PAGE);
            let mut count = 0u64;
            let mut sum = 0u128;
            for &v in &raw[1..1 + valid] {
                if query.contains(v) {
                    count += 1;
                    sum += v as u128;
                }
            }
            answer.add_page(count, sum);
        }
        answer
    }

    fn apply_writes(&mut self, writes: &[(usize, u64)]) {
        for &(row, value) in writes {
            assert!(row < self.values.len(), "row {row} out of bounds");
            self.values[row] = value;
        }
        // The artificial baseline simply re-materializes its compact copy;
        // the cost is outside the timed query path, exactly as in the paper
        // where the copy "already contains all qualifying pages".
        self.rebuild_compact();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(pages: usize) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    #[test]
    fn build_copies_only_qualifying_pages() {
        let values = clustered(16);
        let b = PhysicalScanBaseline::build(&values, ValueRange::new(3_000, 6_100));
        assert_eq!(b.indexed_pages(), 4);
        assert_eq!(b.num_rows(), values.len());
        assert_eq!(b.name(), "physical-scan");
        assert_eq!(b.index_range(), ValueRange::new(3_000, 6_100));
    }

    #[test]
    fn query_matches_reference() {
        let values = clustered(16);
        let b = PhysicalScanBaseline::build(&values, ValueRange::new(0, 9_000));
        let q = ValueRange::new(2_000, 5_100);
        let ans = b.query(&q);
        let expected: Vec<u64> = values.iter().copied().filter(|v| q.contains(*v)).collect();
        assert_eq!(ans.count, expected.len() as u64);
        assert_eq!(ans.sum, expected.iter().map(|&v| v as u128).sum::<u128>());
    }

    #[test]
    fn updates_rebuild_the_compact_copy() {
        let values = clustered(8);
        let mut b = PhysicalScanBaseline::build(&values, ValueRange::new(0, 999));
        assert_eq!(b.indexed_pages(), 1);
        b.apply_writes(&[(5 * VALUES_PER_PAGE, 500)]);
        assert_eq!(b.indexed_pages(), 2);
        assert_eq!(b.query(&ValueRange::new(500, 500)).count, 2); // row 500 original + new
        let writes: Vec<(usize, u64)> = (0..VALUES_PER_PAGE).map(|s| (s, 77_000)).collect();
        b.apply_writes(&writes);
        assert_eq!(b.indexed_pages(), 1);
    }

    #[test]
    fn partial_last_page_and_empty_input() {
        let mut values = clustered(2);
        values.truncate(VALUES_PER_PAGE + 3);
        let b = PhysicalScanBaseline::build(&values, ValueRange::full());
        assert_eq!(b.indexed_pages(), 2);
        assert_eq!(b.query(&ValueRange::full()).count, values.len() as u64);
        let empty = PhysicalScanBaseline::build(&[], ValueRange::full());
        assert_eq!(empty.indexed_pages(), 0);
        assert_eq!(empty.query(&ValueRange::full()).count, 0);
    }
}
