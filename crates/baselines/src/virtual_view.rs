//! The virtual partial view, wrapped in the common baseline interface.
//!
//! This is the paper's own approach (§1.1/§2), exposed through the same
//! [`RangeIndex`] trait as the explicit variants so that the Figure 3
//! micro-benchmark can compare all five implementations uniformly. The view
//! is kept aligned under updates with the batched alignment algorithm of
//! `asv-core`.

use asv_core::{align_views_after_updates, build_view_for_range, CreationOptions, ViewSet};
use asv_storage::{scan_view_with, Column, ScanKernel, ScanMode};
use asv_util::{Parallelism, ValueRange};
use asv_vmem::Backend;

use crate::index::{IndexAnswer, RangeIndex};

/// A single virtual partial view over a column.
pub struct VirtualViewIndex<B: Backend> {
    column: Column<B>,
    views: ViewSet<B>,
    index_range: ValueRange,
    parallelism: Parallelism,
}

impl<B: Backend> VirtualViewIndex<B> {
    /// Materializes the column and creates the partial view for
    /// `index_range` using the given creation options.
    pub fn build(
        backend: B,
        values: &[u64],
        index_range: ValueRange,
        options: &CreationOptions,
    ) -> asv_vmem::Result<Self> {
        let column = Column::from_values(backend, values)?;
        let (buffer, _pages) = build_view_for_range(&column, &index_range, options)?;
        let mut views = ViewSet::new(1);
        views.insert_unchecked(index_range, buffer);
        Ok(Self {
            column,
            views,
            index_range,
            parallelism: Parallelism::Sequential,
        })
    }

    /// Builder-style setter: shards the query scan over the view's page
    /// range across a fork-join pool (defaults to sequential).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The underlying column.
    pub fn column(&self) -> &Column<B> {
        &self.column
    }
}

impl<B: Backend> RangeIndex for VirtualViewIndex<B> {
    fn name(&self) -> &'static str {
        "virtual-view"
    }

    fn index_range(&self) -> ValueRange {
        self.index_range
    }

    fn indexed_pages(&self) -> usize {
        self.views.partial_view(0).map_or(0, |v| v.num_pages())
    }

    fn query(&self, query: &ValueRange) -> IndexAnswer {
        let view = self.views.partial_view(0).expect("view exists");
        // The scan is a linear pass over the view's (virtually contiguous)
        // pages — no per-page indirection in user-space. It runs through
        // the unified page-range kernel, sharded across the configured
        // fork-join pool when parallelism is requested.
        let kernel = ScanKernel::new(*query, ScanMode::Aggregate);
        let out = scan_view_with(
            &kernel,
            view.buffer(),
            |raw| self.column.wrap_view_page(raw),
            self.parallelism,
        );
        IndexAnswer {
            count: out.result.count,
            sum: out.result.sum,
            pages_scanned: out.scanned_pages,
        }
    }

    fn apply_writes(&mut self, writes: &[(usize, u64)]) {
        let updates = self.column.write_batch(writes);
        align_views_after_updates(&self.column, &mut self.views, &updates)
            .expect("view alignment failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::{MmapBackend, SimBackend, VALUES_PER_PAGE};

    fn clustered(pages: usize) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    fn check_build_and_query<B: Backend>(backend: B) {
        let values = clustered(16);
        let idx = VirtualViewIndex::build(
            backend,
            &values,
            ValueRange::new(0, 9_000),
            &CreationOptions::ALL,
        )
        .unwrap();
        assert_eq!(idx.indexed_pages(), 10); // pages 0..=9
        assert_eq!(idx.name(), "virtual-view");
        let q = ValueRange::new(2_000, 5_100);
        let ans = idx.query(&q);
        let expected: Vec<u64> = values.iter().copied().filter(|v| q.contains(*v)).collect();
        assert_eq!(ans.count, expected.len() as u64);
        assert_eq!(ans.sum, expected.iter().map(|&v| v as u128).sum::<u128>());
        assert_eq!(ans.pages_scanned, 10);
        assert_eq!(idx.column().num_pages(), 16);
        assert_eq!(idx.index_range(), ValueRange::new(0, 9_000));
    }

    #[test]
    fn build_and_query_sim() {
        check_build_and_query(SimBackend::new());
    }

    #[test]
    fn build_and_query_mmap() {
        check_build_and_query(MmapBackend::new());
    }

    #[test]
    fn updates_keep_the_view_aligned() {
        let values = clustered(8);
        let mut idx = VirtualViewIndex::build(
            SimBackend::new(),
            &values,
            ValueRange::new(0, 999),
            &CreationOptions::ALL,
        )
        .unwrap();
        assert_eq!(idx.indexed_pages(), 1);
        idx.apply_writes(&[(6 * VALUES_PER_PAGE, 42)]);
        assert_eq!(idx.indexed_pages(), 2);
        assert_eq!(idx.query(&ValueRange::new(42, 42)).count, 2); // row 42 original + new
        let writes: Vec<(usize, u64)> = (0..VALUES_PER_PAGE).map(|s| (s, 91_000)).collect();
        idx.apply_writes(&writes);
        assert_eq!(idx.indexed_pages(), 1);
        assert_eq!(idx.query(&ValueRange::new(0, 999)).count, 1);
    }
}
