//! The common interface of all partial-index variants.

use asv_util::ValueRange;

/// The answer an index produces for a range query: cardinality and checksum
/// of the qualifying values, plus the number of pages that had to be
/// touched (the work metric behind Figure 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexAnswer {
    /// Number of qualifying values.
    pub count: u64,
    /// Sum of qualifying values (checksum for cross-variant validation).
    pub sum: u128,
    /// Number of pages whose values were actually scanned.
    pub pages_scanned: usize,
}

impl IndexAnswer {
    /// Folds a page-level contribution into the answer.
    pub fn add_page(&mut self, count: u64, sum: u128) {
        self.count += count;
        self.sum += sum;
        self.pages_scanned += 1;
    }
}

/// A partial index over one column, restricted to an *index range*: only
/// pages containing at least one value inside that range are indexed.
///
/// The Figure 3 experiment builds each variant for the index range
/// `[0, k]`, applies a batch of random point updates, and then queries a
/// sub-range (`[0, k/2]`).
pub trait RangeIndex {
    /// Short human-readable name of the variant (used in reports).
    fn name(&self) -> &'static str;

    /// The value range this index covers.
    fn index_range(&self) -> ValueRange;

    /// Number of pages currently indexed as qualifying.
    fn indexed_pages(&self) -> usize;

    /// Answers a range query. `query` must be a sub-range of
    /// [`Self::index_range`] for the answer to be complete (as with the
    /// paper's partial views, values outside the indexed range are simply
    /// not visible through the index).
    fn query(&self, query: &ValueRange) -> IndexAnswer;

    /// Applies point updates `(row, new value)` to the underlying data *and*
    /// to the index structure.
    fn apply_writes(&mut self, writes: &[(usize, u64)]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_answer_accumulates() {
        let mut a = IndexAnswer::default();
        a.add_page(3, 30);
        a.add_page(2, 12);
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 42);
        assert_eq!(a.pages_scanned, 2);
    }
}
