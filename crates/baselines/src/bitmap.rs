//! The "Bitmap" explicit-index variant (paper §3.1).
//!
//! "Variant 'Bitmap' maintains a separate bitvector, in which a one denotes
//! that a page qualifies. A lookup basically results in a scan of the
//! bitvector with subsequent jumps into the column for each qualifying
//! page."

use asv_storage::Column;
use asv_util::{BitVec, ValueRange};
use asv_vmem::{Backend, VALUES_PER_PAGE};

use crate::index::{IndexAnswer, RangeIndex};

/// A column plus a qualifying-page bitvector for one index range.
pub struct BitmapIndex<B: Backend> {
    column: Column<B>,
    bits: BitVec,
    index_range: ValueRange,
}

impl<B: Backend> BitmapIndex<B> {
    /// Builds the bitmap over a freshly materialized column.
    pub fn build(backend: B, values: &[u64], index_range: ValueRange) -> asv_vmem::Result<Self> {
        let column = Column::from_values(backend, values)?;
        let mut bits = BitVec::new(column.num_pages());
        for page in 0..column.num_pages() {
            if column
                .page_ref(page)
                .values()
                .iter()
                .any(|v| index_range.contains(*v))
            {
                bits.set(page);
            }
        }
        Ok(Self {
            column,
            bits,
            index_range,
        })
    }

    /// The underlying column.
    pub fn column(&self) -> &Column<B> {
        &self.column
    }

    /// The qualifying-page bitvector.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    fn refresh_page(&mut self, page: usize) {
        let qualifies = self
            .column
            .page_ref(page)
            .values()
            .iter()
            .any(|v| self.index_range.contains(*v));
        if qualifies {
            self.bits.set(page);
        } else {
            self.bits.clear(page);
        }
    }
}

impl<B: Backend> RangeIndex for BitmapIndex<B> {
    fn name(&self) -> &'static str {
        "explicit-bitmap"
    }

    fn index_range(&self) -> ValueRange {
        self.index_range
    }

    fn indexed_pages(&self) -> usize {
        self.bits.count_ones()
    }

    fn query(&self, query: &ValueRange) -> IndexAnswer {
        let mut answer = IndexAnswer::default();
        // Scan the bitvector; jump into the column for every set bit.
        for page in self.bits.iter_ones() {
            let page_ref = self.column.page_ref(page);
            let res = page_ref.scan_filter(query);
            answer.add_page(res.count, res.sum);
        }
        answer
    }

    fn apply_writes(&mut self, writes: &[(usize, u64)]) {
        let mut touched: Vec<usize> = Vec::with_capacity(writes.len());
        for &(row, value) in writes {
            self.column.write(row, value);
            touched.push(row / VALUES_PER_PAGE);
        }
        touched.sort_unstable();
        touched.dedup();
        for page in touched {
            self.refresh_page(page);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::SimBackend;

    fn clustered(pages: usize) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    #[test]
    fn build_marks_qualifying_pages() {
        let values = clustered(16);
        let idx =
            BitmapIndex::build(SimBackend::new(), &values, ValueRange::new(0, 4_999)).unwrap();
        assert_eq!(idx.indexed_pages(), 5); // pages 0..=4
        assert_eq!(
            idx.bits().iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(idx.name(), "explicit-bitmap");
        assert_eq!(idx.index_range(), ValueRange::new(0, 4_999));
        assert_eq!(idx.column().num_pages(), 16);
    }

    #[test]
    fn query_only_scans_indexed_pages_and_is_exact() {
        let values = clustered(16);
        let idx =
            BitmapIndex::build(SimBackend::new(), &values, ValueRange::new(0, 7_999)).unwrap();
        let q = ValueRange::new(1_000, 3_200);
        let ans = idx.query(&q);
        let expected: Vec<u64> = values.iter().copied().filter(|v| q.contains(*v)).collect();
        assert_eq!(ans.count, expected.len() as u64);
        assert_eq!(ans.sum, expected.iter().map(|&v| v as u128).sum::<u128>());
        assert_eq!(ans.pages_scanned, 8); // all indexed pages are visited
    }

    #[test]
    fn updates_flip_page_membership() {
        let values = clustered(8);
        let mut idx =
            BitmapIndex::build(SimBackend::new(), &values, ValueRange::new(0, 999)).unwrap();
        assert_eq!(idx.indexed_pages(), 1);
        // Make a value on page 5 qualify.
        idx.apply_writes(&[(5 * VALUES_PER_PAGE + 7, 500)]);
        assert_eq!(idx.indexed_pages(), 2);
        assert!(idx.bits().get(5));
        // Remove all qualifying values from page 0.
        let writes: Vec<(usize, u64)> = (0..VALUES_PER_PAGE)
            .map(|s| (s, 50_000 + s as u64))
            .collect();
        idx.apply_writes(&writes);
        assert!(!idx.bits().get(0));
        assert_eq!(idx.indexed_pages(), 1);
        // The query still finds the moved value.
        assert_eq!(idx.query(&ValueRange::new(0, 999)).count, 1);
    }

    #[test]
    fn empty_column() {
        let idx = BitmapIndex::build(SimBackend::new(), &[], ValueRange::full()).unwrap();
        assert_eq!(idx.indexed_pages(), 0);
        assert_eq!(idx.query(&ValueRange::full()).count, 0);
    }
}
