//! Property-based tests for the utility data structures.

use asv_util::{group_into_runs, BiMap, BitVec, RunBuilder, ValueRange};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

proptest! {
    // ---------------------------------------------------------------- BitVec

    #[test]
    fn bitvec_matches_a_reference_set(
        len in 1usize..2048,
        ops in prop::collection::vec((0usize..2048, any::<bool>()), 0..256),
    ) {
        let mut bv = BitVec::new(len);
        let mut reference: BTreeSet<usize> = BTreeSet::new();
        for (idx, set) in ops {
            let idx = idx % len;
            if set {
                bv.set(idx);
                reference.insert(idx);
            } else {
                bv.clear(idx);
                reference.remove(&idx);
            }
        }
        prop_assert_eq!(bv.count_ones(), reference.len());
        prop_assert_eq!(bv.count_zeros(), len - reference.len());
        prop_assert_eq!(bv.iter_ones().collect::<Vec<_>>(), reference.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(bv.any(), !reference.is_empty());
        for i in 0..len {
            prop_assert_eq!(bv.get(i), reference.contains(&i));
        }
    }

    #[test]
    fn bitvec_test_and_set_is_idempotent_on_the_second_call(
        len in 1usize..512,
        idx in 0usize..512,
    ) {
        let mut bv = BitVec::new(len);
        let idx = idx % len;
        prop_assert!(!bv.test_and_set(idx));
        prop_assert!(bv.test_and_set(idx));
        prop_assert_eq!(bv.count_ones(), 1);
    }

    #[test]
    fn bitvec_union_and_intersection_match_set_semantics(
        len in 1usize..512,
        a_bits in prop::collection::vec(0usize..512, 0..64),
        b_bits in prop::collection::vec(0usize..512, 0..64),
    ) {
        let mut a = BitVec::new(len);
        let mut b = BitVec::new(len);
        let sa: BTreeSet<usize> = a_bits.iter().map(|&i| i % len).collect();
        let sb: BTreeSet<usize> = b_bits.iter().map(|&i| i % len).collect();
        for &i in &sa { a.set(i); }
        for &i in &sb { b.set(i); }
        let mut union = a.clone();
        union.union_with(&b);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        prop_assert_eq!(union.iter_ones().collect::<BTreeSet<_>>(), sa.union(&sb).copied().collect::<BTreeSet<_>>());
        prop_assert_eq!(inter.iter_ones().collect::<BTreeSet<_>>(), sa.intersection(&sb).copied().collect::<BTreeSet<_>>());
    }

    // ----------------------------------------------------------------- BiMap

    #[test]
    fn bimap_stays_a_bijection(
        ops in prop::collection::vec((0u32..64, 0u32..64), 0..256),
    ) {
        let mut m: BiMap<u32, u32> = BiMap::new();
        // Reference: a forward map kept bijective by erasing conflicts.
        let mut fwd: BTreeMap<u32, u32> = BTreeMap::new();
        for (l, r) in ops {
            fwd.retain(|_, v| *v != r);
            fwd.insert(l, r);
            m.insert(l, r);
        }
        prop_assert_eq!(m.len(), fwd.len());
        for (l, r) in &fwd {
            prop_assert_eq!(m.get_by_left(l), Some(r));
            prop_assert_eq!(m.get_by_right(r), Some(l));
        }
        // Bijectivity: right values are unique.
        let rights: BTreeSet<u32> = fwd.values().copied().collect();
        prop_assert_eq!(rights.len(), fwd.len());
    }

    #[test]
    fn bimap_remove_is_consistent_in_both_directions(
        pairs in prop::collection::vec((0u32..128, 1000u32..1128), 1..64),
        remove_left in any::<bool>(),
    ) {
        let mut m: BiMap<u32, u32> = BiMap::new();
        for &(l, r) in &pairs {
            m.insert(l, r);
        }
        let (l, _) = pairs[pairs.len() / 2];
        if let Some(&r) = m.get_by_left(&l) {
            if remove_left {
                prop_assert_eq!(m.remove_by_left(&l), Some(r));
            } else {
                prop_assert_eq!(m.remove_by_right(&r), Some(l));
            }
            prop_assert!(!m.contains_left(&l));
            prop_assert!(!m.contains_right(&r));
        }
    }

    // ------------------------------------------------------------------ Runs

    #[test]
    fn runs_cover_exactly_the_input_pages(
        mut pages in prop::collection::btree_set(0u64..10_000, 0..512),
    ) {
        let sorted: Vec<u64> = pages.iter().copied().collect();
        let runs = group_into_runs(sorted.iter().copied());
        // Every page is covered exactly once, in order, and runs are maximal.
        let mut reconstructed = Vec::new();
        for r in &runs {
            prop_assert!(r.len >= 1);
            reconstructed.extend(r.pages());
        }
        prop_assert_eq!(&reconstructed, &sorted);
        for w in runs.windows(2) {
            // Maximality: consecutive runs are separated by a gap.
            prop_assert!(w[1].start > w[0].end_inclusive() + 1);
        }
        // Builder and helper agree.
        let mut rb = RunBuilder::new();
        let mut built = Vec::new();
        for &p in &sorted {
            if let Some(r) = rb.push(p) {
                built.push(r);
            }
        }
        built.extend(rb.finish());
        prop_assert_eq!(built, runs);
        pages.clear();
    }

    // ------------------------------------------------------------ ValueRange

    #[test]
    fn range_algebra_laws(
        a_lo in 0u64..1000, a_hi in 0u64..1000,
        b_lo in 0u64..1000, b_hi in 0u64..1000,
        probe in 0u64..1000,
    ) {
        let a = ValueRange::new(a_lo.min(a_hi), a_lo.max(a_hi));
        let b = ValueRange::new(b_lo.min(b_hi), b_lo.max(b_hi));
        // covers ⇔ subset duality.
        prop_assert_eq!(a.covers(&b), b.is_subset_of(&a));
        // Intersection is symmetric and contained in both.
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(a.covers(&i) && b.covers(&i));
            prop_assert!(a.overlaps(&b));
        } else {
            prop_assert!(!a.overlaps(&b));
        }
        // Hull covers both inputs.
        let h = a.hull(&b);
        prop_assert!(h.covers(&a) && h.covers(&b));
        // Membership is consistent with intersection.
        if a.contains(probe) && b.contains(probe) {
            prop_assert!(ab.expect("non-empty").contains(probe));
        }
        // The full range covers everything.
        prop_assert!(ValueRange::full().covers(&h));
    }

    #[test]
    fn widen_between_always_contains_the_query_range(
        lo in 0u64..1000, hi in 0u64..1000,
        below in proptest::option::of(0u64..1000),
        above in proptest::option::of(0u64..1000),
    ) {
        let q = ValueRange::new(lo.min(hi), lo.max(hi));
        // Only meaningful when the observations are on the correct sides.
        let below = below.filter(|b| *b < q.low());
        let above = above.filter(|a| *a > q.high());
        let widened = q.widen_between(below, above);
        prop_assert!(widened.covers(&q));
        if let Some(b) = below {
            prop_assert!(widened.low() > b);
        }
        if let Some(a) = above {
            prop_assert!(widened.high() < a);
        }
    }
}
