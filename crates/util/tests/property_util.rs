//! Property-based tests for the utility data structures.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these run randomized cases from the workspace's seeded RNG shim: each
//! test draws a few hundred random inputs, checks the invariant against a
//! std-collection reference model, and is fully deterministic for the
//! hard-coded seed.

use asv_util::{group_into_runs, BiMap, BitVec, RunBuilder, ValueRange};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

const CASES: usize = 200;

// ---------------------------------------------------------------- BitVec

#[test]
fn bitvec_matches_a_reference_set() {
    let mut rng = StdRng::seed_from_u64(0x0B17);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..2048);
        let num_ops = rng.gen_range(0usize..256);
        let mut bv = BitVec::new(len);
        let mut reference: BTreeSet<usize> = BTreeSet::new();
        for _ in 0..num_ops {
            let idx = rng.gen_range(0usize..2048) % len;
            if rng.gen_bool(0.5) {
                bv.set(idx);
                reference.insert(idx);
            } else {
                bv.clear(idx);
                reference.remove(&idx);
            }
        }
        assert_eq!(bv.count_ones(), reference.len());
        assert_eq!(bv.count_zeros(), len - reference.len());
        assert_eq!(
            bv.iter_ones().collect::<Vec<_>>(),
            reference.iter().copied().collect::<Vec<_>>()
        );
        assert_eq!(bv.any(), !reference.is_empty());
        for i in 0..len {
            assert_eq!(bv.get(i), reference.contains(&i));
        }
    }
}

#[test]
fn bitvec_test_and_set_is_idempotent_on_the_second_call() {
    let mut rng = StdRng::seed_from_u64(0x0B18);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..512);
        let idx = rng.gen_range(0usize..512) % len;
        let mut bv = BitVec::new(len);
        assert!(!bv.test_and_set(idx));
        assert!(bv.test_and_set(idx));
        assert_eq!(bv.count_ones(), 1);
    }
}

#[test]
fn bitvec_union_and_intersection_match_set_semantics() {
    let mut rng = StdRng::seed_from_u64(0x0B19);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..512);
        let draw_set = |rng: &mut StdRng| -> BTreeSet<usize> {
            let n = rng.gen_range(0usize..64);
            (0..n).map(|_| rng.gen_range(0usize..512) % len).collect()
        };
        let sa = draw_set(&mut rng);
        let sb = draw_set(&mut rng);
        let mut a = BitVec::new(len);
        let mut b = BitVec::new(len);
        for &i in &sa {
            a.set(i);
        }
        for &i in &sb {
            b.set(i);
        }
        let mut union = a.clone();
        union.union_with(&b);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(
            union.iter_ones().collect::<BTreeSet<_>>(),
            sa.union(&sb).copied().collect::<BTreeSet<_>>()
        );
        assert_eq!(
            inter.iter_ones().collect::<BTreeSet<_>>(),
            sa.intersection(&sb).copied().collect::<BTreeSet<_>>()
        );
    }
}

// ----------------------------------------------------------------- BiMap

#[test]
fn bimap_stays_a_bijection() {
    let mut rng = StdRng::seed_from_u64(0xB1A9);
    for _ in 0..CASES {
        let num_ops = rng.gen_range(0usize..256);
        let mut m: BiMap<u32, u32> = BiMap::new();
        // Reference: a forward map kept bijective by erasing conflicts.
        let mut fwd: BTreeMap<u32, u32> = BTreeMap::new();
        for _ in 0..num_ops {
            let l = rng.gen_range(0u32..64);
            let r = rng.gen_range(0u32..64);
            fwd.retain(|_, v| *v != r);
            fwd.insert(l, r);
            m.insert(l, r);
        }
        assert_eq!(m.len(), fwd.len());
        for (l, r) in &fwd {
            assert_eq!(m.get_by_left(l), Some(r));
            assert_eq!(m.get_by_right(r), Some(l));
        }
        // Bijectivity: right values are unique.
        let rights: BTreeSet<u32> = fwd.values().copied().collect();
        assert_eq!(rights.len(), fwd.len());
    }
}

#[test]
fn bimap_remove_is_consistent_in_both_directions() {
    let mut rng = StdRng::seed_from_u64(0xB1AA);
    for _ in 0..CASES {
        let num_pairs = rng.gen_range(1usize..64);
        let pairs: Vec<(u32, u32)> = (0..num_pairs)
            .map(|_| (rng.gen_range(0u32..128), rng.gen_range(1000u32..1128)))
            .collect();
        let remove_left = rng.gen_bool(0.5);
        let mut m: BiMap<u32, u32> = BiMap::new();
        for &(l, r) in &pairs {
            m.insert(l, r);
        }
        let (l, _) = pairs[pairs.len() / 2];
        if let Some(&r) = m.get_by_left(&l) {
            if remove_left {
                assert_eq!(m.remove_by_left(&l), Some(r));
            } else {
                assert_eq!(m.remove_by_right(&r), Some(l));
            }
            assert!(!m.contains_left(&l));
            assert!(!m.contains_right(&r));
        }
    }
}

// ------------------------------------------------------------------ Runs

#[test]
fn runs_cover_exactly_the_input_pages() {
    let mut rng = StdRng::seed_from_u64(0x9045);
    for _ in 0..CASES {
        let num_pages = rng.gen_range(0usize..512);
        let pages: BTreeSet<u64> = (0..num_pages)
            .map(|_| rng.gen_range(0u64..10_000))
            .collect();
        let sorted: Vec<u64> = pages.iter().copied().collect();
        let runs = group_into_runs(sorted.iter().copied());
        // Every page is covered exactly once, in order, and runs are maximal.
        let mut reconstructed = Vec::new();
        for r in &runs {
            assert!(r.len >= 1);
            reconstructed.extend(r.pages());
        }
        assert_eq!(reconstructed, sorted);
        for w in runs.windows(2) {
            // Maximality: consecutive runs are separated by a gap.
            assert!(w[1].start > w[0].end_inclusive() + 1);
        }
        // Builder and helper agree.
        let mut rb = RunBuilder::new();
        let mut built = Vec::new();
        for &p in &sorted {
            if let Some(r) = rb.push(p) {
                built.push(r);
            }
        }
        built.extend(rb.finish());
        assert_eq!(built, runs);
    }
}

// ------------------------------------------------------------ ValueRange

#[test]
fn range_algebra_laws() {
    let mut rng = StdRng::seed_from_u64(0x4A1E);
    for _ in 0..CASES {
        let (a_lo, a_hi) = (rng.gen_range(0u64..1000), rng.gen_range(0u64..1000));
        let (b_lo, b_hi) = (rng.gen_range(0u64..1000), rng.gen_range(0u64..1000));
        let probe = rng.gen_range(0u64..1000);
        let a = ValueRange::new(a_lo.min(a_hi), a_lo.max(a_hi));
        let b = ValueRange::new(b_lo.min(b_hi), b_lo.max(b_hi));
        // covers ⇔ subset duality.
        assert_eq!(a.covers(&b), b.is_subset_of(&a));
        // Intersection is symmetric and contained in both.
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        assert_eq!(ab, ba);
        if let Some(i) = ab {
            assert!(a.covers(&i) && b.covers(&i));
            assert!(a.overlaps(&b));
        } else {
            assert!(!a.overlaps(&b));
        }
        // Hull covers both inputs.
        let h = a.hull(&b);
        assert!(h.covers(&a) && h.covers(&b));
        // Membership is consistent with intersection.
        if a.contains(probe) && b.contains(probe) {
            assert!(ab.expect("non-empty").contains(probe));
        }
        // The full range covers everything.
        assert!(ValueRange::full().covers(&h));
    }
}

#[test]
fn widen_between_always_contains_the_query_range() {
    let mut rng = StdRng::seed_from_u64(0x71DE);
    for _ in 0..CASES {
        let (lo, hi) = (rng.gen_range(0u64..1000), rng.gen_range(0u64..1000));
        let below = rng.gen_bool(0.5).then(|| rng.gen_range(0u64..1000));
        let above = rng.gen_bool(0.5).then(|| rng.gen_range(0u64..1000));
        let q = ValueRange::new(lo.min(hi), lo.max(hi));
        // Only meaningful when the observations are on the correct sides.
        let below = below.filter(|b| *b < q.low());
        let above = above.filter(|a| *a > q.high());
        let widened = q.widen_between(below, above);
        assert!(widened.covers(&q));
        if let Some(b) = below {
            assert!(widened.low() > b);
        }
        if let Some(a) = above {
            assert!(widened.high() < a);
        }
    }
}
