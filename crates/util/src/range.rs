//! Closed value ranges `[l, u]` over unsigned 64-bit values.
//!
//! Views in the adaptive storage layer are described by the value range they
//! cover: the full view covers `[-∞, ∞]`, partial views cover `[l, u]`
//! (paper §1.1 and §2). Since the storage layer stores 8-byte unsigned
//! integers, the full range is simply `[0, u64::MAX]`.

/// A closed (inclusive on both ends) range of `u64` values.
///
/// The range is never empty: construction enforces `low <= high`.
/// An "empty" covered range (a candidate view that matched nothing) is
/// represented separately by the caller via `Option<ValueRange>`.
///
/// # Examples
///
/// ```
/// use asv_util::ValueRange;
///
/// let full = ValueRange::full();
/// let q = ValueRange::new(100, 200);
/// assert!(full.covers(&q));
/// assert!(q.contains(150));
/// assert!(!q.contains(201));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ValueRange {
    low: u64,
    high: u64,
}

impl ValueRange {
    /// Creates the range `[low, high]`.
    ///
    /// # Panics
    /// Panics if `low > high`.
    #[inline]
    pub fn new(low: u64, high: u64) -> Self {
        assert!(low <= high, "invalid range [{low}, {high}]");
        Self { low, high }
    }

    /// Creates the range `[low, high]`, returning `None` if `low > high`.
    #[inline]
    pub fn try_new(low: u64, high: u64) -> Option<Self> {
        (low <= high).then_some(Self { low, high })
    }

    /// The full range `[-∞, ∞]`, i.e. `[0, u64::MAX]` for 8-byte unsigned
    /// values. This is the range covered by the full view of every column.
    #[inline]
    pub fn full() -> Self {
        Self {
            low: 0,
            high: u64::MAX,
        }
    }

    /// A range covering exactly one value.
    #[inline]
    pub fn point(v: u64) -> Self {
        Self { low: v, high: v }
    }

    /// Lower bound (inclusive).
    #[inline]
    pub fn low(&self) -> u64 {
        self.low
    }

    /// Upper bound (inclusive).
    #[inline]
    pub fn high(&self) -> u64 {
        self.high
    }

    /// Returns `true` if this is the full range `[0, u64::MAX]`.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.low == 0 && self.high == u64::MAX
    }

    /// Returns `true` if `v` lies within `[low, high]`.
    #[inline]
    pub fn contains(&self, v: u64) -> bool {
        self.low <= v && v <= self.high
    }

    /// Returns `true` if this range fully covers `other`
    /// (`self.low <= other.low && other.high <= self.high`).
    ///
    /// A view can answer a query iff the view's covered range *covers* the
    /// query's selected range (paper §2.1).
    #[inline]
    pub fn covers(&self, other: &ValueRange) -> bool {
        self.low <= other.low && other.high <= self.high
    }

    /// Returns `true` if this range is fully covered by `other`.
    #[inline]
    pub fn is_subset_of(&self, other: &ValueRange) -> bool {
        other.covers(self)
    }

    /// Returns `true` if the two ranges share at least one value.
    #[inline]
    pub fn overlaps(&self, other: &ValueRange) -> bool {
        self.low <= other.high && other.low <= self.high
    }

    /// Intersection of the two ranges, if non-empty.
    #[inline]
    pub fn intersect(&self, other: &ValueRange) -> Option<ValueRange> {
        let low = self.low.max(other.low);
        let high = self.high.min(other.high);
        ValueRange::try_new(low, high)
    }

    /// Smallest range covering both inputs (their convex hull).
    #[inline]
    pub fn hull(&self, other: &ValueRange) -> ValueRange {
        ValueRange {
            low: self.low.min(other.low),
            high: self.high.max(other.high),
        }
    }

    /// Number of distinct values covered, saturating at `u64::MAX`.
    #[inline]
    pub fn width(&self) -> u64 {
        (self.high - self.low).saturating_add(1)
    }

    /// Widens the range so that it additionally covers `v`.
    #[inline]
    pub fn extend_to(&mut self, v: u64) {
        if v < self.low {
            self.low = v;
        }
        if v > self.high {
            self.high = v;
        }
    }

    /// Computes the widened covered range of a candidate partial view.
    ///
    /// During adaptive view creation the system records the largest
    /// non-qualifying value `l' < l` and the smallest non-qualifying value
    /// `u' > u` observed on non-qualifying pages; every value strictly
    /// between `l'` and `u'` must live on qualifying pages, so the candidate
    /// view's covered range may be extended from `[l, u]` to
    /// `[l' + 1, u' - 1]` (paper §2.2, Listing 1 lines 13-20).
    ///
    /// `below` is `l'` (if any non-qualifying value below the query range was
    /// observed) and `above` is `u'`.
    #[inline]
    pub fn widen_between(&self, below: Option<u64>, above: Option<u64>) -> ValueRange {
        let low = match below {
            Some(l_prime) => l_prime.saturating_add(1).min(self.low),
            None => 0,
        };
        let high = match above {
            Some(u_prime) => u_prime.saturating_sub(1).max(self.high),
            None => u64::MAX,
        };
        ValueRange::new(low, high)
    }
}

impl std::fmt::Display for ValueRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_full() {
            write!(f, "[-inf, +inf]")
        } else {
            write!(f, "[{}, {}]", self.low, self.high)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let r = ValueRange::new(5, 9);
        assert_eq!(r.low(), 5);
        assert_eq!(r.high(), 9);
        assert_eq!(r.width(), 5);
        assert!(!r.is_full());
        assert_eq!(ValueRange::point(7), ValueRange::new(7, 7));
        assert!(ValueRange::try_new(9, 5).is_none());
        assert!(ValueRange::try_new(5, 5).is_some());
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn inverted_range_panics() {
        ValueRange::new(10, 0);
    }

    #[test]
    fn full_range_properties() {
        let full = ValueRange::full();
        assert!(full.is_full());
        assert!(full.contains(0));
        assert!(full.contains(u64::MAX));
        assert_eq!(full.width(), u64::MAX);
        assert!(full.covers(&ValueRange::new(3, 4)));
    }

    #[test]
    fn contains_is_inclusive() {
        let r = ValueRange::new(10, 20);
        assert!(r.contains(10));
        assert!(r.contains(20));
        assert!(!r.contains(9));
        assert!(!r.contains(21));
    }

    #[test]
    fn covers_and_subset() {
        let big = ValueRange::new(0, 100);
        let small = ValueRange::new(10, 20);
        assert!(big.covers(&small));
        assert!(small.is_subset_of(&big));
        assert!(!small.covers(&big));
        assert!(big.covers(&big));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = ValueRange::new(0, 10);
        let b = ValueRange::new(10, 20);
        let c = ValueRange::new(11, 20);
        assert!(a.overlaps(&b));
        assert_eq!(a.intersect(&b), Some(ValueRange::point(10)));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersect(&c), None);
        assert_eq!(a.hull(&c), ValueRange::new(0, 20));
    }

    #[test]
    fn extend_to_grows_range() {
        let mut r = ValueRange::new(10, 20);
        r.extend_to(15);
        assert_eq!(r, ValueRange::new(10, 20));
        r.extend_to(5);
        assert_eq!(r, ValueRange::new(5, 20));
        r.extend_to(30);
        assert_eq!(r, ValueRange::new(5, 30));
    }

    #[test]
    fn widen_between_matches_listing1_semantics() {
        let q = ValueRange::new(100, 200);
        // Non-qualifying values observed at 80 (below) and 250 (above):
        // everything strictly between must lie on qualifying pages.
        assert_eq!(
            q.widen_between(Some(80), Some(250)),
            ValueRange::new(81, 249)
        );
        // No non-qualifying value below: the view covers everything from 0.
        assert_eq!(q.widen_between(None, Some(250)), ValueRange::new(0, 249));
        // No non-qualifying value above: the view covers everything to MAX.
        assert_eq!(
            q.widen_between(Some(80), None),
            ValueRange::new(81, u64::MAX)
        );
        // Neither: the candidate view behaves like a full view.
        assert!(q.widen_between(None, None).is_full());
    }

    #[test]
    fn widen_between_never_shrinks_below_query_range() {
        // Degenerate observations adjacent to the query bounds must not
        // produce a range smaller than the query itself.
        let q = ValueRange::new(100, 200);
        assert_eq!(
            q.widen_between(Some(99), Some(201)),
            ValueRange::new(100, 200)
        );
        // Saturation at the domain bounds.
        let edge = ValueRange::new(0, u64::MAX);
        assert_eq!(
            edge.widen_between(Some(u64::MAX), Some(0)),
            ValueRange::full()
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(ValueRange::new(1, 2).to_string(), "[1, 2]");
        assert_eq!(ValueRange::full().to_string(), "[-inf, +inf]");
    }
}
