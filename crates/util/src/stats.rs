//! Minimal measurement helpers for the experiment harness.
//!
//! The evaluation of the paper reports per-query runtimes, accumulated
//! response times (Table 1) and averages over repeated runs. [`Timer`] and
//! [`Summary`] provide exactly that without pulling in a benchmarking
//! framework for the plain `experiments` binary (Criterion is still used for
//! the `cargo bench` targets).

use std::time::{Duration, Instant};

/// A simple wall-clock timer.
///
/// # Examples
///
/// ```
/// use asv_util::Timer;
/// let t = Timer::start();
/// let elapsed = t.elapsed();
/// assert!(elapsed.as_nanos() < u128::MAX);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts a new timer.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since the timer was started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in milliseconds as a float (the unit the paper plots).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Restarts the timer and returns the elapsed time up to this point.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

/// Running summary statistics over a sequence of samples.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: f64) {
        self.samples.push(sample);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Sum of all samples (0.0 when empty).
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Minimum sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min_or_zero()
    }

    /// Maximum sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max_or_zero()
    }

    /// p-th percentile (nearest-rank, `p` in `[0, 100]`; 0.0 when empty).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// All recorded samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

trait OrZero {
    fn min_or_zero(self) -> f64;
    fn max_or_zero(self) -> f64;
}

impl OrZero for f64 {
    fn min_or_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
    fn max_or_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// Runs `f` `repetitions` times and returns the average wall-clock duration,
/// mirroring the paper's "average time of three runs" methodology (§3).
pub fn average_runtime<F: FnMut()>(repetitions: usize, mut f: F) -> Duration {
    assert!(repetitions > 0, "need at least one repetition");
    let mut total = Duration::ZERO;
    for _ in 0..repetitions {
        let t = Timer::start();
        f();
        total += t.elapsed();
    }
    total / repetitions as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_nonzero_time() {
        let mut t = Timer::start();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(t.elapsed() >= Duration::ZERO);
        assert!(t.elapsed_ms() >= 0.0);
        let lap = t.lap();
        assert!(lap >= Duration::ZERO);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.sum(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.add(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 10.0);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 4.0);
        assert_eq!(s.samples().len(), 4);
    }

    #[test]
    fn average_runtime_runs_the_closure() {
        let mut calls = 0;
        let avg = average_runtime(3, || calls += 1);
        assert_eq!(calls, 3);
        assert!(avg >= Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn average_runtime_zero_reps_panics() {
        average_runtime(0, || {});
    }
}
