//! A fixed-size bitvector over `u64` words.
//!
//! The multi-view query mode of the adaptive storage layer must avoid
//! scanning a shared physical page twice (paper §2.1). The paper realizes
//! this with "a fixed-size bitvector"; this module is that bitvector.
//! It is also reused by the explicit bitmap baseline (paper §3.1).

use crate::pool::{split_ranges, ThreadPool};

/// A fixed-size bitvector with one bit per page.
///
/// All operations are `O(1)` except the ones documented otherwise.
///
/// # Examples
///
/// ```
/// use asv_util::BitVec;
///
/// let mut processed = BitVec::new(1024);
/// assert!(!processed.get(17));
/// processed.set(17);
/// assert!(processed.get(17));
/// assert_eq!(processed.count_ones(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

impl BitVec {
    /// Creates a bitvector with `len` bits, all cleared.
    pub fn new(len: usize) -> Self {
        let words = vec![0u64; len.div_ceil(WORD_BITS)];
        Self { words, len }
    }

    /// Creates a bitvector with `len` bits, all set.
    pub fn new_all_set(len: usize) -> Self {
        let mut bv = Self::new(len);
        bv.set_all();
        bv
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, idx: usize) {
        assert!(
            idx < self.len,
            "bit index {idx} out of bounds (len {})",
            self.len
        );
    }

    /// Reads the bit at `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        self.check(idx);
        (self.words[idx / WORD_BITS] >> (idx % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at `idx` to one.
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn set(&mut self, idx: usize) {
        self.check(idx);
        self.words[idx / WORD_BITS] |= 1 << (idx % WORD_BITS);
    }

    /// Clears the bit at `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn clear(&mut self, idx: usize) {
        self.check(idx);
        self.words[idx / WORD_BITS] &= !(1 << (idx % WORD_BITS));
    }

    /// Sets the bit at `idx` and returns its previous value.
    ///
    /// This is the operation the multi-view scan loop performs for every
    /// visited page: "have I processed this page already, and if not, mark
    /// it as processed now".
    #[inline]
    pub fn test_and_set(&mut self, idx: usize) -> bool {
        let prev = self.get(idx);
        self.set(idx);
        prev
    }

    /// Sets all bits to one.
    pub fn set_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.mask_tail();
    }

    /// Clears all bits.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Zeroes the unused bits of the last word so popcounts stay correct.
    fn mask_tail(&mut self) {
        let used = self.len % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }

    /// Number of set bits. `O(len / 64)`.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of cleared bits. `O(len / 64)`.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Iterator over the indices of all set bits, in increasing order.
    ///
    /// The bitmap baseline's lookup path (paper §3.1) is exactly "scan the
    /// bitvector and jump into the column for each qualifying page", which
    /// is this iterator.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bv: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Returns `true` if any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// In-place union with another bitvector of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvector length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// In-place intersection with another bitvector of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersect_with(&mut self, other: &BitVec) {
        self.intersect_with_count(other);
    }

    /// In-place intersection that also returns the resulting popcount.
    ///
    /// Conjunctive execution needs the surviving cardinality after every
    /// intersection; fusing the popcount into the AND loop reads each word
    /// once instead of making a second `count_ones` pass over the result.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersect_with_count(&mut self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "bitvector length mismatch");
        let mut ones = 0usize;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            let w = *a & *b;
            *a = w;
            ones += w.count_ones() as usize;
        }
        ones
    }

    /// Fork-join variant of [`Self::intersect_with_count`]: the word array
    /// is split into contiguous shards, one per pool worker, each shard is
    /// ANDed (with a fused popcount) on its own thread, and the per-shard
    /// popcounts are summed.
    ///
    /// A word-wise AND is position-independent, so the resulting bits and
    /// the returned cardinality are identical to the sequential path for
    /// every worker count. Short vectors and sequential pools run inline.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersect_with_count_pool(&mut self, other: &BitVec, pool: &ThreadPool) -> usize {
        assert_eq!(self.len, other.len, "bitvector length mismatch");
        let workers = pool.workers();
        // Below ~64 KiB of bitmap the AND loop is memory-bandwidth trivial;
        // fan-out overhead would dominate.
        const MIN_WORDS_PER_SHARD: usize = 1 << 10;
        if workers <= 1 || self.words.len() < 2 * MIN_WORDS_PER_SHARD {
            return self.intersect_with_count(other);
        }
        let shards = split_ranges(self.words.len(), workers);
        let mut tasks = Vec::with_capacity(shards.len());
        let mut rest = self.words.as_mut_slice();
        let mut offset = 0usize;
        for shard in shards {
            let (mine, tail) = rest.split_at_mut(shard.len());
            rest = tail;
            let theirs = &other.words[offset..offset + shard.len()];
            offset += shard.len();
            tasks.push(move || {
                let mut ones = 0usize;
                for (a, b) in mine.iter_mut().zip(theirs.iter()) {
                    let w = *a & *b;
                    *a = w;
                    ones += w.count_ones() as usize;
                }
                ones
            });
        }
        pool.scoped_map(tasks).into_iter().sum()
    }
}

/// Iterator over set bit indices of a [`BitVec`].
pub struct OnesIter<'a> {
    bv: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * WORD_BITS + bit;
                if idx < self.bv.len {
                    return Some(idx);
                } else {
                    return None;
                }
            }
            self.word_idx += 1;
            if self.word_idx >= self.bv.words.len() {
                return None;
            }
            self.current = self.bv.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let bv = BitVec::new(130);
        assert_eq!(bv.len(), 130);
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.count_zeros(), 130);
        assert!(!bv.any());
        for i in 0..130 {
            assert!(!bv.get(i));
        }
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bv = BitVec::new(200);
        bv.set(0);
        bv.set(63);
        bv.set(64);
        bv.set(199);
        assert!(bv.get(0) && bv.get(63) && bv.get(64) && bv.get(199));
        assert_eq!(bv.count_ones(), 4);
        bv.clear(64);
        assert!(!bv.get(64));
        assert_eq!(bv.count_ones(), 3);
    }

    #[test]
    fn test_and_set_reports_previous_value() {
        let mut bv = BitVec::new(10);
        assert!(!bv.test_and_set(3));
        assert!(bv.test_and_set(3));
        assert!(bv.get(3));
    }

    #[test]
    fn set_all_respects_tail_bits() {
        let mut bv = BitVec::new(70);
        bv.set_all();
        assert_eq!(bv.count_ones(), 70);
        bv.clear_all();
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn all_set_constructor() {
        let bv = BitVec::new_all_set(5);
        assert_eq!(bv.count_ones(), 5);
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let mut bv = BitVec::new(300);
        let idxs = [1usize, 2, 63, 64, 65, 128, 255, 299];
        for &i in &idxs {
            bv.set(i);
        }
        let collected: Vec<usize> = bv.iter_ones().collect();
        assert_eq!(collected, idxs);
    }

    #[test]
    fn iter_ones_empty() {
        let bv = BitVec::new(0);
        assert_eq!(bv.iter_ones().count(), 0);
        assert!(bv.is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        a.set(1);
        a.set(50);
        b.set(50);
        b.set(99);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 50, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![50]);
    }

    #[test]
    fn intersect_with_count_matches_separate_popcount() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut xorshift = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [0usize, 1, 63, 64, 65, 200, 512] {
            let mut a = BitVec::new(len);
            let mut b = BitVec::new(len);
            for i in 0..len {
                if xorshift().is_multiple_of(2) {
                    a.set(i);
                }
                if xorshift().is_multiple_of(3) {
                    b.set(i);
                }
            }
            let mut reference = a.clone();
            reference.intersect_with(&b);
            let expected = reference.count_ones();
            let fused = a.intersect_with_count(&b);
            assert_eq!(fused, expected, "len {len}");
            assert_eq!(a, reference, "len {len}");
        }
    }

    #[test]
    fn pooled_intersection_matches_sequential() {
        use crate::pool::Parallelism;
        let mut state = 0x853c_49e6_748f_ea9bu64;
        let mut xorshift = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Lengths straddling the inline-fallback threshold and beyond it.
        for len in [0usize, 65, 4_096, 64 * 2_048, 64 * 4_099] {
            let mut a = BitVec::new(len);
            let mut b = BitVec::new(len);
            for i in 0..len {
                if xorshift().is_multiple_of(2) {
                    a.set(i);
                }
                if xorshift().is_multiple_of(3) {
                    b.set(i);
                }
            }
            let mut reference = a.clone();
            let expected = reference.intersect_with_count(&b);
            for threads in [1usize, 2, 3, 4] {
                let pool = ThreadPool::new(Parallelism::from_threads(threads));
                let mut fanned = a.clone();
                let got = fanned.intersect_with_count_pool(&b, &pool);
                assert_eq!(got, expected, "len {len} threads {threads}");
                assert_eq!(fanned, reference, "len {len} threads {threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let bv = BitVec::new(8);
        bv.get(8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_length_mismatch_panics() {
        let mut a = BitVec::new(8);
        let b = BitVec::new(9);
        a.union_with(&b);
    }
}
