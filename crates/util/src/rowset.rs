//! A bitset over row ids — the intermediate representation of conjunctive
//! query execution.
//!
//! Multi-column conjunctive queries intersect per-predicate row sets. With
//! sorted `Vec<u64>` representations every intersection is `O(|a| + |b|)`
//! comparisons plus an allocation; a fixed-domain bitset intersects
//! word-wise — `O(rows / 64)` independent of how the surviving rows are
//! distributed, and without sorting the (view-ordered, unsorted) row lists
//! adaptive scans produce. [`RowSet`] is that representation: a [`BitVec`]
//! over the table's row space plus a maintained cardinality.

use crate::bitvec::BitVec;
use crate::pool::ThreadPool;

/// A set of row ids over a fixed row domain `0..num_rows`, backed by a
/// bitvector.
///
/// # Example
///
/// Intersecting two predicates' row sets word-wise — the core loop of
/// conjunctive execution:
///
/// ```
/// use asv_util::RowSet;
///
/// let price_matches = RowSet::from_rows(&[2, 5, 9, 11], 16);
/// let mut survivors = RowSet::from_rows(&[0, 5, 9, 15], 16);
/// survivors.intersect_with(&price_matches);
///
/// assert_eq!(survivors.to_sorted_vec(), vec![5, 9]);
/// assert_eq!(survivors.len(), 2);
/// assert!(survivors.contains(5) && !survivors.contains(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowSet {
    bits: BitVec,
    len: usize,
}

impl RowSet {
    /// Creates an empty set over the domain `0..num_rows`.
    pub fn empty(num_rows: usize) -> Self {
        Self {
            bits: BitVec::new(num_rows),
            len: 0,
        }
    }

    /// Builds a set from a slice of row ids (duplicates are tolerated, any
    /// order). All ids must be `< num_rows`.
    ///
    /// # Panics
    /// Panics if a row id is out of the domain.
    pub fn from_rows(rows: &[u64], num_rows: usize) -> Self {
        let mut set = Self::empty(num_rows);
        for &row in rows {
            set.insert(row as usize);
        }
        set
    }

    /// The size of the row domain (not the cardinality).
    pub fn domain(&self) -> usize {
        self.bits.len()
    }

    /// Number of rows in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `row` is in the set.
    ///
    /// # Panics
    /// Panics if `row` is outside the domain.
    pub fn contains(&self, row: usize) -> bool {
        self.bits.get(row)
    }

    /// Inserts `row`, returning `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `row` is outside the domain.
    pub fn insert(&mut self, row: usize) -> bool {
        let was_set = self.bits.test_and_set(row);
        if !was_set {
            self.len += 1;
        }
        !was_set
    }

    /// In-place intersection with another set of the same domain — the O(1)
    /// per-word core of conjunctive execution.
    ///
    /// # Panics
    /// Panics if the domains differ.
    pub fn intersect_with(&mut self, other: &RowSet) {
        self.len = self.bits.intersect_with_count(&other.bits);
    }

    /// Like [`Self::intersect_with`], but fanning the word-wise AND out
    /// across `pool` ([`BitVec::intersect_with_count_pool`]). Bit-identical
    /// to the sequential path for every worker count.
    ///
    /// # Panics
    /// Panics if the domains differ.
    pub fn intersect_with_pool(&mut self, other: &RowSet, pool: &ThreadPool) {
        self.len = self.bits.intersect_with_count_pool(&other.bits, pool);
    }

    /// Iterates the rows in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.bits.iter_ones().map(|i| i as u64)
    }

    /// Collects the rows into an ascending `Vec<u64>`.
    pub fn to_sorted_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        out.extend(self.iter());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set() {
        let s = RowSet::empty(100);
        assert_eq!(s.domain(), 100);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert!(!s.contains(42));
        assert!(s.to_sorted_vec().is_empty());
    }

    #[test]
    fn from_rows_deduplicates_and_sorts() {
        let s = RowSet::from_rows(&[7, 3, 99, 3, 0], 100);
        assert_eq!(s.len(), 4);
        assert_eq!(s.to_sorted_vec(), vec![0, 3, 7, 99]);
        assert!(s.contains(7));
        assert!(!s.contains(8));
    }

    #[test]
    fn insert_tracks_cardinality() {
        let mut s = RowSet::empty(10);
        assert!(s.insert(4));
        assert!(!s.insert(4));
        assert!(s.insert(9));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn intersection_matches_reference() {
        let a = RowSet::from_rows(&[1, 3, 5, 64, 65, 99], 128);
        let b = RowSet::from_rows(&[3, 5, 64, 100], 128);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_sorted_vec(), vec![3, 5, 64]);
        assert_eq!(i.len(), 3);
        // Intersecting with itself is a no-op.
        let mut same = a.clone();
        same.intersect_with(&a);
        assert_eq!(same, a);
    }

    #[test]
    fn intersection_with_empty_clears() {
        let mut a = RowSet::from_rows(&[0, 1, 2], 4);
        a.intersect_with(&RowSet::empty(4));
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn fused_intersection_cardinality_matches_recount() {
        let a = RowSet::from_rows(&[0, 2, 63, 64, 127, 200, 511], 512);
        let b = RowSet::from_rows(&[2, 64, 127, 300, 511], 512);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.len(), i.to_sorted_vec().len());
        assert_eq!(i.to_sorted_vec(), vec![2, 64, 127, 511]);
    }

    #[test]
    fn pooled_intersection_matches_sequential() {
        use crate::pool::Parallelism;
        let domain = 64 * 5_000;
        let a: Vec<u64> = (0..domain as u64).step_by(3).collect();
        let b: Vec<u64> = (0..domain as u64).step_by(7).collect();
        let a = RowSet::from_rows(&a, domain);
        let b = RowSet::from_rows(&b, domain);
        let mut reference = a.clone();
        reference.intersect_with(&b);
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(Parallelism::from_threads(threads));
            let mut fanned = a.clone();
            fanned.intersect_with_pool(&b, &pool);
            assert_eq!(fanned, reference, "threads {threads}");
            assert_eq!(fanned.len(), reference.len(), "threads {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_domain_row_panics() {
        RowSet::from_rows(&[8], 8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn domain_mismatch_panics() {
        let mut a = RowSet::empty(8);
        a.intersect_with(&RowSet::empty(9));
    }
}
