//! A hand-rolled, dependency-free scoped fork-join thread pool.
//!
//! The parallel execution layer shards page-range scans across worker
//! threads (ROADMAP "Sharding / parallel scans"). The build environment has
//! no crates.io access, so instead of rayon this module provides the small
//! fork-join primitive the scan path actually needs, built entirely on
//! [`std::thread::scope`] and [`std::sync::mpsc`]:
//!
//! * [`Parallelism`] — the user-facing knob (`Sequential | Threads(n) |
//!   Auto`), defaulting to `Sequential` so every existing experiment stays
//!   bit-identical unless parallelism is requested explicitly;
//! * [`ThreadPool`] — a fork-join executor whose [`ThreadPool::scoped_map`]
//!   runs a batch of borrowing closures on scoped worker threads and
//!   returns their results in task order;
//! * [`split_ranges`] — balanced contiguous partitioning of an index space
//!   into per-worker shards.
//!
//! Scoped threads may borrow from the caller's stack, which is exactly what
//! the scan path requires: workers scan shards of a view buffer that the
//! querying thread owns, and the join at the end of the scope is the
//! "all shards merged" signal.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::mpsc::channel;
use std::sync::Mutex;

/// Degree of parallelism of a scan.
///
/// The default is [`Parallelism::Sequential`]: all figures and tests of the
/// reproduction run single-threaded unless a caller opts in, so results stay
/// bit-identical to the pre-parallel code path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run on the calling thread only (the default).
    #[default]
    Sequential,
    /// Fork-join over exactly `n` worker threads (values of 0 or 1 degrade
    /// to sequential execution).
    Threads(usize),
    /// Fork-join over [`available_parallelism`] worker threads.
    Auto,
}

impl Parallelism {
    /// Builds a parallelism setting from a thread count: `0` means
    /// [`Parallelism::Auto`], `1` means [`Parallelism::Sequential`], larger
    /// values request that many threads.
    pub fn from_threads(n: usize) -> Self {
        match n {
            0 => Parallelism::Auto,
            1 => Parallelism::Sequential,
            n => Parallelism::Threads(n),
        }
    }

    /// Number of workers this setting resolves to on the current machine
    /// (always >= 1).
    pub fn worker_count(&self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => (*n).max(1),
            Parallelism::Auto => available_parallelism(),
        }
    }

    /// Returns `true` if this setting resolves to more than one worker.
    pub fn is_parallel(&self) -> bool {
        self.worker_count() > 1
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Sequential => write!(f, "sequential"),
            Parallelism::Threads(n) => write!(f, "threads({n})"),
            Parallelism::Auto => write!(f, "auto({})", available_parallelism()),
        }
    }
}

/// Number of hardware threads usable for parallel scans (>= 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..len` into at most `parts` contiguous, non-empty, balanced
/// ranges covering the whole index space in order.
///
/// Used to shard the page-id (or view-slot) space across workers: every
/// shard differs in length by at most one element, so the per-worker scan
/// cost is balanced without a work-stealing queue.
pub fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// A scoped fork-join thread pool.
///
/// The pool is a lightweight handle holding the resolved worker count;
/// workers are spawned per fork-join invocation inside a
/// [`std::thread::scope`], so the closures may borrow arbitrary caller
/// state. Tasks are distributed through an [`std::sync::mpsc`] channel
/// (shared behind a mutex on the receiving side), and results travel back
/// through a second channel tagged with their task index.
///
/// # Example
///
/// Sharding a borrowed slice across workers and merging the partial sums —
/// the shape of every parallel scan in the workspace:
///
/// ```
/// use asv_util::{split_ranges, Parallelism, ThreadPool};
///
/// let values: Vec<u64> = (0..10_000).collect();
/// let pool = ThreadPool::new(Parallelism::Threads(4));
/// let tasks: Vec<_> = split_ranges(values.len(), pool.workers())
///     .into_iter()
///     // The closures borrow `values` — no `Arc`, no `'static` bound.
///     .map(|shard| {
///         let values = &values;
///         move || values[shard].iter().sum::<u64>()
///     })
///     .collect();
/// let total: u64 = pool.scoped_map(tasks).into_iter().sum();
///
/// assert_eq!(total, values.iter().sum::<u64>());
/// ```
#[derive(Clone, Debug)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// Creates a pool sized by the given [`Parallelism`] setting.
    pub fn new(parallelism: Parallelism) -> Self {
        Self {
            workers: parallelism.worker_count(),
        }
    }

    /// Creates a pool with an explicit worker count (clamped to >= 1).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// The number of worker threads a fork-join invocation may use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Fork-join: runs every task closure (at most [`Self::workers`] of them
    /// concurrently) and returns the results in task order.
    ///
    /// With a single worker — or a single task — everything runs inline on
    /// the calling thread, so the sequential configuration never pays for
    /// thread spawns or channel traffic.
    ///
    /// # Panics
    /// Panics (after joining all workers) if any task panicked.
    pub fn scoped_map<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let num_tasks = tasks.len();
        if num_tasks == 0 {
            return Vec::new();
        }
        if self.workers == 1 || num_tasks == 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }

        let (task_tx, task_rx) = channel::<(usize, F)>();
        for task in tasks.into_iter().enumerate() {
            task_tx.send(task).expect("task queue open");
        }
        drop(task_tx);
        // `Receiver` is not `Sync`; the mutex serializes task pick-up.
        let task_rx = Mutex::new(task_rx);
        let (result_tx, result_rx) = channel::<(usize, T)>();

        let slots = std::thread::scope(|scope| {
            for _ in 0..self.workers.min(num_tasks) {
                let task_rx = &task_rx;
                let result_tx = result_tx.clone();
                scope.spawn(move || loop {
                    // Pick up the next task while holding the lock, then
                    // release it before running so other workers proceed.
                    let next = {
                        let rx = match task_rx.lock() {
                            Ok(rx) => rx,
                            // A worker panicked inside `recv`; the queue is
                            // still intact, keep draining it.
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        rx.try_recv()
                    };
                    match next {
                        Ok((idx, task)) => {
                            if result_tx.send((idx, task())).is_err() {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                });
            }
            drop(result_tx);
            let mut slots: Vec<Option<T>> = (0..num_tasks).map(|_| None).collect();
            for (idx, value) in result_rx {
                slots[idx] = Some(value);
            }
            slots
            // Leaving the scope joins all workers; a panicked task
            // re-panics here instead of being swallowed.
        });

        slots
            .into_iter()
            .map(|slot| slot.expect("every task delivered a result"))
            .collect()
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::new(Parallelism::Auto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::Sequential.worker_count(), 1);
        assert_eq!(Parallelism::Threads(4).worker_count(), 4);
        assert_eq!(Parallelism::Threads(0).worker_count(), 1);
        assert!(Parallelism::Auto.worker_count() >= 1);
        assert!(!Parallelism::Sequential.is_parallel());
        assert!(Parallelism::Threads(2).is_parallel());
        assert_eq!(Parallelism::default(), Parallelism::Sequential);
        assert_eq!(Parallelism::from_threads(0), Parallelism::Auto);
        assert_eq!(Parallelism::from_threads(1), Parallelism::Sequential);
        assert_eq!(Parallelism::from_threads(3), Parallelism::Threads(3));
        assert_eq!(format!("{}", Parallelism::Threads(2)), "threads(2)");
    }

    #[test]
    fn split_ranges_covers_and_balances() {
        let ranges = split_ranges(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        // More parts than elements: one range per element.
        let ranges = split_ranges(2, 8);
        assert_eq!(ranges, vec![0..1, 1..2]);
        assert!(split_ranges(0, 4).is_empty());
        assert!(split_ranges(4, 0).is_empty());
        // Exhaustive coverage check over a few shapes.
        for len in [1usize, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = split_ranges(len, parts);
                assert!(ranges.len() <= parts);
                assert_eq!(ranges.first().unwrap().start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start);
                    assert!(!pair[0].is_empty() && !pair[1].is_empty());
                }
            }
        }
    }

    #[test]
    fn scoped_map_preserves_task_order() {
        let pool = ThreadPool::with_workers(4);
        let tasks: Vec<_> = (0..64).map(|i| move || i * 2).collect();
        let results = pool.scoped_map(tasks);
        assert_eq!(results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_map_borrows_caller_state() {
        let data: Vec<u64> = (0..1000).collect();
        let pool = ThreadPool::with_workers(3);
        let shards = split_ranges(data.len(), pool.workers());
        let partials = pool.scoped_map(
            shards
                .into_iter()
                .map(|r| {
                    let data = &data;
                    move || data[r].iter().sum::<u64>()
                })
                .collect(),
        );
        assert_eq!(partials.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn scoped_map_actually_uses_multiple_threads() {
        // With more workers than tasks and each task blocking on the others,
        // completion proves concurrent execution (a sequential executor
        // would deadlock; guard with a timeout-free design: all tasks spin
        // until every task has started).
        let started = AtomicUsize::new(0);
        let pool = ThreadPool::with_workers(2);
        let tasks: Vec<_> = (0..2)
            .map(|_| {
                let started = &started;
                move || {
                    started.fetch_add(1, Ordering::SeqCst);
                    while started.load(Ordering::SeqCst) < 2 {
                        std::hint::spin_loop();
                    }
                    true
                }
            })
            .collect();
        assert!(pool.scoped_map(tasks).into_iter().all(|v| v));
    }

    #[test]
    fn sequential_pool_runs_inline() {
        let pool = ThreadPool::new(Parallelism::Sequential);
        assert_eq!(pool.workers(), 1);
        let main_thread = std::thread::current().id();
        let results = pool.scoped_map(vec![move || std::thread::current().id() == main_thread; 3]);
        assert!(results.into_iter().all(|on_main| on_main));
    }

    #[test]
    fn empty_task_list() {
        let pool = ThreadPool::default();
        let results: Vec<u32> = pool.scoped_map(Vec::<fn() -> u32>::new());
        assert!(results.is_empty());
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn task_panics_propagate() {
        let pool = ThreadPool::with_workers(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("shard failed")),
            Box::new(|| 3),
        ];
        let _ = pool.scoped_map(tasks);
    }
}
