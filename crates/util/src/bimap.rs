//! A bidirectional map between two key spaces.
//!
//! The update-alignment path of the adaptive storage layer parses
//! `/proc/self/maps` once per update batch and materializes the resulting
//! virtual-page ↔ physical-page relation "page-wise in a bi-directional map
//! (Boost bimap), which is maintained from user-space during the update
//! process" (paper §2.5). [`BiMap`] is that structure: a one-to-one mapping
//! with O(1) lookup in both directions.

use std::collections::HashMap;
use std::hash::Hash;

/// A one-to-one bidirectional map.
///
/// Inserting a pair removes any existing pair that shares either side, so
/// the one-to-one invariant always holds (a virtual page maps to exactly one
/// physical page and vice versa within one view).
///
/// # Examples
///
/// ```
/// use asv_util::BiMap;
///
/// let mut m: BiMap<u64, u64> = BiMap::new();
/// m.insert(10, 700);
/// assert_eq!(m.get_by_left(&10), Some(&700));
/// assert_eq!(m.get_by_right(&700), Some(&10));
/// ```
#[derive(Clone, Debug, Default)]
pub struct BiMap<L, R>
where
    L: Eq + Hash + Clone,
    R: Eq + Hash + Clone,
{
    left_to_right: HashMap<L, R>,
    right_to_left: HashMap<R, L>,
}

impl<L, R> BiMap<L, R>
where
    L: Eq + Hash + Clone,
    R: Eq + Hash + Clone,
{
    /// Creates an empty map.
    pub fn new() -> Self {
        Self {
            left_to_right: HashMap::new(),
            right_to_left: HashMap::new(),
        }
    }

    /// Creates an empty map with capacity for `cap` pairs.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            left_to_right: HashMap::with_capacity(cap),
            right_to_left: HashMap::with_capacity(cap),
        }
    }

    /// Number of pairs in the map.
    pub fn len(&self) -> usize {
        self.left_to_right.len()
    }

    /// Returns `true` if the map contains no pairs.
    pub fn is_empty(&self) -> bool {
        self.left_to_right.is_empty()
    }

    /// Inserts the pair `(left, right)`.
    ///
    /// Any existing pair containing `left` or `right` is removed first so
    /// the relation stays one-to-one. Returns `true` if an existing pair was
    /// displaced.
    pub fn insert(&mut self, left: L, right: R) -> bool {
        let mut displaced = false;
        if let Some(old_right) = self.left_to_right.remove(&left) {
            self.right_to_left.remove(&old_right);
            displaced = true;
        }
        if let Some(old_left) = self.right_to_left.remove(&right) {
            self.left_to_right.remove(&old_left);
            displaced = true;
        }
        self.left_to_right.insert(left.clone(), right.clone());
        self.right_to_left.insert(right, left);
        displaced
    }

    /// Looks up the right value associated with `left`.
    pub fn get_by_left(&self, left: &L) -> Option<&R> {
        self.left_to_right.get(left)
    }

    /// Looks up the left value associated with `right`.
    pub fn get_by_right(&self, right: &R) -> Option<&L> {
        self.right_to_left.get(right)
    }

    /// Returns `true` if `left` participates in a pair.
    pub fn contains_left(&self, left: &L) -> bool {
        self.left_to_right.contains_key(left)
    }

    /// Returns `true` if `right` participates in a pair.
    pub fn contains_right(&self, right: &R) -> bool {
        self.right_to_left.contains_key(right)
    }

    /// Removes the pair containing `left`, returning its right value.
    pub fn remove_by_left(&mut self, left: &L) -> Option<R> {
        let right = self.left_to_right.remove(left)?;
        self.right_to_left.remove(&right);
        Some(right)
    }

    /// Removes the pair containing `right`, returning its left value.
    pub fn remove_by_right(&mut self, right: &R) -> Option<L> {
        let left = self.right_to_left.remove(right)?;
        self.left_to_right.remove(&left);
        Some(left)
    }

    /// Iterates over all `(left, right)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&L, &R)> {
        self.left_to_right.iter()
    }

    /// Removes all pairs.
    pub fn clear(&mut self) {
        self.left_to_right.clear();
        self.right_to_left.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup_both_directions() {
        let mut m = BiMap::new();
        m.insert("v0", 100u64);
        m.insert("v1", 200);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get_by_left(&"v0"), Some(&100));
        assert_eq!(m.get_by_right(&200), Some(&"v1"));
        assert!(m.contains_left(&"v1"));
        assert!(m.contains_right(&100));
        assert!(!m.contains_left(&"v2"));
    }

    #[test]
    fn insert_displaces_conflicting_pairs() {
        let mut m = BiMap::new();
        assert!(!m.insert(1, 10));
        // Same left, new right: old (1,10) must vanish entirely.
        assert!(m.insert(1, 20));
        assert_eq!(m.get_by_left(&1), Some(&20));
        assert_eq!(m.get_by_right(&10), None);
        // Same right, new left: old (1,20) must vanish entirely.
        assert!(m.insert(2, 20));
        assert_eq!(m.get_by_left(&1), None);
        assert_eq!(m.get_by_right(&20), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn remove_by_either_side() {
        let mut m = BiMap::new();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.remove_by_left(&1), Some(10));
        assert_eq!(m.get_by_right(&10), None);
        assert_eq!(m.remove_by_right(&20), Some(2));
        assert!(m.is_empty());
        assert_eq!(m.remove_by_left(&99), None);
    }

    #[test]
    fn iter_and_clear() {
        let mut m = BiMap::new();
        for i in 0u64..16 {
            m.insert(i, i * 2);
        }
        let mut pairs: Vec<(u64, u64)> = m.iter().map(|(l, r)| (*l, *r)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs.len(), 16);
        assert_eq!(pairs[3], (3, 6));
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut m = BiMap::with_capacity(64);
        m.insert(5u32, 6u32);
        assert_eq!(m.get_by_left(&5), Some(&6));
    }
}
