//! Utility data structures shared across the adaptive-storage-views workspace.
//!
//! This crate intentionally has no dependencies besides the standard library.
//! It provides the small, heavily-exercised building blocks that the paper's
//! algorithms rely on:
//!
//! * [`BitVec`] — the fixed-size bitvector used to track already-processed
//!   physical pages during multi-view query answering (paper §2.1).
//! * [`BiMap`] — a bidirectional map between virtual and physical page
//!   numbers, replacing the Boost `bimap` the paper materializes from
//!   `/proc/self/maps` (paper §2.5).
//! * [`RowSet`] — a bitset over row ids, the intermediate representation of
//!   conjunctive multi-column execution (word-wise intersection).
//! * [`ValueRange`] — closed integer ranges `[l, u]` with the "full range"
//!   (`[-∞, ∞]`) semantics views are described with (paper §2).
//! * [`IntervalIndex`] — a centered interval tree over [`ValueRange`]s with
//!   `O(log n + k)` stab/overlap queries, the predicate → zone index behind
//!   dependency-driven incremental alignment.
//! * [`RunBuilder`] / [`Run`] — grouping of consecutive page numbers into
//!   runs, used by the consecutive-mapping optimization (paper §2.3).
//! * [`ThreadPool`] / [`Parallelism`] — a hand-rolled scoped fork-join pool
//!   powering the sharded parallel scan path.
//! * [`EpochCell`] — a single-publisher, many-reader epoch-pinned value
//!   cell (userspace RCU on std atomics), the primitive behind the
//!   concurrent serving layer's snapshot handoff.
//! * [`Timer`] and [`Summary`] — tiny measurement helpers for the
//!   experiment harness.

#![warn(missing_docs)]

pub mod bimap;
pub mod bitvec;
pub mod epoch;
pub mod interval;
pub mod pool;
pub mod range;
pub mod rowset;
pub mod runs;
pub mod stats;

pub use bimap::BiMap;
pub use bitvec::BitVec;
pub use epoch::{EpochCell, Pinned, Reader};
pub use interval::IntervalIndex;
pub use pool::{available_parallelism, split_ranges, Parallelism, ThreadPool};
pub use range::ValueRange;
pub use rowset::RowSet;
pub use runs::{group_into_runs, Run, RunBuilder};
pub use stats::{average_runtime, Summary, Timer};
