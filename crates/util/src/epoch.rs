//! A wait-free-read epoch cell: RCU/arc-swap-style generation handoff.
//!
//! [`EpochCell`] holds one logical value that a single *publisher* replaces
//! wholesale ([`EpochCell::publish`]) while any number of *readers* pin the
//! current value without taking a lock ([`Reader::pin`]). Every published
//! value is an **epoch**: readers obtain an [`Pinned`] handle carrying an
//! [`Arc`] of the epoch's value, so a pinned epoch stays readable for as
//! long as the handle lives — even across arbitrarily many later publishes.
//! Superseded epochs are reclaimed once no reader can still be dereferencing
//! them ([`EpochCell::try_reclaim`]).
//!
//! The protocol is a miniature userspace RCU built on `std` atomics only
//! (the workspace vendors all dependencies, so crates like `arc-swap` or
//! `crossbeam-epoch` are out of reach):
//!
//! * each registered [`Reader`] owns a *slot* — an atomic announcing the
//!   generation it is currently dereferencing (`0` = quiescent);
//! * `pin` announces `generation + 1` in its slot, re-checks the generation,
//!   loads the current node and clones the value's `Arc`, then clears the
//!   slot — a handful of `SeqCst` atomics, no lock, no syscall;
//! * `publish` swaps the node pointer, bumps the generation and *retires*
//!   the old node stamped with the new generation; a retired node is freed
//!   once every slot is either quiescent or pinned at a generation strictly
//!   above the node's retire stamp.
//!
//! The slot only protects the brief pointer-dereference window inside `pin`;
//! epoch *lifetime* is handled by the `Arc` inside the node, so readers can
//! hold a [`Pinned`] for seconds while the cell publishes thousands of
//! epochs — they simply delay the reclamation of nothing but the one node
//! they cloned from.

use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// One published epoch: the value plus the generation it was published at.
struct Node<T> {
    value: Arc<T>,
    generation: u64,
}

/// The per-reader announcement slot: `0` while quiescent, `g + 1` while the
/// reader is dereferencing the node pointer inside a `pin` at generation `g`.
struct SlotState {
    pinned: AtomicU64,
}

/// A single-publisher, many-reader epoch-pinned value cell.
///
/// Readers must be registered up front ([`EpochCell::reader`]); the
/// registration takes a lock, but every subsequent [`Reader::pin`] is
/// lock-free. Publishing is intended for a single maintenance thread; a lock
/// makes concurrent publishers safe anyway (they serialize).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use asv_util::EpochCell;
///
/// let cell = Arc::new(EpochCell::new(vec![1, 2, 3]));
/// let reader = cell.reader();
/// let pinned = reader.pin();
/// cell.publish(vec![4, 5, 6]);
/// assert_eq!(*pinned, vec![1, 2, 3], "pinned epochs stay readable");
/// assert_eq!(*reader.pin(), vec![4, 5, 6]);
/// ```
pub struct EpochCell<T> {
    /// The current epoch's node. Swapped (never mutated) by `publish`.
    current: AtomicPtr<Node<T>>,
    /// Generation counter: bumped *after* `current` is swapped, so a reader
    /// observing generation `g` can rely on `current` pointing at a node of
    /// generation `>= g`.
    generation: AtomicU64,
    /// Registered reader slots. Locked only on registration, pruning and
    /// reclamation — never on the pin hot path.
    readers: Mutex<Vec<Arc<SlotState>>>,
    /// Superseded nodes awaiting reclamation, each stamped with the
    /// generation at which it was retired.
    retired: Mutex<Vec<(*mut Node<T>, u64)>>,
    /// Serializes publishers (a single maintenance thread in practice).
    publish_lock: Mutex<()>,
}

// SAFETY: the raw node pointers are owned by the cell and only dereferenced
// under the pin protocol (readers) or the publish lock (publisher); `T` is
// required to be `Send + Sync` by every constructor and accessor.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T: Send + Sync> EpochCell<T> {
    /// Creates a cell holding `value` as the generation-0 epoch.
    pub fn new(value: T) -> Self {
        let node = Box::into_raw(Box::new(Node {
            value: Arc::new(value),
            generation: 0,
        }));
        Self {
            current: AtomicPtr::new(node),
            generation: AtomicU64::new(0),
            readers: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            publish_lock: Mutex::new(()),
        }
    }

    /// Registers a new reader. Registration locks the reader registry;
    /// the returned [`Reader`] pins lock-free from then on.
    pub fn reader(self: &Arc<Self>) -> Reader<T> {
        let slot = Arc::new(SlotState {
            pinned: AtomicU64::new(0),
        });
        self.readers
            .lock()
            .expect("reader registry")
            .push(Arc::clone(&slot));
        Reader {
            cell: Arc::clone(self),
            slot,
        }
    }

    /// The current generation (bumped once per publish).
    pub fn generation(&self) -> u64 {
        self.generation.load(SeqCst)
    }

    /// Publishes `value` as the next epoch and returns its `Arc`. The old
    /// epoch is retired and reclaimed once no reader can still be
    /// dereferencing its node.
    pub fn publish(&self, value: T) -> Arc<T> {
        let arc = Arc::new(value);
        let _guard = self.publish_lock.lock().expect("publish lock");
        let g = self.generation.load(SeqCst);
        let node = Box::into_raw(Box::new(Node {
            value: Arc::clone(&arc),
            generation: g + 1,
        }));
        // Swap first, bump second: a reader that still observes generation
        // `g` after announcing its slot may load either node, and both are
        // protected (the old one is retired at `g + 1`, which the reader's
        // announced `g + 1` blocks from being freed).
        let old = self.current.swap(node, SeqCst);
        self.generation.store(g + 1, SeqCst);
        self.retired
            .lock()
            .expect("retired list")
            .push((old, g + 1));
        drop(_guard);
        self.try_reclaim();
        arc
    }

    /// The current epoch's value (publisher-side convenience; takes the
    /// publish lock, so do not call it on a reader hot path — readers use
    /// [`Reader::pin`]).
    pub fn latest(&self) -> Arc<T> {
        let _guard = self.publish_lock.lock().expect("publish lock");
        // SAFETY: `current` is only swapped under the publish lock we hold,
        // and a node is never retired (hence never freed) while current.
        unsafe { Arc::clone(&(*self.current.load(SeqCst)).value) }
    }

    /// Frees every retired node no reader can still be dereferencing, and
    /// prunes the slots of dropped readers. Called automatically by
    /// [`EpochCell::publish`]; callers tracking epoch lifetime (e.g. to
    /// decide when a grace period has elapsed) may call it explicitly.
    pub fn try_reclaim(&self) {
        let mut retired = self.retired.lock().expect("retired list");
        let mut readers = self.readers.lock().expect("reader registry");
        // Prune slots whose reader was dropped: only the registry still
        // holds the Arc, and a dropped reader is necessarily quiescent.
        readers.retain(|s| Arc::strong_count(s) > 1 || s.pinned.load(SeqCst) != 0);
        if retired.is_empty() {
            return;
        }
        let pins: Vec<u64> = readers.iter().map(|s| s.pinned.load(SeqCst)).collect();
        retired.retain(|&(ptr, retired_at)| {
            // A slot announcing `s` protects every node retired at `>= s`:
            // the reader may have loaded the node that was current anywhere
            // from generation `s - 1` on.
            let blocked = pins.iter().any(|&s| s != 0 && s <= retired_at);
            if !blocked {
                // SAFETY: the node was retired (unreachable for new pins)
                // and no announced slot can still be dereferencing it.
                drop(unsafe { Box::from_raw(ptr) });
            }
            blocked
        });
    }

    /// Number of retired epochs not yet reclaimed (diagnostics / tests).
    pub fn retired_epochs(&self) -> usize {
        self.retired.lock().expect("retired list").len()
    }

    /// Number of registered (live) readers (diagnostics / tests).
    pub fn num_readers(&self) -> usize {
        self.readers.lock().expect("reader registry").len()
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; no reader or publisher can be active.
        unsafe {
            drop(Box::from_raw(self.current.load(SeqCst)));
            for &(ptr, _) in self.retired.lock().expect("retired list").iter() {
                drop(Box::from_raw(ptr));
            }
        }
    }
}

impl<T> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("generation", &self.generation.load(SeqCst))
            .finish_non_exhaustive()
    }
}

/// A registered reader of an [`EpochCell`]. Cheap to clone (clones register
/// their own slot); `Send` but deliberately not shared — each thread serves
/// from its own `Reader`.
pub struct Reader<T> {
    cell: Arc<EpochCell<T>>,
    slot: Arc<SlotState>,
}

impl<T: Send + Sync> Reader<T> {
    /// Pins the current epoch: a handful of `SeqCst` atomics, no lock. The
    /// returned [`Pinned`] keeps the epoch's value alive (via `Arc`) for as
    /// long as it is held; the announcement slot is cleared before `pin`
    /// returns, so holding a `Pinned` never delays reclamation of any other
    /// epoch.
    pub fn pin(&self) -> Pinned<T> {
        loop {
            let g = self.cell.generation.load(SeqCst);
            // Announce: protects every node retired at generation > g,
            // which covers whatever `current` points at below.
            self.slot.pinned.store(g + 1, SeqCst);
            if self.cell.generation.load(SeqCst) != g {
                // A publish raced the announcement; its reclamation pass may
                // not have seen our slot. Retry under the new generation.
                self.slot.pinned.store(0, SeqCst);
                std::hint::spin_loop();
                continue;
            }
            let ptr = self.cell.current.load(SeqCst);
            // SAFETY: the generation re-check above proves our announced
            // `g + 1` was visible before any publish past `g` retired this
            // node (nodes current at generation >= g retire at >= g + 1,
            // which our announcement blocks from being freed).
            let (value, generation) = unsafe { (Arc::clone(&(*ptr).value), (*ptr).generation) };
            self.slot.pinned.store(0, SeqCst);
            return Pinned { value, generation };
        }
    }

    /// The cell this reader is registered with.
    pub fn cell(&self) -> &Arc<EpochCell<T>> {
        &self.cell
    }
}

impl<T: Send + Sync> Clone for Reader<T> {
    fn clone(&self) -> Self {
        self.cell.reader()
    }
}

impl<T> std::fmt::Debug for Reader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reader").finish_non_exhaustive()
    }
}

/// A pinned epoch: dereferences to the epoch's value, which stays alive (and
/// bit-identical) for as long as this handle is held — regardless of how
/// many epochs are published meanwhile.
pub struct Pinned<T> {
    value: Arc<T>,
    generation: u64,
}

// Manual impl: cloning shares the `Arc`, so `T: Clone` must not be required
// (a derive would add that bound).
impl<T> Clone for Pinned<T> {
    fn clone(&self) -> Self {
        Self {
            value: Arc::clone(&self.value),
            generation: self.generation,
        }
    }
}

impl<T> Pinned<T> {
    /// The generation this epoch was published at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The epoch value's `Arc` (e.g. to keep parts of it alive cheaply).
    pub fn value(&self) -> &Arc<T> {
        &self.value
    }
}

impl<T> Deref for Pinned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Pinned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pinned")
            .field("generation", &self.generation)
            .field("value", &*self.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A payload counting its drops, to observe reclamation directly.
    struct Counted {
        value: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Counted {
        fn drop(&mut self) {
            self.drops.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn pin_sees_the_latest_publish() {
        let cell = Arc::new(EpochCell::new(10u64));
        let reader = cell.reader();
        assert_eq!(*reader.pin(), 10);
        assert_eq!(reader.pin().generation(), 0);
        cell.publish(20);
        assert_eq!(*reader.pin(), 20);
        assert_eq!(reader.pin().generation(), 1);
        assert_eq!(cell.generation(), 1);
        assert_eq!(*cell.latest(), 20);
    }

    #[test]
    fn pinned_epochs_stay_readable_across_publishes() {
        let cell = Arc::new(EpochCell::new(0u64));
        let reader = cell.reader();
        let old = reader.pin();
        for i in 1..=100 {
            cell.publish(i);
        }
        assert_eq!(*old, 0, "the pinned epoch is immutable");
        assert_eq!(*reader.pin(), 100);
        // The pinned handle holds the value via Arc, not via the retired
        // node — so every superseded node was reclaimable immediately.
        cell.try_reclaim();
        assert_eq!(cell.retired_epochs(), 0);
        drop(old);
    }

    #[test]
    fn superseded_values_drop_once_unpinned() {
        let drops = Arc::new(AtomicUsize::new(0));
        let make = |v: u64| Counted {
            value: v,
            drops: Arc::clone(&drops),
        };
        let cell = Arc::new(EpochCell::new(make(0)));
        let reader = cell.reader();
        let pinned = reader.pin();
        for i in 1..=5 {
            cell.publish(make(i));
        }
        // The generation-0 value is still pinned; values 1..=4 are free.
        assert_eq!(drops.load(SeqCst), 4);
        assert_eq!((*pinned).value, 0);
        drop(pinned);
        cell.try_reclaim();
        assert_eq!(drops.load(SeqCst), 5, "dropping the pin frees epoch 0");
        drop(reader);
        drop(cell);
        assert_eq!(drops.load(SeqCst), 6, "dropping the cell frees the rest");
    }

    #[test]
    fn dropped_readers_are_pruned() {
        let cell = Arc::new(EpochCell::new(1u64));
        let a = cell.reader();
        let b = a.clone();
        assert_eq!(cell.num_readers(), 2);
        drop(b);
        cell.try_reclaim();
        assert_eq!(cell.num_readers(), 1);
        drop(a);
        cell.publish(2); // publish reclaims, pruning the second slot
        assert_eq!(cell.num_readers(), 0);
    }

    #[test]
    fn hammer_readers_never_observe_torn_or_freed_epochs() {
        // Each epoch is a vector whose elements all equal its generation;
        // any use-after-free or torn publish shows up as a mixed vector.
        const EPOCHS: u64 = 2_000;
        const READERS: usize = 4;
        let cell = Arc::new(EpochCell::new(vec![0u64; 64]));
        std::thread::scope(|scope| {
            for _ in 0..READERS {
                let reader = cell.reader();
                scope.spawn(move || {
                    let mut last = 0u64;
                    loop {
                        let pinned = reader.pin();
                        let v = pinned[0];
                        assert!(pinned.iter().all(|&x| x == v), "consistent epoch");
                        assert_eq!(pinned.generation(), v, "value matches generation");
                        assert!(v >= last, "generations are monotonic per reader");
                        last = v;
                        if v == EPOCHS {
                            break;
                        }
                    }
                });
            }
            for g in 1..=EPOCHS {
                cell.publish(vec![g; 64]);
            }
        });
        cell.try_reclaim();
        assert_eq!(cell.retired_epochs(), 0);
    }

    #[test]
    fn slow_reader_blocks_only_its_own_node() {
        let cell = Arc::new(EpochCell::new(0u64));
        let reader = cell.reader();
        // Simulate the one hazardous window: a slot left announced (as if a
        // reader were mid-pin) must block reclamation of nodes retired at or
        // after the announced generation.
        reader.slot.pinned.store(cell.generation() + 1, SeqCst);
        cell.publish(1);
        assert_eq!(cell.retired_epochs(), 1, "announced slot blocks the free");
        reader.slot.pinned.store(0, SeqCst);
        cell.try_reclaim();
        assert_eq!(cell.retired_epochs(), 0);
    }
}
