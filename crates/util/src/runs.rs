//! Grouping of consecutive page numbers into runs.
//!
//! The first view-creation optimization of the paper maps *consecutive
//! qualifying physical pages* with a single `mmap()` call instead of one
//! call per page (paper §2.3, optimization 1). [`RunBuilder`] performs the
//! grouping: qualifying page numbers are pushed in scan order and emitted as
//! maximal runs of consecutive pages.

/// A maximal run of consecutive page numbers `[start, start + len)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Run {
    /// First page number of the run.
    pub start: u64,
    /// Number of consecutive pages in the run (always >= 1).
    pub len: u64,
}

impl Run {
    /// Last page number contained in the run.
    #[inline]
    pub fn end_inclusive(&self) -> u64 {
        self.start + self.len - 1
    }

    /// Returns `true` if `page` belongs to this run.
    #[inline]
    pub fn contains(&self, page: u64) -> bool {
        page >= self.start && page < self.start + self.len
    }

    /// Iterates over the page numbers of the run.
    pub fn pages(&self) -> impl Iterator<Item = u64> {
        self.start..self.start + self.len
    }
}

/// Incrementally groups page numbers into maximal consecutive runs.
///
/// Pages may be pushed in any order overall, but a run is only extended by
/// the *immediately next* page number; any other page closes the current run
/// and starts a new one. This matches the scan-order behaviour of view
/// creation: "as soon as we encounter a non-qualifying page, we map all
/// previously seen qualifying pages in one call".
///
/// # Examples
///
/// ```
/// use asv_util::RunBuilder;
///
/// let mut rb = RunBuilder::new();
/// let mut flushed = Vec::new();
/// for page in [3u64, 4, 5, 9, 10, 20] {
///     if let Some(run) = rb.push(page) {
///         flushed.push(run);
///     }
/// }
/// flushed.extend(rb.finish());
/// assert_eq!(flushed.len(), 3);
/// assert_eq!(flushed[0].start, 3);
/// assert_eq!(flushed[0].len, 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunBuilder {
    current: Option<Run>,
}

impl RunBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self { current: None }
    }

    /// Pushes the next qualifying page number.
    ///
    /// Returns a completed [`Run`] when `page` does not extend the current
    /// run (the completed run must then be mapped / recorded by the caller).
    pub fn push(&mut self, page: u64) -> Option<Run> {
        match self.current.as_mut() {
            None => {
                self.current = Some(Run {
                    start: page,
                    len: 1,
                });
                None
            }
            Some(run) if page == run.start + run.len => {
                run.len += 1;
                None
            }
            Some(run) => {
                let finished = *run;
                self.current = Some(Run {
                    start: page,
                    len: 1,
                });
                Some(finished)
            }
        }
    }

    /// Closes and returns the current run, if any. The builder is reusable
    /// afterwards.
    pub fn finish(&mut self) -> Option<Run> {
        self.current.take()
    }

    /// Returns `true` if a run is currently open.
    pub fn has_open_run(&self) -> bool {
        self.current.is_some()
    }
}

/// Convenience helper: groups an iterator of page numbers into runs.
///
/// Consecutive pages (in iteration order) are merged; the result preserves
/// first-seen order of runs.
pub fn group_into_runs<I: IntoIterator<Item = u64>>(pages: I) -> Vec<Run> {
    let mut rb = RunBuilder::new();
    let mut out = Vec::new();
    for p in pages {
        if let Some(run) = rb.push(p) {
            out.push(run);
        }
    }
    if let Some(run) = rb.finish() {
        out.push(run);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_produces_no_runs() {
        assert!(group_into_runs(std::iter::empty()).is_empty());
        let mut rb = RunBuilder::new();
        assert!(!rb.has_open_run());
        assert!(rb.finish().is_none());
    }

    #[test]
    fn single_page_is_a_run_of_one() {
        let runs = group_into_runs([42]);
        assert_eq!(runs, vec![Run { start: 42, len: 1 }]);
        assert_eq!(runs[0].end_inclusive(), 42);
    }

    #[test]
    fn consecutive_pages_merge_into_one_run() {
        let runs = group_into_runs(0..1000);
        assert_eq!(
            runs,
            vec![Run {
                start: 0,
                len: 1000
            }]
        );
    }

    #[test]
    fn gaps_split_runs() {
        let runs = group_into_runs([1, 2, 3, 7, 8, 100]);
        assert_eq!(
            runs,
            vec![
                Run { start: 1, len: 3 },
                Run { start: 7, len: 2 },
                Run { start: 100, len: 1 },
            ]
        );
    }

    #[test]
    fn non_monotonic_input_closes_runs() {
        // Going backwards never extends a run.
        let runs = group_into_runs([5, 4, 3]);
        assert_eq!(runs.len(), 3);
    }

    #[test]
    fn run_helpers() {
        let run = Run { start: 10, len: 4 };
        assert!(run.contains(10));
        assert!(run.contains(13));
        assert!(!run.contains(14));
        assert_eq!(run.pages().collect::<Vec<_>>(), vec![10, 11, 12, 13]);
    }

    #[test]
    fn builder_is_reusable_after_finish() {
        let mut rb = RunBuilder::new();
        rb.push(1);
        rb.push(2);
        assert_eq!(rb.finish(), Some(Run { start: 1, len: 2 }));
        assert!(rb.push(9).is_none());
        assert_eq!(rb.finish(), Some(Run { start: 9, len: 1 }));
    }
}
