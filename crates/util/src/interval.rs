//! An interval index mapping closed value ranges to ids.
//!
//! [`IntervalIndex`] answers *stab* ("which intervals contain value `v`?")
//! and *overlap* ("which intervals intersect `[lo, hi]`?") queries in
//! `O(log n + k)` over a centered interval tree, where `k` is the number of
//! reported ids. The tree is rebuilt lazily on first query after a mutation,
//! which fits the workspace's usage pattern: view sets mutate rarely (view
//! creation, replacement, clear) while every write batch queries the index.
//!
//! Intervals are closed on both ends, matching [`ValueRange`] semantics.
//! Per-node interval lists use inline fixed-capacity storage and only spill
//! to the heap for high-degree nodes (many intervals sharing a center),
//! keeping the common low-degree case allocation-free.

use crate::range::ValueRange;
use std::collections::HashMap;
use std::sync::Mutex;

/// Number of intervals a tree node stores inline before spilling to a heap
/// allocation. Real view sets rarely stack more than a handful of predicate
/// ranges over the same center value.
const INLINE_CAP: usize = 4;

/// Sentinel child index meaning "no subtree".
const NONE: u32 = u32::MAX;

/// One indexed interval: the closed bounds plus the caller's id.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Entry {
    low: u64,
    high: u64,
    id: u64,
}

/// A list of [`Entry`] values with inline storage for up to [`INLINE_CAP`]
/// elements, spilling to a `Vec` beyond that.
#[derive(Clone, Debug)]
enum SmallList {
    Inline { len: u8, slots: [Entry; INLINE_CAP] },
    Heap(Vec<Entry>),
}

impl SmallList {
    fn new() -> Self {
        SmallList::Inline {
            len: 0,
            slots: [Entry::default(); INLINE_CAP],
        }
    }

    fn push(&mut self, entry: Entry) {
        match self {
            SmallList::Inline { len, slots } => {
                if (*len as usize) < INLINE_CAP {
                    slots[*len as usize] = entry;
                    *len += 1;
                } else {
                    let mut spilled = slots.to_vec();
                    spilled.push(entry);
                    *self = SmallList::Heap(spilled);
                }
            }
            SmallList::Heap(v) => v.push(entry),
        }
    }

    fn as_slice(&self) -> &[Entry] {
        match self {
            SmallList::Inline { len, slots } => &slots[..*len as usize],
            SmallList::Heap(v) => v,
        }
    }

    /// True while the list still lives in its inline slots (test hook).
    #[cfg(test)]
    fn is_inline(&self) -> bool {
        matches!(self, SmallList::Inline { .. })
    }
}

/// A node of the centered interval tree: every interval stored here contains
/// `center`; intervals entirely below live in `left`, entirely above in
/// `right`. `by_low` holds the node's intervals sorted by ascending lower
/// bound, `by_high` the same intervals sorted by descending upper bound, so
/// stab/overlap queries can stop at the first non-qualifying element.
#[derive(Clone, Debug)]
struct Node {
    center: u64,
    by_low: SmallList,
    by_high: SmallList,
    left: u32,
    right: u32,
}

/// The immutable query structure, rebuilt from the entry map on demand.
#[derive(Clone, Debug)]
struct Tree {
    nodes: Vec<Node>,
    root: u32,
}

impl Tree {
    fn build(entries: &HashMap<u64, ValueRange>) -> Self {
        let items: Vec<Entry> = entries
            .iter()
            .map(|(&id, range)| Entry {
                low: range.low(),
                high: range.high(),
                id,
            })
            .collect();
        let mut nodes = Vec::new();
        let root = Self::build_node(items, &mut nodes);
        Tree { nodes, root }
    }

    fn build_node(items: Vec<Entry>, nodes: &mut Vec<Node>) -> u32 {
        if items.is_empty() {
            return NONE;
        }
        // Median of the interval endpoints balances the tree: each side holds
        // at most half of the endpoints, and at least one interval (any one
        // with the median as an endpoint) stays at this node, so both
        // recursive calls strictly shrink.
        let mut endpoints: Vec<u64> = Vec::with_capacity(items.len() * 2);
        for e in &items {
            endpoints.push(e.low);
            endpoints.push(e.high);
        }
        endpoints.sort_unstable();
        let center = endpoints[endpoints.len() / 2];

        let mut below = Vec::new();
        let mut above = Vec::new();
        let mut mid = Vec::new();
        for e in items {
            if e.high < center {
                below.push(e);
            } else if e.low > center {
                above.push(e);
            } else {
                mid.push(e);
            }
        }
        // Deterministic node contents regardless of hash-map iteration
        // order: unique ids break all ties.
        let mut by_low = SmallList::new();
        mid.sort_unstable_by_key(|e| (e.low, e.id));
        for e in &mid {
            by_low.push(*e);
        }
        let mut by_high = SmallList::new();
        mid.sort_unstable_by_key(|e| (std::cmp::Reverse(e.high), e.id));
        for e in &mid {
            by_high.push(*e);
        }

        let left = Self::build_node(below, nodes);
        let right = Self::build_node(above, nodes);
        nodes.push(Node {
            center,
            by_low,
            by_high,
            left,
            right,
        });
        (nodes.len() - 1) as u32
    }

    fn stab_into(&self, mut node: u32, value: u64, out: &mut Vec<u64>) {
        while node != NONE {
            let n = &self.nodes[node as usize];
            if value < n.center {
                // Node intervals contain `center > value`; they contain
                // `value` iff their lower bound reaches down to it.
                for e in n.by_low.as_slice() {
                    if e.low <= value {
                        out.push(e.id);
                    } else {
                        break;
                    }
                }
                node = n.left;
            } else if value > n.center {
                for e in n.by_high.as_slice() {
                    if e.high >= value {
                        out.push(e.id);
                    } else {
                        break;
                    }
                }
                node = n.right;
            } else {
                // Exact hit: every interval of this node contains `center`,
                // and no interval in either subtree can (left ends below it,
                // right starts above it).
                out.extend(n.by_low.as_slice().iter().map(|e| e.id));
                return;
            }
        }
    }

    fn overlap_into(&self, node: u32, low: u64, high: u64, out: &mut Vec<u64>) {
        if node == NONE {
            return;
        }
        let n = &self.nodes[node as usize];
        if high < n.center {
            // Node intervals reach up to at least `center > high`; they
            // overlap iff their lower bound is within the query. The right
            // subtree starts above `center` and cannot overlap.
            for e in n.by_low.as_slice() {
                if e.low <= high {
                    out.push(e.id);
                } else {
                    break;
                }
            }
            self.overlap_into(n.left, low, high, out);
        } else if low > n.center {
            for e in n.by_high.as_slice() {
                if e.high >= low {
                    out.push(e.id);
                } else {
                    break;
                }
            }
            self.overlap_into(n.right, low, high, out);
        } else {
            // The query spans the center: all node intervals overlap, and
            // both subtrees may hold more.
            out.extend(n.by_low.as_slice().iter().map(|e| e.id));
            self.overlap_into(n.left, low, high, out);
            self.overlap_into(n.right, low, high, out);
        }
    }
}

/// An index of closed integer intervals keyed by id, answering stab and
/// overlap queries in `O(log n + k)`.
///
/// Mutations ([`insert`](Self::insert), [`remove`](Self::remove),
/// [`clear`](Self::clear)) invalidate the internal tree; the next query
/// rebuilds it in `O(n log n)`. Queries return ids sorted ascending, so
/// results are deterministic and directly comparable across runs.
///
/// ```
/// use asv_util::{IntervalIndex, ValueRange};
///
/// let mut idx = IntervalIndex::new();
/// idx.insert(1, ValueRange::new(10, 20));
/// idx.insert(2, ValueRange::new(15, 30));
/// idx.insert(3, ValueRange::new(40, 50));
/// assert_eq!(idx.stab(18), vec![1, 2]);
/// assert_eq!(idx.overlapping(&ValueRange::new(25, 45)), vec![2, 3]);
/// ```
#[derive(Debug, Default)]
pub struct IntervalIndex {
    entries: HashMap<u64, ValueRange>,
    /// Lazily rebuilt query tree. A `Mutex` (not `RefCell`) so the index
    /// stays `Sync` — queries take one uncontended lock; the structures
    /// embedding view sets are shared immutably across scan workers.
    tree: Mutex<Option<Tree>>,
}

impl Clone for IntervalIndex {
    fn clone(&self) -> Self {
        Self {
            entries: self.entries.clone(),
            tree: Mutex::new(None),
        }
    }
}

impl IntervalIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no intervals are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts (or replaces) the interval stored under `id`.
    pub fn insert(&mut self, id: u64, range: ValueRange) {
        self.entries.insert(id, range);
        *self.tree.get_mut().expect("interval tree lock poisoned") = None;
    }

    /// Removes the interval stored under `id`; returns whether it existed.
    pub fn remove(&mut self, id: u64) -> bool {
        let existed = self.entries.remove(&id).is_some();
        if existed {
            *self.tree.get_mut().expect("interval tree lock poisoned") = None;
        }
        existed
    }

    /// Drops every indexed interval.
    pub fn clear(&mut self) {
        self.entries.clear();
        *self.tree.get_mut().expect("interval tree lock poisoned") = None;
    }

    /// The interval currently stored under `id`, if any.
    pub fn range_of(&self, id: u64) -> Option<ValueRange> {
        self.entries.get(&id).copied()
    }

    /// Ids of all intervals containing `value`, sorted ascending.
    pub fn stab(&self, value: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.with_tree(|tree| tree.stab_into(tree.root, value, &mut out));
        out.sort_unstable();
        out
    }

    /// Ids of all intervals intersecting `range` (closed bounds on both
    /// sides), sorted ascending.
    pub fn overlapping(&self, range: &ValueRange) -> Vec<u64> {
        let mut out = Vec::new();
        self.with_tree(|tree| tree.overlap_into(tree.root, range.low(), range.high(), &mut out));
        out.sort_unstable();
        out
    }

    /// Runs `f` against the (lazily rebuilt) query tree.
    fn with_tree<R>(&self, f: impl FnOnce(&Tree) -> R) -> R {
        let mut slot = self.tree.lock().expect("interval tree lock poisoned");
        let tree = slot.get_or_insert_with(|| Tree::build(&self.entries));
        f(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Splitmix-style deterministic generator, independent of any RNG crate.
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn naive_stab(entries: &[(u64, ValueRange)], value: u64) -> Vec<u64> {
        let mut ids: Vec<u64> = entries
            .iter()
            .filter(|(_, r)| r.contains(value))
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }

    fn naive_overlap(entries: &[(u64, ValueRange)], q: &ValueRange) -> Vec<u64> {
        let mut ids: Vec<u64> = entries
            .iter()
            .filter(|(_, r)| r.overlaps(q))
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn empty_index_answers_nothing() {
        let idx = IntervalIndex::new();
        assert!(idx.is_empty());
        assert!(idx.stab(7).is_empty());
        assert!(idx.overlapping(&ValueRange::full()).is_empty());
    }

    #[test]
    fn closed_bounds_are_inclusive() {
        let mut idx = IntervalIndex::new();
        idx.insert(1, ValueRange::new(10, 20));
        assert_eq!(idx.stab(10), vec![1]);
        assert_eq!(idx.stab(20), vec![1]);
        assert!(idx.stab(9).is_empty());
        assert!(idx.stab(21).is_empty());
        // Touching at a single point still counts as overlap.
        assert_eq!(idx.overlapping(&ValueRange::new(20, 25)), vec![1]);
        assert_eq!(idx.overlapping(&ValueRange::new(0, 10)), vec![1]);
        assert!(idx.overlapping(&ValueRange::new(21, 25)).is_empty());
    }

    #[test]
    fn replace_remove_and_clear_invalidate_queries() {
        let mut idx = IntervalIndex::new();
        idx.insert(5, ValueRange::new(0, 9));
        assert_eq!(idx.stab(4), vec![5]);
        idx.insert(5, ValueRange::new(100, 200));
        assert!(idx.stab(4).is_empty());
        assert_eq!(idx.stab(150), vec![5]);
        assert_eq!(idx.range_of(5), Some(ValueRange::new(100, 200)));
        assert!(idx.remove(5));
        assert!(!idx.remove(5));
        assert!(idx.stab(150).is_empty());
        idx.insert(1, ValueRange::full());
        idx.clear();
        assert!(idx.is_empty());
        assert!(idx.overlapping(&ValueRange::full()).is_empty());
    }

    #[test]
    fn full_ranges_match_everything() {
        let mut idx = IntervalIndex::new();
        idx.insert(1, ValueRange::full());
        idx.insert(2, ValueRange::point(u64::MAX));
        idx.insert(3, ValueRange::point(0));
        assert_eq!(idx.stab(0), vec![1, 3]);
        assert_eq!(idx.stab(u64::MAX), vec![1, 2]);
        assert_eq!(idx.overlapping(&ValueRange::full()), vec![1, 2, 3]);
    }

    #[test]
    fn high_degree_nodes_spill_past_inline_capacity() {
        // All intervals contain 50, so they land in a single node and the
        // node's lists must spill from inline to heap storage.
        let mut idx = IntervalIndex::new();
        for i in 0..(INLINE_CAP as u64 * 3) {
            idx.insert(i, ValueRange::new(50 - i.min(50), 50 + i));
        }
        let expected: Vec<u64> = (0..INLINE_CAP as u64 * 3).collect();
        assert_eq!(idx.stab(50), expected);
        idx.with_tree(|tree| {
            assert!(tree
                .nodes
                .iter()
                .any(|n| !n.by_low.is_inline() && !n.by_high.is_inline()));
        });
    }

    #[test]
    fn small_list_inline_until_capacity() {
        let mut list = SmallList::new();
        for i in 0..INLINE_CAP as u64 {
            list.push(Entry {
                low: i,
                high: i,
                id: i,
            });
            assert!(list.is_inline());
        }
        list.push(Entry {
            low: 99,
            high: 99,
            id: 99,
        });
        assert!(!list.is_inline());
        assert_eq!(list.as_slice().len(), INLINE_CAP + 1);
    }

    #[test]
    fn matches_naive_reference_on_random_workloads() {
        let mut state = 0xA51CEu64;
        for round in 0..20 {
            let mut idx = IntervalIndex::new();
            let mut entries = Vec::new();
            let n = 1 + (next(&mut state) % 120) as usize;
            for id in 0..n as u64 {
                let a = next(&mut state) % 10_000;
                let b = next(&mut state) % 10_000;
                let range = ValueRange::new(a.min(b), a.max(b));
                idx.insert(id, range);
                entries.push((id, range));
            }
            // A few deletions keep the tree honest about removals.
            for _ in 0..n / 4 {
                let id = next(&mut state) % n as u64;
                idx.remove(id);
                entries.retain(|(e, _)| *e != id);
            }
            for _ in 0..200 {
                let v = next(&mut state) % 10_500;
                assert_eq!(idx.stab(v), naive_stab(&entries, v), "round {round}");
                let a = next(&mut state) % 10_500;
                let b = next(&mut state) % 10_500;
                let q = ValueRange::new(a.min(b), a.max(b));
                assert_eq!(
                    idx.overlapping(&q),
                    naive_overlap(&entries, &q),
                    "round {round}"
                );
            }
        }
    }

    #[test]
    fn results_are_independent_of_insertion_order() {
        let ranges = [
            (0u64, ValueRange::new(0, 100)),
            (1, ValueRange::new(50, 60)),
            (2, ValueRange::new(55, 300)),
            (3, ValueRange::point(58)),
            (4, ValueRange::new(200, 400)),
        ];
        let mut forward = IntervalIndex::new();
        for (id, r) in ranges {
            forward.insert(id, r);
        }
        let mut backward = IntervalIndex::new();
        for (id, r) in ranges.iter().rev() {
            backward.insert(*id, *r);
        }
        for v in [0u64, 55, 58, 120, 250, 500] {
            assert_eq!(forward.stab(v), backward.stab(v));
        }
        let q = ValueRange::new(40, 250);
        assert_eq!(forward.overlapping(&q), backward.overlapping(&q));
    }
}
