//! Differential property tests: the chunked branch-free kernels must match
//! the scalar reference implementations **bit-identically** on both
//! backends.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! each test draws randomized cases from a hand-rolled xorshift generator
//! (fully deterministic for the hard-coded seeds) and checks the production
//! scan path — `Column::full_scan_with`, `full_scan_excluding[_masks]`,
//! `probe_rows_with` — against a per-page scalar model built from the
//! `PageRef::*_scalar` reference loops. Cases cover all scan modes, wide
//! and narrow selectivities, partially filled final pages, empty/dense
//! exclusion sets and sparse/clustered probe patterns.

use asv_storage::{Column, ExclusionMasks, PageScanResult, ScanMode, ScanOutput};
use asv_util::{Parallelism, ValueRange};
use asv_vmem::{Backend, MmapBackend, SimBackend, VALUES_PER_PAGE};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Draws a value column of `pages` pages; the final page is left partially
/// filled when `partial_tail` asks for it.
fn random_values(state: &mut u64, pages: usize, max_value: u64, partial_tail: bool) -> Vec<u64> {
    let mut len = pages * VALUES_PER_PAGE;
    if partial_tail {
        len -= (xorshift(state) as usize % (VALUES_PER_PAGE - 1)) + 1;
    }
    (0..len)
        .map(|_| xorshift(state) % (max_value + 1))
        .collect()
}

/// Draws a random range; roughly one in four is a degenerate point range.
fn random_range(state: &mut u64, max_value: u64) -> ValueRange {
    if xorshift(state).is_multiple_of(4) {
        let v = xorshift(state) % (max_value + 1);
        return ValueRange::new(v, v);
    }
    let a = xorshift(state) % (max_value + 1);
    let b = xorshift(state) % (max_value + 1);
    ValueRange::new(a.min(b), a.max(b))
}

/// Draws an ascending row sample where each row is kept with probability
/// `1/keep_one_in`.
fn random_rows(state: &mut u64, num_rows: usize, keep_one_in: u64) -> Vec<u64> {
    (0..num_rows as u64)
        .filter(|_| xorshift(state).is_multiple_of(keep_one_in))
        .collect()
}

/// The scalar model of a full scan: per-page reference loops folded with
/// the same merge rule as [`ScanOutput`].
fn scalar_full_scan<B: Backend>(
    column: &Column<B>,
    range: &ValueRange,
    mode: ScanMode,
    excluded_rows: &[u64],
) -> ScanOutput {
    let mut out = ScanOutput::new(mode, false);
    for p in 0..column.num_pages() {
        let page = column.page_ref(p);
        let base = (p * VALUES_PER_PAGE) as u64;
        let end = base + VALUES_PER_PAGE as u64;
        let lo = excluded_rows.partition_point(|&r| r < base);
        let hi = excluded_rows.partition_point(|&r| r < end);
        let slots: Vec<usize> = excluded_rows[lo..hi]
            .iter()
            .map(|&r| (r - base) as usize)
            .collect();
        let res = if slots.is_empty() {
            match mode {
                ScanMode::CountOnly => page.scan_filter_count_scalar(range),
                ScanMode::Aggregate => page.scan_filter_scalar(range),
                ScanMode::CollectRows => {
                    let rows = out.rows.get_or_insert_with(Vec::new);
                    page.scan_filter_collect_scalar(range, rows)
                }
            }
        } else {
            let count_only = matches!(mode, ScanMode::CountOnly);
            let rows = matches!(mode, ScanMode::CollectRows)
                .then(|| out.rows.get_or_insert_with(Vec::new));
            page.scan_filter_excluding_scalar(range, &slots, count_only, rows)
        };
        merge_page(&mut out, &res);
    }
    out
}

/// The scalar model of a probe: per-page reference loop over candidate
/// runs.
fn scalar_probe<B: Backend>(
    column: &Column<B>,
    range: &ValueRange,
    mode: ScanMode,
    rows: &[u64],
) -> ScanOutput {
    let mut out = ScanOutput::new(mode, false);
    let mut start = 0usize;
    while start < rows.len() {
        let page_id = rows[start] / VALUES_PER_PAGE as u64;
        let mut end = start + 1;
        while end < rows.len() && rows[end] / VALUES_PER_PAGE as u64 == page_id {
            end += 1;
        }
        let page = column.page_ref(page_id as usize);
        let count_only = matches!(mode, ScanMode::CountOnly);
        let rows_out =
            matches!(mode, ScanMode::CollectRows).then(|| out.rows.get_or_insert_with(Vec::new));
        let res = page.probe_rows_scalar(range, &rows[start..end], count_only, rows_out);
        out.scanned_pages += 1;
        out.result.merge(&res);
        start = end;
    }
    out
}

fn merge_page(out: &mut ScanOutput, res: &PageScanResult) {
    out.scanned_pages += 1;
    if res.count == 0 {
        if let Some(b) = res.below_max {
            out.below = Some(out.below.map_or(b, |cur| cur.max(b)));
        }
        if let Some(a) = res.above_min {
            out.above = Some(out.above.map_or(a, |cur| cur.min(a)));
        }
    }
    out.result.merge(res);
}

fn assert_outputs_match(chunked: &ScanOutput, scalar: &ScanOutput, what: &str) {
    assert_eq!(chunked.result.count, scalar.result.count, "{what}: count");
    assert_eq!(chunked.result.sum, scalar.result.sum, "{what}: sum");
    assert_eq!(chunked.below, scalar.below, "{what}: below bound");
    assert_eq!(chunked.above, scalar.above, "{what}: above bound");
    assert_eq!(chunked.rows, scalar.rows, "{what}: collected rows");
    assert_eq!(
        chunked.scanned_pages, scalar.scanned_pages,
        "{what}: scanned pages"
    );
}

const MODES: [ScanMode; 3] = [
    ScanMode::CountOnly,
    ScanMode::Aggregate,
    ScanMode::CollectRows,
];

/// Selectivity shaping: narrow, medium and (almost) full-domain maxima so
/// the drawn ranges hit very different qualification rates.
const MAX_VALUES: [u64; 3] = [80, 5_000, u64::MAX / 2];

fn check_full_scans_match<B: Backend>(backend: &B, seed: u64) {
    let mut state = seed;
    for case in 0..12 {
        let max_value = MAX_VALUES[case % MAX_VALUES.len()];
        let pages = 1 + (xorshift(&mut state) as usize % 5);
        let values = random_values(&mut state, pages, max_value, case % 2 == 1);
        let column = Column::from_values(backend.clone(), &values).unwrap();
        for _ in 0..4 {
            let range = random_range(&mut state, max_value);
            for mode in MODES {
                let chunked = column.full_scan_with(&range, mode, Parallelism::Sequential);
                let scalar = scalar_full_scan(&column, &range, mode, &[]);
                assert_outputs_match(
                    &chunked,
                    &scalar,
                    &format!(
                        "case {case}, {mode:?}, range {range:?}, {} values",
                        values.len()
                    ),
                );
            }
        }
    }
}

fn check_excluding_scans_match<B: Backend>(backend: &B, seed: u64) {
    let mut state = seed;
    for case in 0..10 {
        let max_value = MAX_VALUES[case % MAX_VALUES.len()];
        let pages = 1 + (xorshift(&mut state) as usize % 4);
        let values = random_values(&mut state, pages, max_value, case % 2 == 0);
        let column = Column::from_values(backend.clone(), &values).unwrap();
        // Exclusion density from empty through ~half of all rows.
        let keep_one_in = [u64::MAX, 97, 11, 2][case % 4];
        let excluded = random_rows(&mut state, values.len(), keep_one_in);
        let masks = ExclusionMasks::from_rows(excluded.clone());
        for _ in 0..3 {
            let range = random_range(&mut state, max_value);
            for mode in MODES {
                let scalar = scalar_full_scan(&column, &range, mode, &excluded);
                let from_rows =
                    column.full_scan_excluding(&range, mode, Parallelism::Sequential, &excluded);
                let from_masks =
                    column.full_scan_excluding_masks(&range, mode, Parallelism::Sequential, &masks);
                let what = format!(
                    "case {case}, {mode:?}, {} excluded of {}",
                    excluded.len(),
                    values.len()
                );
                assert_outputs_match(&from_rows, &scalar, &format!("{what} (row list)"));
                assert_outputs_match(&from_masks, &scalar, &format!("{what} (prebuilt masks)"));
            }
        }
    }
}

fn check_probes_match<B: Backend>(backend: &B, seed: u64) {
    let mut state = seed;
    for case in 0..10 {
        let max_value = MAX_VALUES[case % MAX_VALUES.len()];
        let pages = 1 + (xorshift(&mut state) as usize % 5);
        let values = random_values(&mut state, pages, max_value, case % 2 == 1);
        let column = Column::from_values(backend.clone(), &values).unwrap();
        // Probe patterns from a handful of rows through near-every row.
        let keep_one_in = [151, 17, 3, 1][case % 4];
        let rows = random_rows(&mut state, values.len(), keep_one_in);
        for _ in 0..3 {
            let range = random_range(&mut state, max_value);
            for mode in MODES {
                let chunked = column.probe_rows_with(&range, mode, &rows, Parallelism::Sequential);
                let scalar = scalar_probe(&column, &range, mode, &rows);
                assert_outputs_match(
                    &chunked,
                    &scalar,
                    &format!("case {case}, {mode:?}, {} candidates", rows.len()),
                );
            }
        }
    }
}

#[test]
fn full_scans_match_scalar_reference_sim() {
    check_full_scans_match(&SimBackend::new(), 0x5EED_0001);
}

#[test]
fn full_scans_match_scalar_reference_mmap() {
    check_full_scans_match(&MmapBackend::new(), 0x5EED_0002);
}

#[test]
fn excluding_scans_match_scalar_reference_sim() {
    check_excluding_scans_match(&SimBackend::new(), 0x5EED_0003);
}

#[test]
fn excluding_scans_match_scalar_reference_mmap() {
    check_excluding_scans_match(&MmapBackend::new(), 0x5EED_0004);
}

#[test]
fn probes_match_scalar_reference_sim() {
    check_probes_match(&SimBackend::new(), 0x5EED_0005);
}

#[test]
fn probes_match_scalar_reference_mmap() {
    check_probes_match(&MmapBackend::new(), 0x5EED_0006);
}

#[test]
fn partial_final_page_is_scanned_exactly() {
    // A column whose last page holds a single value: the chunked tail path
    // (masked partial chunk) must see exactly that value, not the stale
    // slots behind it.
    let values: Vec<u64> = (0..VALUES_PER_PAGE as u64 + 1).collect();
    let column = Column::from_values(SimBackend::new(), &values).unwrap();
    let range = ValueRange::new(VALUES_PER_PAGE as u64, u64::MAX);
    let out = column.full_scan_with(&range, ScanMode::CollectRows, Parallelism::Sequential);
    assert_eq!(out.result.count, 1);
    assert_eq!(out.result.sum, VALUES_PER_PAGE as u128);
    assert_eq!(out.rows.as_deref(), Some(&[VALUES_PER_PAGE as u64][..]));
    let scalar = scalar_full_scan(&column, &range, ScanMode::CollectRows, &[]);
    assert_outputs_match(&out, &scalar, "partial tail");
}

#[test]
fn min_max_matches_scalar_fold_across_fill_levels() {
    let mut state = 0x5EED_0007u64;
    for len in [0usize, 1, 7, 8, 9, 63, 64, 65, VALUES_PER_PAGE] {
        let values: Vec<u64> = (0..len).map(|_| xorshift(&mut state)).collect();
        let column = Column::from_values(SimBackend::new(), &values).unwrap();
        if values.is_empty() {
            assert_eq!(column.num_pages(), 0);
            continue;
        }
        let expected = Some((*values.iter().min().unwrap(), *values.iter().max().unwrap()));
        assert_eq!(column.page_ref(0).min_max(), expected, "len {len}");
    }
}
