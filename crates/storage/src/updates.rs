//! Update records and batch pre-processing.
//!
//! The paper's batched view alignment (§2.4) receives a sequence of updates
//! `U = [(r0, old0, new0), ...]` and, as its first step, filters it "such
//! that only the very last update to each row remains reflected": several
//! updates to the same row collapse into one record carrying the *original*
//! old value and the *final* new value. The second step groups the filtered
//! updates by modified physical page. Both steps live here because they are
//! pure storage-layout concerns; the per-view decisions live in
//! `asv-core::updates`.

use std::collections::HashMap;

use asv_vmem::VALUES_PER_PAGE;

/// One update record `(row, old value, new value)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Update {
    /// The row (tuple id) written to.
    pub row: u64,
    /// The value that was overwritten.
    pub old_value: u64,
    /// The value that was written.
    pub new_value: u64,
}

impl Update {
    /// Creates an update record.
    pub fn new(row: u64, old_value: u64, new_value: u64) -> Self {
        Self {
            row,
            old_value,
            new_value,
        }
    }

    /// The physical page this update's row lives on.
    #[inline]
    pub fn page(&self) -> u64 {
        self.row / VALUES_PER_PAGE as u64
    }

    /// The value slot (0-based, header excluded) within the page.
    #[inline]
    pub fn slot(&self) -> usize {
        (self.row % VALUES_PER_PAGE as u64) as usize
    }
}

/// A batch of updates in application order.
pub type UpdateBatch = Vec<Update>;

/// Collapses repeated updates of the same row into a single record that
/// carries the first old value and the last new value (paper §2.4, step 1).
///
/// The relative order of the surviving records follows the order of each
/// row's *first* occurrence in the batch, which keeps the result
/// deterministic.
pub fn dedup_last_write_wins(batch: &[Update]) -> Vec<Update> {
    let mut first_seen: HashMap<u64, usize> = HashMap::with_capacity(batch.len());
    let mut result: Vec<Update> = Vec::with_capacity(batch.len());
    for u in batch {
        match first_seen.get(&u.row) {
            Some(&idx) => {
                // Keep the original old value, adopt the newest new value.
                result[idx].new_value = u.new_value;
            }
            None => {
                first_seen.insert(u.row, result.len());
                result.push(*u);
            }
        }
    }
    result
}

/// Groups updates by the physical page they modify (paper §2.4, step 2).
///
/// The per-page vectors preserve the input order.
pub fn group_by_page(batch: &[Update]) -> HashMap<u64, Vec<Update>> {
    let mut groups: HashMap<u64, Vec<Update>> = HashMap::new();
    for u in batch {
        groups.entry(u.page()).or_default().push(*u);
    }
    groups
}

/// Like [`group_by_page`], but returns the groups sorted by ascending page
/// id.
///
/// The alignment algorithm assigns view slots in iteration order, so
/// iterating a `HashMap` directly would place newly mapped pages in
/// nondeterministic slots across runs. Sorting pins the slot ↔ page layout
/// of every aligned view to a single deterministic outcome.
pub fn sorted_page_groups(batch: &[Update]) -> Vec<(u64, Vec<Update>)> {
    let mut groups: Vec<(u64, Vec<Update>)> = group_by_page(batch).into_iter().collect();
    groups.sort_unstable_by_key(|(page, _)| *page);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_page_and_slot_math() {
        let u = Update::new(0, 1, 2);
        assert_eq!(u.page(), 0);
        assert_eq!(u.slot(), 0);
        let u = Update::new(VALUES_PER_PAGE as u64, 1, 2);
        assert_eq!(u.page(), 1);
        assert_eq!(u.slot(), 0);
        let u = Update::new(VALUES_PER_PAGE as u64 * 3 + 5, 1, 2);
        assert_eq!(u.page(), 3);
        assert_eq!(u.slot(), 5);
    }

    #[test]
    fn dedup_keeps_first_old_and_last_new() {
        // The paper's example: u0, u1, u2 on the same row collapse into
        // (row, old_i, new_k).
        let batch = vec![
            Update::new(7, 100, 110),
            Update::new(7, 110, 120),
            Update::new(7, 120, 130),
        ];
        let out = dedup_last_write_wins(&batch);
        assert_eq!(out, vec![Update::new(7, 100, 130)]);
    }

    #[test]
    fn dedup_preserves_distinct_rows_and_order() {
        let batch = vec![
            Update::new(3, 1, 2),
            Update::new(9, 5, 6),
            Update::new(3, 2, 4),
            Update::new(1, 0, 9),
        ];
        let out = dedup_last_write_wins(&batch);
        assert_eq!(
            out,
            vec![
                Update::new(3, 1, 4),
                Update::new(9, 5, 6),
                Update::new(1, 0, 9),
            ]
        );
    }

    #[test]
    fn dedup_empty_batch() {
        assert!(dedup_last_write_wins(&[]).is_empty());
    }

    #[test]
    fn group_by_page_collects_per_page() {
        let vp = VALUES_PER_PAGE as u64;
        let batch = vec![
            Update::new(0, 1, 2),
            Update::new(vp + 1, 3, 4),
            Update::new(2, 5, 6),
            Update::new(vp * 2, 7, 8),
        ];
        let groups = group_by_page(&batch);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[&0].len(), 2);
        assert_eq!(groups[&1], vec![Update::new(vp + 1, 3, 4)]);
        assert_eq!(groups[&2], vec![Update::new(vp * 2, 7, 8)]);
    }

    #[test]
    fn group_by_page_empty() {
        assert!(group_by_page(&[]).is_empty());
    }

    #[test]
    fn sorted_page_groups_are_ordered_by_page() {
        let vp = VALUES_PER_PAGE as u64;
        let batch = vec![
            Update::new(vp * 9, 1, 2),
            Update::new(0, 3, 4),
            Update::new(vp * 4 + 2, 5, 6),
            Update::new(1, 7, 8),
        ];
        let groups = sorted_page_groups(&batch);
        let pages: Vec<u64> = groups.iter().map(|(p, _)| *p).collect();
        assert_eq!(pages, vec![0, 4, 9]);
        assert_eq!(groups[0].1.len(), 2);
        assert!(sorted_page_groups(&[]).is_empty());
    }
}
