//! Physical columns: the materialized database content.
//!
//! A [`Column`] owns a physical store (one main-memory file on the mmap
//! backend) holding its values in page layout, plus the *full virtual view*
//! `v[-∞,∞]` that maps the entire physical column (paper §2, component (a)
//! and the default member of component (b)).

use asv_util::{Parallelism, ThreadPool, ValueRange};
use asv_vmem::{Backend, MapRequest, PhysicalStore, VALUES_PER_PAGE};

use crate::kernel::{scan_view_with, ScanKernel, ScanMode, ScanOutput};
use crate::page::{PageRef, PageScanResult, PAGE_ID_SLOT};
use crate::updates::Update;

/// A single physical column of 8-byte unsigned values.
///
/// The column is generic over the rewiring [`Backend`]: on
/// [`asv_vmem::MmapBackend`] the values live in a main-memory file and the
/// full view is a real virtual-memory mapping; on [`asv_vmem::SimBackend`]
/// both are simulated in ordinary heap memory.
pub struct Column<B: Backend> {
    backend: B,
    store: B::Store,
    full_view: B::View,
    num_rows: usize,
}

impl<B: Backend> Column<B> {
    /// Materializes a column from a slice of values.
    ///
    /// Values are laid out in page order; every page gets its pageID
    /// embedded in slot 0. The full view is created immediately.
    pub fn from_values(backend: B, values: &[u64]) -> asv_vmem::Result<Self> {
        let num_pages = values.len().div_ceil(VALUES_PER_PAGE);
        let mut store = backend.create_store(num_pages)?;
        for page_idx in 0..num_pages {
            let start = page_idx * VALUES_PER_PAGE;
            let end = (start + VALUES_PER_PAGE).min(values.len());
            let page = store.page_mut(page_idx);
            page[PAGE_ID_SLOT] = page_idx as u64;
            page[1..1 + (end - start)].copy_from_slice(&values[start..end]);
        }
        let full_view = backend.create_full_view(&store)?;
        Ok(Self {
            backend,
            store,
            full_view,
            num_rows: values.len(),
        })
    }

    /// Creates an empty column (zero rows, zero pages).
    pub fn empty(backend: B) -> asv_vmem::Result<Self> {
        Self::from_values(backend, &[])
    }

    /// Materializes a column whose store spans `capacity_pages` physical
    /// pages even when `values` fills fewer of them — a *sparse* column:
    /// pages past the data carry their pageID but zero valid values
    /// ([`Column::valid_values_on_page`] reports `0` for them), so scans,
    /// views and zone statistics must count live rows rather than
    /// page-capacity bounds.
    ///
    /// # Panics
    /// Panics if `capacity_pages` cannot hold `values`.
    pub fn from_values_with_capacity(
        backend: B,
        values: &[u64],
        capacity_pages: usize,
    ) -> asv_vmem::Result<Self> {
        let needed = values.len().div_ceil(VALUES_PER_PAGE);
        assert!(
            capacity_pages >= needed,
            "capacity of {capacity_pages} pages cannot hold {} values",
            values.len()
        );
        let mut store = backend.create_store(capacity_pages)?;
        for page_idx in 0..capacity_pages {
            let start = page_idx * VALUES_PER_PAGE;
            let end = (start + VALUES_PER_PAGE).min(values.len());
            let page = store.page_mut(page_idx);
            page[PAGE_ID_SLOT] = page_idx as u64;
            if start < values.len() {
                page[1..1 + (end - start)].copy_from_slice(&values[start..end]);
            }
        }
        let full_view = backend.create_full_view(&store)?;
        Ok(Self {
            backend,
            store,
            full_view,
            num_rows: values.len(),
        })
    }

    /// The rewiring backend of this column.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The physical store holding the column's pages.
    pub fn store(&self) -> &B::Store {
        &self.store
    }

    /// Mutable access to the physical store (the write path).
    pub fn store_mut(&mut self) -> &mut B::Store {
        &mut self.store
    }

    /// The full virtual view `v[-∞,∞]` over the column.
    pub fn full_view(&self) -> &B::View {
        &self.full_view
    }

    /// Number of rows (values) stored.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of physical pages backing the column.
    pub fn num_pages(&self) -> usize {
        self.store.num_pages()
    }

    /// Returns `true` if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Maps a row id to its `(physical page, value slot)` location.
    #[inline]
    pub fn row_location(&self, row: usize) -> (usize, usize) {
        (row / VALUES_PER_PAGE, row % VALUES_PER_PAGE)
    }

    /// Number of valid value slots on physical page `page`.
    #[inline]
    pub fn valid_values_on_page(&self, page: usize) -> usize {
        debug_assert!(page < self.num_pages());
        let full_pages = self.num_rows / VALUES_PER_PAGE;
        if page < full_pages {
            VALUES_PER_PAGE
        } else if page == full_pages {
            self.num_rows % VALUES_PER_PAGE
        } else {
            0
        }
    }

    /// Reads the value of `row`.
    ///
    /// # Panics
    /// Panics if `row >= self.num_rows()`.
    pub fn value(&self, row: usize) -> u64 {
        assert!(row < self.num_rows, "row {row} out of bounds");
        let (page, slot) = self.row_location(row);
        self.store.page(page)[1 + slot]
    }

    /// Writes `new_value` into `row` through the physical store, returning
    /// the update record (row, old value, new value) — the shape the
    /// paper's batched view-alignment algorithm consumes (§2.4).
    ///
    /// # Panics
    /// Panics if `row >= self.num_rows()`.
    pub fn write(&mut self, row: usize, new_value: u64) -> Update {
        assert!(row < self.num_rows, "row {row} out of bounds");
        let (page, slot) = self.row_location(row);
        let page_data = self.store.page_mut(page);
        let old_value = page_data[1 + slot];
        page_data[1 + slot] = new_value;
        Update {
            row: row as u64,
            old_value,
            new_value,
        }
    }

    /// Applies a batch of `(row, new value)` writes, returning the full
    /// update records.
    pub fn write_batch(&mut self, writes: &[(usize, u64)]) -> Vec<Update> {
        writes.iter().map(|&(row, v)| self.write(row, v)).collect()
    }

    /// Wraps a physical page in a [`PageRef`] with the correct valid count.
    pub fn page_ref(&self, page: usize) -> PageRef<'_> {
        PageRef::new(self.store.page(page), self.valid_values_on_page(page))
    }

    /// Wraps a raw page slice (e.g. obtained from a view) in a [`PageRef`],
    /// deriving the valid count from the embedded pageID.
    pub fn wrap_view_page<'a>(&self, raw: &'a [u64]) -> PageRef<'a> {
        let page_id = raw[PAGE_ID_SLOT] as usize;
        let valid = if page_id < self.num_pages() {
            self.valid_values_on_page(page_id)
        } else {
            0
        };
        PageRef::new(raw, valid)
    }

    /// Scans the *full view* and filters against `range` — the paper's
    /// full-scan baseline for query answering (§3.2).
    pub fn full_scan(&self, range: &ValueRange) -> PageScanResult {
        self.full_scan_with(range, ScanMode::Aggregate, Parallelism::Sequential)
            .result
    }

    /// Full scan that also collects the qualifying row ids.
    pub fn full_scan_collect(&self, range: &ValueRange) -> (PageScanResult, Vec<u64>) {
        let out = self.full_scan_with(range, ScanMode::CollectRows, Parallelism::Sequential);
        (out.result, out.rows.unwrap_or_default())
    }

    /// Full scan through the unified page-range [`ScanKernel`], with an
    /// explicit accumulation mode and degree of parallelism.
    ///
    /// With more than one worker, the full view's slot range is split into
    /// balanced shards, scanned fork-join style on scoped threads, and the
    /// partial [`ScanOutput`]s are merged in slot order — so the output is
    /// identical to the sequential scan for every mode.
    pub fn full_scan_with(
        &self,
        range: &ValueRange,
        mode: ScanMode,
        parallelism: Parallelism,
    ) -> ScanOutput {
        let kernel = ScanKernel::new(*range, mode);
        scan_view_with(
            &kernel,
            &self.full_view,
            |raw| self.wrap_view_page(raw),
            parallelism,
        )
    }

    /// Like [`Self::full_scan_with`], but masking `excluded_rows` (ascending
    /// global row ids) from the scan: their stored values contribute nothing
    /// to the result. This is the storage half of the overlay-aware read
    /// path — the adaptive layer excludes the rows of queued (not yet
    /// aligned) writes and substitutes the queued values itself, so answers
    /// reflect every acknowledged write exactly once.
    pub fn full_scan_excluding(
        &self,
        range: &ValueRange,
        mode: ScanMode,
        parallelism: Parallelism,
        excluded_rows: &[u64],
    ) -> ScanOutput {
        let kernel = ScanKernel::new(*range, mode).with_excluded_rows(excluded_rows);
        scan_view_with(
            &kernel,
            &self.full_view,
            |raw| self.wrap_view_page(raw),
            parallelism,
        )
    }

    /// Like [`Self::full_scan_excluding`], but reusing per-page exclusion
    /// bitmasks the caller precomputed once per overlay epoch
    /// ([`crate::ExclusionMasks`]) instead of re-deriving each visited
    /// page's excluded slots.
    pub fn full_scan_excluding_masks(
        &self,
        range: &ValueRange,
        mode: ScanMode,
        parallelism: Parallelism,
        masks: &crate::ExclusionMasks,
    ) -> ScanOutput {
        let kernel = ScanKernel::new(*range, mode).with_exclusion_masks(masks);
        scan_view_with(
            &kernel,
            &self.full_view,
            |raw| self.wrap_view_page(raw),
            parallelism,
        )
    }

    /// Probes `rows` (ascending global row ids) against `range`, touching
    /// only the physical pages that contain candidates — the semi-join
    /// residual step of planned conjunctive execution (see
    /// [`crate::kernel::probe_rows`]).
    pub fn probe_rows_with(
        &self,
        range: &ValueRange,
        mode: ScanMode,
        rows: &[u64],
        parallelism: Parallelism,
    ) -> ScanOutput {
        let kernel = ScanKernel::new(*range, mode);
        crate::kernel::probe_rows(&kernel, self, rows, &ThreadPool::new(parallelism))
    }

    /// Copies all values out of the column (test / debugging helper).
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.num_rows);
        for page in 0..self.num_pages() {
            let r = self.page_ref(page);
            out.extend_from_slice(r.values());
        }
        out
    }

    /// Reserves a new (empty) partial-view buffer over this column,
    /// over-allocated to the size of the whole column as the paper
    /// prescribes (§2).
    pub fn reserve_partial_view(&self) -> asv_vmem::Result<B::View> {
        self.backend.reserve_view(&self.store, self.num_pages())
    }

    /// Maps a run of consecutive physical pages into a partial-view buffer.
    pub fn map_run_into(
        &self,
        view: &mut B::View,
        slot: usize,
        phys_page: usize,
        len: usize,
    ) -> asv_vmem::Result<()> {
        self.backend.map_run(
            &self.store,
            view,
            MapRequest {
                slot,
                phys_page,
                len,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::{MmapBackend, SimBackend, ViewBuffer};

    fn sample_values(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 7 % 1000).collect()
    }

    fn check_roundtrip<B: Backend>(backend: B) {
        let values = sample_values(3 * VALUES_PER_PAGE + 17);
        let col = Column::from_values(backend, &values).unwrap();
        assert_eq!(col.num_rows(), values.len());
        assert_eq!(col.num_pages(), 4);
        assert!(!col.is_empty());
        assert_eq!(col.to_vec(), values);
        for (i, &v) in values.iter().enumerate().step_by(97) {
            assert_eq!(col.value(i), v);
        }
        // Page ids are embedded in physical order.
        for p in 0..col.num_pages() {
            assert_eq!(col.page_ref(p).page_id(), p as u64);
        }
        // The last page is partially valid.
        assert_eq!(col.valid_values_on_page(3), 17);
        assert_eq!(col.valid_values_on_page(0), VALUES_PER_PAGE);
    }

    #[test]
    fn roundtrip_on_sim_backend() {
        check_roundtrip(SimBackend::new());
    }

    #[test]
    fn roundtrip_on_mmap_backend() {
        check_roundtrip(MmapBackend::new());
    }

    #[test]
    fn empty_column() {
        let col = Column::empty(SimBackend::new()).unwrap();
        assert!(col.is_empty());
        assert_eq!(col.num_pages(), 0);
        let res = col.full_scan(&ValueRange::full());
        assert_eq!(res.count, 0);
    }

    #[test]
    fn full_scan_matches_reference_filter() {
        let values = sample_values(2 * VALUES_PER_PAGE + 5);
        let col = Column::from_values(SimBackend::new(), &values).unwrap();
        let range = ValueRange::new(100, 500);
        let res = col.full_scan(&range);
        let expected: Vec<u64> = values
            .iter()
            .copied()
            .filter(|v| range.contains(*v))
            .collect();
        assert_eq!(res.count, expected.len() as u64);
        assert_eq!(res.sum, expected.iter().map(|&v| v as u128).sum::<u128>());
    }

    #[test]
    fn full_scan_collect_returns_row_ids() {
        let values = vec![5u64, 50, 500, 5000, 50];
        let col = Column::from_values(SimBackend::new(), &values).unwrap();
        let (res, rows) = col.full_scan_collect(&ValueRange::new(10, 100));
        assert_eq!(res.count, 2);
        assert_eq!(rows, vec![1, 4]);
    }

    #[test]
    fn write_returns_update_record_and_mutates() {
        let values = sample_values(VALUES_PER_PAGE + 3);
        let mut col = Column::from_values(SimBackend::new(), &values).unwrap();
        let upd = col.write(VALUES_PER_PAGE + 1, 99_999);
        assert_eq!(upd.row, (VALUES_PER_PAGE + 1) as u64);
        assert_eq!(upd.old_value, values[VALUES_PER_PAGE + 1]);
        assert_eq!(upd.new_value, 99_999);
        assert_eq!(col.value(VALUES_PER_PAGE + 1), 99_999);
        // Visible through the full view as well (single physical copy).
        let res = col.full_scan(&ValueRange::new(99_999, 99_999));
        assert_eq!(res.count, 1);
    }

    #[test]
    fn write_batch_applies_in_order() {
        let mut col = Column::from_values(SimBackend::new(), &[1, 2, 3]).unwrap();
        let updates = col.write_batch(&[(0, 10), (0, 20), (2, 30)]);
        assert_eq!(updates.len(), 3);
        assert_eq!(updates[1].old_value, 10);
        assert_eq!(col.value(0), 20);
        assert_eq!(col.value(2), 30);
    }

    #[test]
    fn row_location_math() {
        let col =
            Column::from_values(SimBackend::new(), &sample_values(VALUES_PER_PAGE * 2)).unwrap();
        assert_eq!(col.row_location(0), (0, 0));
        assert_eq!(
            col.row_location(VALUES_PER_PAGE - 1),
            (0, VALUES_PER_PAGE - 1)
        );
        assert_eq!(col.row_location(VALUES_PER_PAGE), (1, 0));
    }

    #[test]
    fn reserve_and_map_partial_view() {
        let values = sample_values(4 * VALUES_PER_PAGE);
        let col = Column::from_values(SimBackend::new(), &values).unwrap();
        let mut view = col.reserve_partial_view().unwrap();
        assert_eq!(view.capacity_pages(), 4);
        col.map_run_into(&mut view, 0, 2, 2).unwrap();
        assert_eq!(view.mapped_pages(), 2);
        let first = col.wrap_view_page(view.page(0));
        assert_eq!(first.page_id(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn value_out_of_bounds_panics() {
        let col = Column::from_values(SimBackend::new(), &[1, 2, 3]).unwrap();
        col.value(3);
    }

    #[test]
    fn sparse_capacity_pages_hold_no_valid_values() {
        let values = sample_values(VALUES_PER_PAGE + 3);
        let col = Column::from_values_with_capacity(SimBackend::new(), &values, 8).unwrap();
        assert_eq!(col.num_rows(), values.len());
        assert_eq!(col.num_pages(), 8, "the store spans the full capacity");
        assert_eq!(col.valid_values_on_page(0), VALUES_PER_PAGE);
        assert_eq!(col.valid_values_on_page(1), 3, "partial tail page");
        for page in 2..8 {
            assert_eq!(col.valid_values_on_page(page), 0, "empty capacity page");
        }
        assert_eq!(col.to_vec(), values, "live rows round-trip unchanged");
        // Empty pages still carry their embedded pageID.
        assert_eq!(col.page_ref(5).page_id(), 5);
    }

    #[test]
    fn sparse_scan_counts_only_live_rows() {
        let values = sample_values(VALUES_PER_PAGE / 2);
        let col = Column::from_values_with_capacity(SimBackend::new(), &values, 16).unwrap();
        let range = ValueRange::full();
        let out = col.full_scan(&range);
        assert_eq!(
            out.count as usize,
            values.len(),
            "empty pages contribute nothing, even for a full-range scan"
        );
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn sparse_capacity_below_data_panics() {
        let values = sample_values(VALUES_PER_PAGE * 3);
        let _ = Column::from_values_with_capacity(SimBackend::new(), &values, 2);
    }
}
