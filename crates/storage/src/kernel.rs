//! The unified page-range scan kernel.
//!
//! Every query path of the reproduction — `Column::full_scan`, the adaptive
//! multi-view scan in `asv-core`, the virtual-view baseline in
//! `asv-baselines` — boils down to the same loop: walk the mapped pages of a
//! view buffer, filter each page against a value range, and fold the
//! per-page results into an accumulated answer. [`ScanKernel`] is that loop,
//! extracted once so that sequential and parallel execution share a single
//! code path:
//!
//! * [`ScanKernel::scan_page`] — the per-page step (filter + merge),
//!   parameterized by [`ScanMode`] (count-only fast path, count+sum
//!   aggregation, or row-id collection);
//! * [`ScanKernel::scan_view_slots`] — evaluates an arbitrary slot range of
//!   any view buffer, the shard primitive of parallel execution;
//! * [`scan_view`] — shards a whole view across a [`ThreadPool`] and merges
//!   the partial [`ScanOutput`]s (slot-sharded: correct whenever the view
//!   maps every physical page at most once, which holds for the full view
//!   and for all partial views the creation path produces).
//!
//! Multi-view scans with *shared* physical pages additionally need
//! cross-view deduplication; `asv-core::exec` builds that on top of
//! [`ScanKernel::scan_view_slots`] with page-id-sharding.

use std::ops::Range;

use asv_util::{split_ranges, Parallelism, ThreadPool, ValueRange};
use asv_vmem::ViewBuffer;

use crate::page::{PageRef, PageScanResult};

/// What a scan accumulates per qualifying value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Count qualifying values only (`sum` stays 0) — the fast path for
    /// count-only queries.
    CountOnly,
    /// Count and checksum-sum qualifying values (the default).
    #[default]
    Aggregate,
    /// Count, sum, and collect the global row ids of qualifying values.
    CollectRows,
}

/// The mergeable result of scanning a set of pages against a query range.
///
/// `result` folds the per-page [`PageScanResult`]s of *all* scanned pages;
/// `below` / `above` track the widening bounds the adaptive layer derives
/// from *non-qualifying* pages only (paper §2.2): if a page contributes no
/// qualifying value, everything strictly between its largest below-range
/// value and its smallest above-range value provably lives on other pages.
#[derive(Clone, Debug, Default)]
pub struct ScanOutput {
    /// Aggregate over all scanned pages (count, checksum, per-page bounds).
    pub result: PageScanResult,
    /// Global row ids of qualifying values ([`ScanMode::CollectRows`] only).
    pub rows: Option<Vec<u64>>,
    /// Number of distinct pages scanned.
    pub scanned_pages: usize,
    /// Largest value `< range.low()` observed on *non-qualifying* pages.
    pub below: Option<u64>,
    /// Smallest value `> range.high()` observed on *non-qualifying* pages.
    pub above: Option<u64>,
    /// Physical page ids (in scan order) of pages with at least one
    /// qualifying value, if tracking was requested — the input of adaptive
    /// candidate-view creation.
    pub qualifying_pages: Option<Vec<u64>>,
}

impl ScanOutput {
    /// An empty output configured for `mode`, optionally tracking the
    /// qualifying page ids.
    pub fn new(mode: ScanMode, track_qualifying_pages: bool) -> Self {
        Self {
            rows: matches!(mode, ScanMode::CollectRows).then(Vec::new),
            qualifying_pages: track_qualifying_pages.then(Vec::new),
            ..Self::default()
        }
    }

    /// Folds another (shard's) output into this one. All fields merge
    /// order-independently except `rows` / `qualifying_pages`, which append
    /// in call order — parallel callers merge shards in ascending page-range
    /// order to keep the output deterministic.
    pub fn merge(&mut self, other: ScanOutput) {
        self.result.merge(&other.result);
        self.scanned_pages += other.scanned_pages;
        self.below = match (self.below, other.below) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.above = match (self.above, other.above) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        match (&mut self.rows, other.rows) {
            (Some(mine), Some(theirs)) => mine.extend(theirs),
            (mine @ None, theirs @ Some(_)) => *mine = theirs,
            _ => {}
        }
        match (&mut self.qualifying_pages, other.qualifying_pages) {
            (Some(mine), Some(theirs)) => mine.extend(theirs),
            (mine @ None, theirs @ Some(_)) => *mine = theirs,
            _ => {}
        }
    }
}

/// The page-range scan kernel: a query range plus an accumulation mode.
#[derive(Clone, Copy, Debug)]
pub struct ScanKernel {
    range: ValueRange,
    mode: ScanMode,
}

impl ScanKernel {
    /// Creates a kernel filtering against `range` in the given `mode`.
    pub fn new(range: ValueRange, mode: ScanMode) -> Self {
        Self { range, mode }
    }

    /// The query range this kernel filters against.
    pub fn range(&self) -> &ValueRange {
        &self.range
    }

    /// The accumulation mode.
    pub fn mode(&self) -> ScanMode {
        self.mode
    }

    /// Scans one page into `out` and returns the page's own result (so
    /// callers can react to per-page outcomes, e.g. feed qualifying pages to
    /// a view-creation sink in scan order).
    pub fn scan_page(&self, page: PageRef<'_>, out: &mut ScanOutput) -> PageScanResult {
        let res = match self.mode {
            ScanMode::CountOnly => page.scan_filter_count(&self.range),
            ScanMode::Aggregate => page.scan_filter(&self.range),
            ScanMode::CollectRows => {
                let rows = out.rows.get_or_insert_with(Vec::new);
                page.scan_filter_collect(&self.range, rows)
            }
        };
        out.scanned_pages += 1;
        if res.count > 0 {
            if let Some(pages) = out.qualifying_pages.as_mut() {
                pages.push(page.page_id());
            }
        } else {
            if let Some(b) = res.below_max {
                out.below = Some(out.below.map_or(b, |cur| cur.max(b)));
            }
            if let Some(a) = res.above_min {
                out.above = Some(out.above.map_or(a, |cur| cur.min(a)));
            }
        }
        out.result.merge(&res);
        res
    }

    /// Evaluates the view slots `slots` of `view`, wrapping each raw page
    /// via `wrap` (which supplies the valid-value count; see
    /// [`crate::Column::wrap_view_page`]).
    ///
    /// This is the shard primitive: a parallel scan hands each worker a
    /// disjoint slot range of the same view.
    pub fn scan_view_slots<'a, V, W>(
        &self,
        view: &'a V,
        slots: Range<usize>,
        wrap: W,
        out: &mut ScanOutput,
    ) where
        V: ViewBuffer,
        W: Fn(&'a [u64]) -> PageRef<'a>,
    {
        debug_assert!(slots.end <= view.mapped_pages());
        for slot in slots {
            self.scan_page(wrap(view.page(slot)), out);
        }
    }
}

/// Scans all mapped pages of `view` with `kernel`, sharding the slot range
/// across `pool` and merging the partial outputs in slot order.
///
/// Slot-sharding assumes the view maps every physical page at most once
/// (true for the full view and for every view the creation path builds);
/// for multi-view scans with shared pages use the page-id-sharded scan in
/// `asv-core::exec`.
pub fn scan_view<'a, V, W>(
    kernel: &ScanKernel,
    view: &'a V,
    wrap: W,
    pool: &ThreadPool,
) -> ScanOutput
where
    V: ViewBuffer,
    W: Fn(&'a [u64]) -> PageRef<'a> + Sync,
{
    let mapped = view.mapped_pages();
    let track = false;
    if pool.workers() <= 1 || mapped < 2 {
        let mut out = ScanOutput::new(kernel.mode(), track);
        kernel.scan_view_slots(view, 0..mapped, &wrap, &mut out);
        return out;
    }
    let shards = split_ranges(mapped, pool.workers());
    let wrap = &wrap;
    let partials = pool.scoped_map(
        shards
            .into_iter()
            .map(|slots| {
                move || {
                    let mut out = ScanOutput::new(kernel.mode(), track);
                    kernel.scan_view_slots(view, slots, wrap, &mut out);
                    out
                }
            })
            .collect(),
    );
    let mut merged = ScanOutput::new(kernel.mode(), track);
    for partial in partials {
        merged.merge(partial);
    }
    merged
}

/// Convenience wrapper: [`scan_view`] driven by a [`Parallelism`] setting.
pub fn scan_view_with<'a, V, W>(
    kernel: &ScanKernel,
    view: &'a V,
    wrap: W,
    parallelism: Parallelism,
) -> ScanOutput
where
    V: ViewBuffer,
    W: Fn(&'a [u64]) -> PageRef<'a> + Sync,
{
    scan_view(kernel, view, wrap, &ThreadPool::new(parallelism))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use asv_vmem::{Backend, MmapBackend, SimBackend, VALUES_PER_PAGE};

    fn clustered_column<B: Backend>(backend: B, pages: usize) -> Column<B> {
        let values: Vec<u64> = (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect();
        Column::from_values(backend, &values).unwrap()
    }

    fn check_parallel_matches_sequential<B: Backend>(backend: B) {
        let column = clustered_column(backend, 37);
        let range = ValueRange::new(4_000, 21_300);
        for mode in [
            ScanMode::CountOnly,
            ScanMode::Aggregate,
            ScanMode::CollectRows,
        ] {
            let kernel = ScanKernel::new(range, mode);
            let seq = scan_view(
                &kernel,
                column.full_view(),
                |raw| column.wrap_view_page(raw),
                &ThreadPool::with_workers(1),
            );
            for workers in [2usize, 3, 8] {
                let par = scan_view(
                    &kernel,
                    column.full_view(),
                    |raw| column.wrap_view_page(raw),
                    &ThreadPool::with_workers(workers),
                );
                assert_eq!(par.result.count, seq.result.count, "{mode:?}/{workers}");
                assert_eq!(par.result.sum, seq.result.sum, "{mode:?}/{workers}");
                assert_eq!(par.scanned_pages, seq.scanned_pages, "{mode:?}/{workers}");
                assert_eq!(par.below, seq.below, "{mode:?}/{workers}");
                assert_eq!(par.above, seq.above, "{mode:?}/{workers}");
                // Shards merge in slot order, so even row ids line up.
                assert_eq!(par.rows, seq.rows, "{mode:?}/{workers}");
            }
        }
    }

    #[test]
    fn parallel_scan_matches_sequential_sim() {
        check_parallel_matches_sequential(SimBackend::new());
    }

    #[test]
    fn parallel_scan_matches_sequential_mmap() {
        check_parallel_matches_sequential(MmapBackend::new());
    }

    #[test]
    fn count_only_mode_skips_sum() {
        let column = clustered_column(SimBackend::new(), 8);
        let kernel = ScanKernel::new(ValueRange::new(1_000, 3_400), ScanMode::CountOnly);
        let out = scan_view_with(
            &kernel,
            column.full_view(),
            |raw| column.wrap_view_page(raw),
            Parallelism::Sequential,
        );
        assert!(out.result.count > 0);
        assert_eq!(out.result.sum, 0);
        assert!(out.rows.is_none());
    }

    #[test]
    fn qualifying_pages_and_widening_bounds_are_tracked() {
        let column = clustered_column(SimBackend::new(), 16);
        // Pages 5..=9 qualify for [5000, 9400].
        let kernel = ScanKernel::new(ValueRange::new(5_000, 9_400), ScanMode::Aggregate);
        let mut out = ScanOutput::new(kernel.mode(), true);
        kernel.scan_view_slots(
            column.full_view(),
            0..column.num_pages(),
            |raw| column.wrap_view_page(raw),
            &mut out,
        );
        assert_eq!(out.qualifying_pages.as_deref(), Some(&[5, 6, 7, 8, 9][..]));
        // Non-qualifying neighbours: page 4 tops out at 4510, page 10
        // starts at 10000.
        assert_eq!(out.below, Some(4_000 + VALUES_PER_PAGE as u64 - 1));
        assert_eq!(out.above, Some(10_000));
        assert_eq!(out.scanned_pages, 16);
    }

    #[test]
    fn merge_combines_all_fields() {
        let mut a = ScanOutput {
            result: PageScanResult {
                count: 2,
                sum: 10,
                below_max: None,
                above_min: None,
            },
            rows: Some(vec![1, 2]),
            scanned_pages: 3,
            below: Some(5),
            above: Some(100),
            qualifying_pages: Some(vec![0]),
        };
        let b = ScanOutput {
            result: PageScanResult {
                count: 1,
                sum: 7,
                below_max: Some(3),
                above_min: None,
            },
            rows: Some(vec![9]),
            scanned_pages: 2,
            below: Some(8),
            above: Some(90),
            qualifying_pages: Some(vec![4]),
        };
        a.merge(b);
        assert_eq!(a.result.count, 3);
        assert_eq!(a.result.sum, 17);
        assert_eq!(a.scanned_pages, 5);
        assert_eq!(a.below, Some(8));
        assert_eq!(a.above, Some(90));
        assert_eq!(a.rows.as_deref(), Some(&[1, 2, 9][..]));
        assert_eq!(a.qualifying_pages.as_deref(), Some(&[0, 4][..]));
    }
}
