//! The unified page-range scan kernel.
//!
//! Every query path of the reproduction — `Column::full_scan`, the adaptive
//! multi-view scan in `asv-core`, the virtual-view baseline in
//! `asv-baselines` — boils down to the same loop: walk the mapped pages of a
//! view buffer, filter each page against a value range, and fold the
//! per-page results into an accumulated answer. [`ScanKernel`] is that loop,
//! extracted once so that sequential and parallel execution share a single
//! code path:
//!
//! * [`ScanKernel::scan_page`] — the per-page step (filter + merge),
//!   parameterized by [`ScanMode`] (count-only fast path, count+sum
//!   aggregation, or row-id collection);
//! * [`ScanKernel::scan_view_slots`] — evaluates an arbitrary slot range of
//!   any view buffer, the shard primitive of parallel execution;
//! * [`scan_view`] — shards a whole view across a [`ThreadPool`] and merges
//!   the partial [`ScanOutput`]s (slot-sharded: correct whenever the view
//!   maps every physical page at most once, which holds for the full view
//!   and for all partial views the creation path produces).
//!
//! Multi-view scans with *shared* physical pages additionally need
//! cross-view deduplication; `asv-core::exec` builds that on top of
//! [`ScanKernel::scan_view_slots`] with page-id-sharding.
//!
//! Besides full page-range scans the kernel offers a **probe mode**
//! ([`ScanKernel::probe_page_rows`] / [`probe_rows`]): given a set of
//! candidate row ids it touches only the physical pages containing them and
//! re-checks the filter per candidate slot instead of per page value. This
//! is the semi-join building block of planned conjunctive execution: after a
//! driving predicate has produced a (small) survivor set, the residual
//! predicates are evaluated against exactly those rows.

use std::ops::Range;

use asv_util::{split_ranges, Parallelism, ThreadPool, ValueRange};
use asv_vmem::{Backend, ViewBuffer, VALUES_PER_PAGE};

use crate::column::Column;
use crate::page::{PageRef, PageScanResult};
use crate::simd::{self, ExclusionMasks, PageExclusionMask};

/// What a scan accumulates per qualifying value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Count qualifying values only (`sum` stays 0) — the fast path for
    /// count-only queries.
    CountOnly,
    /// Count and checksum-sum qualifying values (the default).
    #[default]
    Aggregate,
    /// Count, sum, and collect the global row ids of qualifying values.
    CollectRows,
}

/// The mergeable result of scanning a set of pages against a query range.
///
/// `result` folds the per-page [`PageScanResult`]s of *all* scanned pages;
/// `below` / `above` track the widening bounds the adaptive layer derives
/// from *non-qualifying* pages only (paper §2.2): if a page contributes no
/// qualifying value, everything strictly between its largest below-range
/// value and its smallest above-range value provably lives on other pages.
#[derive(Clone, Debug, Default)]
pub struct ScanOutput {
    /// Aggregate over all scanned pages (count, checksum, per-page bounds).
    pub result: PageScanResult,
    /// Global row ids of qualifying values ([`ScanMode::CollectRows`] only).
    pub rows: Option<Vec<u64>>,
    /// Number of distinct pages scanned.
    pub scanned_pages: usize,
    /// Largest value `< range.low()` observed on *non-qualifying* pages.
    pub below: Option<u64>,
    /// Smallest value `> range.high()` observed on *non-qualifying* pages.
    pub above: Option<u64>,
    /// Physical page ids (in scan order) of pages with at least one
    /// qualifying value, if tracking was requested — the input of adaptive
    /// candidate-view creation.
    pub qualifying_pages: Option<Vec<u64>>,
}

impl ScanOutput {
    /// An empty output configured for `mode`, optionally tracking the
    /// qualifying page ids.
    pub fn new(mode: ScanMode, track_qualifying_pages: bool) -> Self {
        Self {
            rows: matches!(mode, ScanMode::CollectRows).then(Vec::new),
            qualifying_pages: track_qualifying_pages.then(Vec::new),
            ..Self::default()
        }
    }

    /// Folds another (shard's) output into this one. All fields merge
    /// order-independently except `rows` / `qualifying_pages`, which append
    /// in call order — parallel callers merge shards in ascending page-range
    /// order to keep the output deterministic.
    pub fn merge(&mut self, other: ScanOutput) {
        self.result.merge(&other.result);
        self.scanned_pages += other.scanned_pages;
        self.below = match (self.below, other.below) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.above = match (self.above, other.above) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        match (&mut self.rows, other.rows) {
            (Some(mine), Some(theirs)) => mine.extend(theirs),
            (mine @ None, theirs @ Some(_)) => *mine = theirs,
            _ => {}
        }
        match (&mut self.qualifying_pages, other.qualifying_pages) {
            (Some(mine), Some(theirs)) => mine.extend(theirs),
            (mine @ None, theirs @ Some(_)) => *mine = theirs,
            _ => {}
        }
    }
}

/// The page-range scan kernel: a query range plus an accumulation mode,
/// optionally masking a set of *excluded rows* (the overlay-aware read
/// path: rows with queued-but-unaligned writes are skipped by the scan and
/// answered from the write queue by the caller).
#[derive(Clone, Copy, Debug)]
pub struct ScanKernel<'a> {
    range: ValueRange,
    mode: ScanMode,
    /// Ascending global row ids the scan must treat as absent. Empty on
    /// every ordinary scan — the per-page fast paths are untouched then.
    excluded_rows: &'a [u64],
    /// Precomputed per-page exclusion bitmasks for `excluded_rows`, when
    /// the caller holds them (built once per overlay epoch). Without them
    /// the kernel derives each visited page's mask on the fly.
    excluded_masks: Option<&'a ExclusionMasks>,
}

impl<'a> ScanKernel<'a> {
    /// Creates a kernel filtering against `range` in the given `mode`.
    pub fn new(range: ValueRange, mode: ScanMode) -> Self {
        Self {
            range,
            mode,
            excluded_rows: &[],
            excluded_masks: None,
        }
    }

    /// Masks `rows` (ascending global row ids) from every scanned page:
    /// excluded rows contribute neither to the aggregate nor to the
    /// widening bounds nor to the collected row ids.
    ///
    /// This powers the overlay-aware read path of the adaptive layer: while
    /// writes are queued during a background alignment, scans skip the
    /// stored (stale or not-yet-written) values of the queued rows and the
    /// query layer adds the queued values back afterwards, so every
    /// acknowledged write is reflected exactly once. Probes
    /// ([`Self::probe_page_rows`]) ignore the mask — their candidate lists
    /// are filtered by the caller instead.
    ///
    /// Callers that scan the same exclusion set repeatedly should build an
    /// [`ExclusionMasks`] once and pass it via
    /// [`Self::with_exclusion_masks`] instead.
    pub fn with_excluded_rows(mut self, rows: &'a [u64]) -> Self {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must ascend");
        self.excluded_rows = rows;
        self.excluded_masks = None;
        self
    }

    /// Like [`Self::with_excluded_rows`], but reusing per-page exclusion
    /// bitmasks the caller precomputed (once per overlay epoch) instead of
    /// re-deriving them on every page visit.
    pub fn with_exclusion_masks(mut self, masks: &'a ExclusionMasks) -> Self {
        self.excluded_rows = masks.rows();
        self.excluded_masks = Some(masks);
        self
    }

    /// The query range this kernel filters against.
    pub fn range(&self) -> &ValueRange {
        &self.range
    }

    /// The accumulation mode.
    pub fn mode(&self) -> ScanMode {
        self.mode
    }

    /// The rows masked from every scan (empty unless the overlay-aware read
    /// path is active).
    pub fn excluded_rows(&self) -> &'a [u64] {
        self.excluded_rows
    }

    /// The exclusion bitmask covering `page`, if any of its slots are
    /// excluded: the precomputed one when the kernel carries
    /// [`ExclusionMasks`], otherwise derived from the row list.
    fn exclusion_mask_on(&self, page: &PageRef<'_>) -> Option<PageExclusionMask> {
        if let Some(masks) = self.excluded_masks {
            return masks.mask_for(page.page_id()).copied();
        }
        if self.excluded_rows.is_empty() {
            return None;
        }
        let base = page.page_id() * VALUES_PER_PAGE as u64;
        let end = base + VALUES_PER_PAGE as u64;
        let lo = self.excluded_rows.partition_point(|&r| r < base);
        let hi = self.excluded_rows.partition_point(|&r| r < end);
        if lo == hi {
            return None;
        }
        Some(PageExclusionMask::from_slots(
            self.excluded_rows[lo..hi]
                .iter()
                .map(|&r| (r - base) as usize),
        ))
    }

    /// Scans one page into `out` and returns the page's own result (so
    /// callers can react to per-page outcomes, e.g. feed qualifying pages to
    /// a view-creation sink in scan order).
    pub fn scan_page(&self, page: PageRef<'_>, out: &mut ScanOutput) -> PageScanResult {
        let res = if let Some(mask) = self.exclusion_mask_on(&page) {
            let count_only = matches!(self.mode, ScanMode::CountOnly);
            let rows = matches!(self.mode, ScanMode::CollectRows)
                .then(|| out.rows.get_or_insert_with(Vec::new));
            page.scan_filter_excluding(&self.range, &mask, count_only, rows)
        } else {
            match self.mode {
                ScanMode::CountOnly => page.scan_filter_count(&self.range),
                ScanMode::Aggregate => page.scan_filter(&self.range),
                ScanMode::CollectRows => {
                    let rows = out.rows.get_or_insert_with(Vec::new);
                    page.scan_filter_collect(&self.range, rows)
                }
            }
        };
        out.scanned_pages += 1;
        if res.count > 0 {
            if let Some(pages) = out.qualifying_pages.as_mut() {
                pages.push(page.page_id());
            }
        } else {
            if let Some(b) = res.below_max {
                out.below = Some(out.below.map_or(b, |cur| cur.max(b)));
            }
            if let Some(a) = res.above_min {
                out.above = Some(out.above.map_or(a, |cur| cur.min(a)));
            }
        }
        out.result.merge(&res);
        res
    }

    /// Probes the candidate rows `rows` (ascending global row ids, all on
    /// the page `page`) against the kernel's range, re-checking each
    /// candidate slot individually instead of scanning the whole page.
    ///
    /// Qualifying rows accumulate into `out` exactly like a scan would
    /// accumulate them ([`ScanMode`] is honoured: `CountOnly` skips the
    /// checksum, `CollectRows` appends the surviving row ids). The widening
    /// bounds `below`/`above` stay untouched — a probe observes individual
    /// slots, not whole pages, so nothing can be claimed about the page's
    /// non-qualifying content.
    pub fn probe_page_rows(&self, page: PageRef<'_>, rows: &[u64], out: &mut ScanOutput) {
        debug_assert!(rows
            .iter()
            .all(|&row| row / VALUES_PER_PAGE as u64 == page.page_id()));
        let base_row = page.page_id() * VALUES_PER_PAGE as u64;
        // Candidate slots are batched into fixed-width lanes and qualified
        // with a branch-free mask (see `simd::probe_rows_chunked`); the
        // slot-bounds contract of `PageRef::value` is preserved by checking
        // the batch's largest slot against the valid count up front.
        if let Some(&last) = rows.last() {
            let last_slot = (last - base_row) as usize;
            assert!(
                last_slot < page.valid_values(),
                "value slot {last_slot} out of bounds"
            );
        }
        let count_only = matches!(self.mode, ScanMode::CountOnly);
        let rows_out = matches!(self.mode, ScanMode::CollectRows)
            .then(|| out.rows.get_or_insert_with(Vec::new));
        let res = simd::probe_rows_chunked(
            page.values(),
            &self.range,
            base_row,
            rows,
            count_only,
            rows_out,
        );
        out.scanned_pages += 1;
        if res.count > 0 {
            if let Some(pages) = out.qualifying_pages.as_mut() {
                pages.push(page.page_id());
            }
        }
        out.result.merge(&res);
    }

    /// Evaluates the view slots `slots` of `view`, wrapping each raw page
    /// via `wrap` (which supplies the valid-value count; see
    /// [`crate::Column::wrap_view_page`]).
    ///
    /// This is the shard primitive: a parallel scan hands each worker a
    /// disjoint slot range of the same view.
    pub fn scan_view_slots<'p, V, W>(
        &self,
        view: &'p V,
        slots: Range<usize>,
        wrap: W,
        out: &mut ScanOutput,
    ) where
        V: ViewBuffer,
        W: Fn(&'p [u64]) -> PageRef<'p>,
    {
        debug_assert!(slots.end <= view.mapped_pages());
        for slot in slots {
            self.scan_page(wrap(view.page(slot)), out);
        }
    }
}

/// Scans all mapped pages of `view` with `kernel`, sharding the slot range
/// across `pool` and merging the partial outputs in slot order.
///
/// Slot-sharding assumes the view maps every physical page at most once
/// (true for the full view and for every view the creation path builds);
/// for multi-view scans with shared pages use the page-id-sharded scan in
/// `asv-core::exec`.
pub fn scan_view<'a, V, W>(
    kernel: &ScanKernel<'_>,
    view: &'a V,
    wrap: W,
    pool: &ThreadPool,
) -> ScanOutput
where
    V: ViewBuffer,
    W: Fn(&'a [u64]) -> PageRef<'a> + Sync,
{
    let mapped = view.mapped_pages();
    let track = false;
    if pool.workers() <= 1 || mapped < 2 {
        let mut out = ScanOutput::new(kernel.mode(), track);
        kernel.scan_view_slots(view, 0..mapped, &wrap, &mut out);
        return out;
    }
    let shards = split_ranges(mapped, pool.workers());
    let wrap = &wrap;
    let partials = pool.scoped_map(
        shards
            .into_iter()
            .map(|slots| {
                move || {
                    let mut out = ScanOutput::new(kernel.mode(), track);
                    kernel.scan_view_slots(view, slots, wrap, &mut out);
                    out
                }
            })
            .collect(),
    );
    let mut merged = ScanOutput::new(kernel.mode(), track);
    for partial in partials {
        merged.merge(partial);
    }
    merged
}

/// Convenience wrapper: [`scan_view`] driven by a [`Parallelism`] setting.
pub fn scan_view_with<'a, V, W>(
    kernel: &ScanKernel<'_>,
    view: &'a V,
    wrap: W,
    parallelism: Parallelism,
) -> ScanOutput
where
    V: ViewBuffer,
    W: Fn(&'a [u64]) -> PageRef<'a> + Sync,
{
    scan_view(kernel, view, wrap, &ThreadPool::new(parallelism))
}

/// Groups ascending candidate rows into per-page runs: each run is a
/// `(physical page, index range into rows)` pair.
fn group_rows_by_page(rows: &[u64]) -> Vec<(usize, Range<usize>)> {
    let mut runs: Vec<(usize, Range<usize>)> = Vec::new();
    let mut start = 0usize;
    while start < rows.len() {
        let page = (rows[start] / VALUES_PER_PAGE as u64) as usize;
        let mut end = start + 1;
        while end < rows.len() && (rows[end] / VALUES_PER_PAGE as u64) as usize == page {
            end += 1;
        }
        runs.push((page, start..end));
        start = end;
    }
    runs
}

/// Probes `rows` (ascending, duplicate-free global row ids of `column`)
/// against `kernel`'s range, touching only the physical pages that contain
/// candidates — the semi-join residual step of planned conjunctive
/// execution.
///
/// The per-page runs are sharded across `pool` and the partial outputs are
/// merged in ascending page order, so `rows` in the output (with
/// [`ScanMode::CollectRows`]) stay ascending and the result is identical
/// for every worker count. `scanned_pages` reports the number of *distinct*
/// pages touched, which is the probe's entire page effort.
pub fn probe_rows<B: Backend>(
    kernel: &ScanKernel<'_>,
    column: &Column<B>,
    rows: &[u64],
    pool: &ThreadPool,
) -> ScanOutput {
    debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must ascend");
    let mut merged = ScanOutput::new(kernel.mode(), false);
    if rows.is_empty() {
        return merged;
    }
    let runs = group_rows_by_page(rows);
    let probe_runs = |slice: &[(usize, Range<usize>)], out: &mut ScanOutput| {
        for (page, idx) in slice {
            kernel.probe_page_rows(column.page_ref(*page), &rows[idx.clone()], out);
        }
    };
    if pool.workers() <= 1 || runs.len() < 2 {
        probe_runs(&runs, &mut merged);
        return merged;
    }
    let shards = split_ranges(runs.len(), pool.workers());
    let runs = &runs;
    let probe_runs = &probe_runs;
    let partials = pool.scoped_map(
        shards
            .into_iter()
            .map(|shard| {
                move || {
                    let mut out = ScanOutput::new(kernel.mode(), false);
                    probe_runs(&runs[shard], &mut out);
                    out
                }
            })
            .collect(),
    );
    for partial in partials {
        merged.merge(partial);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::{MmapBackend, SimBackend};

    fn clustered_column<B: Backend>(backend: B, pages: usize) -> Column<B> {
        let values: Vec<u64> = (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect();
        Column::from_values(backend, &values).unwrap()
    }

    fn check_parallel_matches_sequential<B: Backend>(backend: B) {
        let column = clustered_column(backend, 37);
        let range = ValueRange::new(4_000, 21_300);
        for mode in [
            ScanMode::CountOnly,
            ScanMode::Aggregate,
            ScanMode::CollectRows,
        ] {
            let kernel = ScanKernel::new(range, mode);
            let seq = scan_view(
                &kernel,
                column.full_view(),
                |raw| column.wrap_view_page(raw),
                &ThreadPool::with_workers(1),
            );
            for workers in [2usize, 3, 8] {
                let par = scan_view(
                    &kernel,
                    column.full_view(),
                    |raw| column.wrap_view_page(raw),
                    &ThreadPool::with_workers(workers),
                );
                assert_eq!(par.result.count, seq.result.count, "{mode:?}/{workers}");
                assert_eq!(par.result.sum, seq.result.sum, "{mode:?}/{workers}");
                assert_eq!(par.scanned_pages, seq.scanned_pages, "{mode:?}/{workers}");
                assert_eq!(par.below, seq.below, "{mode:?}/{workers}");
                assert_eq!(par.above, seq.above, "{mode:?}/{workers}");
                // Shards merge in slot order, so even row ids line up.
                assert_eq!(par.rows, seq.rows, "{mode:?}/{workers}");
            }
        }
    }

    #[test]
    fn parallel_scan_matches_sequential_sim() {
        check_parallel_matches_sequential(SimBackend::new());
    }

    #[test]
    fn parallel_scan_matches_sequential_mmap() {
        check_parallel_matches_sequential(MmapBackend::new());
    }

    #[test]
    fn count_only_mode_skips_sum() {
        let column = clustered_column(SimBackend::new(), 8);
        let kernel = ScanKernel::new(ValueRange::new(1_000, 3_400), ScanMode::CountOnly);
        let out = scan_view_with(
            &kernel,
            column.full_view(),
            |raw| column.wrap_view_page(raw),
            Parallelism::Sequential,
        );
        assert!(out.result.count > 0);
        assert_eq!(out.result.sum, 0);
        assert!(out.rows.is_none());
    }

    #[test]
    fn qualifying_pages_and_widening_bounds_are_tracked() {
        let column = clustered_column(SimBackend::new(), 16);
        // Pages 5..=9 qualify for [5000, 9400].
        let kernel = ScanKernel::new(ValueRange::new(5_000, 9_400), ScanMode::Aggregate);
        let mut out = ScanOutput::new(kernel.mode(), true);
        kernel.scan_view_slots(
            column.full_view(),
            0..column.num_pages(),
            |raw| column.wrap_view_page(raw),
            &mut out,
        );
        assert_eq!(out.qualifying_pages.as_deref(), Some(&[5, 6, 7, 8, 9][..]));
        // Non-qualifying neighbours: page 4 tops out at 4510, page 10
        // starts at 10000.
        assert_eq!(out.below, Some(4_000 + VALUES_PER_PAGE as u64 - 1));
        assert_eq!(out.above, Some(10_000));
        assert_eq!(out.scanned_pages, 16);
    }

    fn check_probe_matches_reference<B: Backend>(backend: B) {
        let column = clustered_column(backend, 24);
        let values = column.to_vec();
        let range = ValueRange::new(6_000, 14_200);
        // Candidates: every third row of pages 4..=20 (some qualify, some
        // don't, some pages contain no candidate at all).
        let rows: Vec<u64> = (4 * VALUES_PER_PAGE..21 * VALUES_PER_PAGE)
            .step_by(3)
            .map(|r| r as u64)
            .collect();
        let expected: Vec<u64> = rows
            .iter()
            .copied()
            .filter(|&r| range.contains(values[r as usize]))
            .collect();
        let expected_sum: u128 = expected.iter().map(|&r| values[r as usize] as u128).sum();
        let candidate_pages = 21 - 4; // distinct pages holding candidates

        let kernel = ScanKernel::new(range, ScanMode::CollectRows);
        let seq = probe_rows(&kernel, &column, &rows, &ThreadPool::with_workers(1));
        assert_eq!(seq.rows.as_deref(), Some(&expected[..]));
        assert_eq!(seq.result.count, expected.len() as u64);
        assert_eq!(seq.result.sum, expected_sum);
        assert_eq!(
            seq.scanned_pages, candidate_pages,
            "touches only candidate pages"
        );
        assert_eq!(seq.below, None);
        assert_eq!(seq.above, None);

        for workers in [2usize, 3, 8] {
            let par = probe_rows(&kernel, &column, &rows, &ThreadPool::with_workers(workers));
            assert_eq!(par.rows, seq.rows, "workers={workers}");
            assert_eq!(par.result.count, seq.result.count, "workers={workers}");
            assert_eq!(par.result.sum, seq.result.sum, "workers={workers}");
            assert_eq!(par.scanned_pages, seq.scanned_pages, "workers={workers}");
        }

        // Count-only probes skip the checksum.
        let count_only =
            column.probe_rows_with(&range, ScanMode::CountOnly, &rows, Parallelism::Sequential);
        assert_eq!(count_only.result.count, expected.len() as u64);
        assert_eq!(count_only.result.sum, 0);
        assert!(count_only.rows.is_none());
    }

    #[test]
    fn probe_matches_reference_sim() {
        check_probe_matches_reference(SimBackend::new());
    }

    #[test]
    fn probe_matches_reference_mmap() {
        check_probe_matches_reference(MmapBackend::new());
    }

    #[test]
    fn probe_with_no_candidates_is_free() {
        let column = clustered_column(SimBackend::new(), 4);
        let kernel = ScanKernel::new(ValueRange::new(0, 10), ScanMode::CollectRows);
        let out = probe_rows(&kernel, &column, &[], &ThreadPool::with_workers(4));
        assert_eq!(out.scanned_pages, 0);
        assert_eq!(out.result.count, 0);
    }

    #[test]
    fn group_rows_by_page_splits_runs() {
        let vpp = VALUES_PER_PAGE as u64;
        let rows = [0, 1, vpp - 1, vpp, 3 * vpp + 2, 3 * vpp + 3];
        let runs = group_rows_by_page(&rows);
        assert_eq!(runs, vec![(0, 0..3), (1, 3..4), (3, 4..6)]);
        assert!(group_rows_by_page(&[]).is_empty());
    }

    fn check_excluded_rows_are_invisible<B: Backend>(backend: B) {
        let column = clustered_column(backend, 12);
        let values = column.to_vec();
        let range = ValueRange::new(3_000, 8_400);
        // Exclude a scattering of rows, qualifying and not, across pages.
        let excluded: Vec<u64> = [
            0usize,
            3 * VALUES_PER_PAGE,
            3 * VALUES_PER_PAGE + 7,
            5 * VALUES_PER_PAGE + 100,
            11 * VALUES_PER_PAGE + VALUES_PER_PAGE - 1,
        ]
        .iter()
        .map(|&r| r as u64)
        .collect();
        let expected: Vec<u64> = (0..values.len() as u64)
            .filter(|r| !excluded.contains(r) && range.contains(values[*r as usize]))
            .collect();
        let expected_sum: u128 = expected.iter().map(|&r| values[r as usize] as u128).sum();
        for mode in [
            ScanMode::CountOnly,
            ScanMode::Aggregate,
            ScanMode::CollectRows,
        ] {
            let kernel = ScanKernel::new(range, mode).with_excluded_rows(&excluded);
            for workers in [1usize, 3] {
                let out = scan_view(
                    &kernel,
                    column.full_view(),
                    |raw| column.wrap_view_page(raw),
                    &ThreadPool::with_workers(workers),
                );
                assert_eq!(out.result.count, expected.len() as u64, "{mode:?}");
                match mode {
                    ScanMode::CountOnly => assert_eq!(out.result.sum, 0),
                    _ => assert_eq!(out.result.sum, expected_sum, "{mode:?}"),
                }
                if mode == ScanMode::CollectRows {
                    assert_eq!(out.rows.as_deref(), Some(&expected[..]), "{mode:?}");
                }
            }
        }
    }

    #[test]
    fn excluded_rows_are_invisible_sim() {
        check_excluded_rows_are_invisible(SimBackend::new());
    }

    #[test]
    fn excluded_rows_are_invisible_mmap() {
        check_excluded_rows_are_invisible(MmapBackend::new());
    }

    #[test]
    fn excluded_rows_do_not_feed_widening_bounds() {
        let column = clustered_column(SimBackend::new(), 16);
        // Page 4's maximum (4510) is the widening bound below [5000, 9400];
        // excluding that row must push the bound down to 4509.
        let top_of_page_4 = (4 * VALUES_PER_PAGE + VALUES_PER_PAGE - 1) as u64;
        let kernel = ScanKernel::new(ValueRange::new(5_000, 9_400), ScanMode::Aggregate)
            .with_excluded_rows(std::slice::from_ref(&top_of_page_4));
        assert_eq!(kernel.excluded_rows(), &[top_of_page_4]);
        let out = scan_view(
            &kernel,
            column.full_view(),
            |raw| column.wrap_view_page(raw),
            &ThreadPool::with_workers(1),
        );
        assert_eq!(out.below, Some(4_509));
        assert_eq!(out.above, Some(10_000));
    }

    #[test]
    fn merge_combines_all_fields() {
        let mut a = ScanOutput {
            result: PageScanResult {
                count: 2,
                sum: 10,
                below_max: None,
                above_min: None,
            },
            rows: Some(vec![1, 2]),
            scanned_pages: 3,
            below: Some(5),
            above: Some(100),
            qualifying_pages: Some(vec![0]),
        };
        let b = ScanOutput {
            result: PageScanResult {
                count: 1,
                sum: 7,
                below_max: Some(3),
                above_min: None,
            },
            rows: Some(vec![9]),
            scanned_pages: 2,
            below: Some(8),
            above: Some(90),
            qualifying_pages: Some(vec![4]),
        };
        a.merge(b);
        assert_eq!(a.result.count, 3);
        assert_eq!(a.result.sum, 17);
        assert_eq!(a.scanned_pages, 5);
        assert_eq!(a.below, Some(8));
        assert_eq!(a.above, Some(90));
        assert_eq!(a.rows.as_deref(), Some(&[1, 2, 9][..]));
        assert_eq!(a.qualifying_pages.as_deref(), Some(&[0, 4][..]));
    }
}
