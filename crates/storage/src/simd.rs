//! Branch-free, fixed-width-lane chunked filter kernels.
//!
//! Every page the adaptive path and the full-scan baseline touch goes
//! through `page.scanAndFilter(q)` (Listing 1), so its inner loop is the
//! hottest code of the whole reproduction. The scalar loops in
//! [`crate::page`] evaluate `low <= v && v <= high` with data-dependent
//! branches — at mid selectivities the branch predictor loses every other
//! guess. The kernels in this module restructure the same computation into
//! chunks of [`LANES`] independent lanes with **no data-dependent branch**
//! anywhere on the value path, which lets LLVM auto-vectorize them on
//! stable Rust (and, where it only partially vectorizes, still removes all
//! branch mispredictions):
//!
//! * the predicate becomes a 0/1 lane mask `q = (v >= low) & (v <= high)`;
//! * the count accumulates `q` per lane;
//! * the checksum accumulates the masked value `v & (0 - q)` split into
//!   32-bit halves (`sum_lo`/`sum_hi` per lane), so the final
//!   `lo + (hi << 32)` reduction is *exactly* the scalar `u128` sum — the
//!   split sidesteps `u128` lane arithmetic, which LLVM does not vectorize;
//! * the widening bounds (paper §2.2) survive vectorization as lane-wise
//!   `max(v & below_mask)` / `min(v | !above_mask)` folds plus has-any
//!   flags, reduced once at the end of the page;
//! * row-id collection compresses each chunk's qualify mask into a bitmask
//!   and converts set bits to indexes (`trailing_zeros`) — the only
//!   remaining branch is per *qualifying chunk*, not per value;
//! * exclusions (the overlay-aware read path) apply a precomputed per-page
//!   bitmask ([`PageExclusionMask`]) as a second lane mask instead of
//!   stepping a skip iterator per value.
//!
//! All kernels are bit-identical to the scalar reference implementations in
//! [`crate::page`] (`*_scalar`), which are kept for differential tests and
//! the `filter-kernel` microbench.
//!
//! Accumulating the 32-bit checksum halves in `u64` lanes is exact for any
//! slice of up to 2³² values; pages hold at most
//! [`VALUES_PER_PAGE`] (= 511) values, so per-page sums cannot overflow.

use asv_util::ValueRange;
use asv_vmem::VALUES_PER_PAGE;

use crate::page::PageScanResult;

/// Number of values processed per chunk. Eight `u64` lanes are one 64-byte
/// cache line — two AVX2 registers or one AVX-512 register — and divide the
/// 64-bit words of [`PageExclusionMask`] evenly.
pub const LANES: usize = 8;

/// Words needed to carry one exclusion bit per value slot of a page.
const MASK_WORDS: usize = VALUES_PER_PAGE.div_ceil(64);

/// A per-page exclusion bitmask: one bit per value slot, set = the slot is
/// treated as absent by [`crate::PageRef::scan_filter_excluding`].
///
/// This replaces the sorted-slot-list walk of the overlay-aware read path:
/// instead of peeking a skip iterator per value, the chunked kernel loads
/// [`LANES`] exclusion bits at once and folds them into the lane masks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageExclusionMask {
    words: [u64; MASK_WORDS],
}

impl PageExclusionMask {
    /// An empty mask (no slot excluded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a mask from ascending value-slot indexes. Slots beyond
    /// [`VALUES_PER_PAGE`] are rejected.
    ///
    /// # Panics
    /// Panics if a slot is `>= VALUES_PER_PAGE`.
    pub fn from_slots(slots: impl IntoIterator<Item = usize>) -> Self {
        let mut mask = Self::default();
        for slot in slots {
            mask.set(slot);
        }
        mask
    }

    /// Marks `slot` as excluded.
    ///
    /// # Panics
    /// Panics if `slot >= VALUES_PER_PAGE`.
    #[inline]
    pub fn set(&mut self, slot: usize) {
        assert!(slot < VALUES_PER_PAGE, "slot {slot} out of page bounds");
        self.words[slot / 64] |= 1u64 << (slot % 64);
    }

    /// Returns `true` if `slot` is excluded.
    #[inline]
    pub fn excluded(&self, slot: usize) -> bool {
        debug_assert!(slot < VALUES_PER_PAGE);
        (self.words[slot / 64] >> (slot % 64)) & 1 == 1
    }

    /// Returns `true` if no slot is excluded.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The *keep* bits (1 = not excluded) of chunk `chunk` as the low
    /// [`LANES`] bits. `LANES` divides 64, so a chunk never straddles words.
    #[inline]
    fn keep_bits(&self, chunk: usize) -> u64 {
        const PER_WORD: usize = 64 / LANES;
        !(self.words[chunk / PER_WORD] >> ((chunk % PER_WORD) * LANES)) & ((1 << LANES) - 1)
    }
}

/// Precomputed per-page exclusion bitmasks for a set of excluded global row
/// ids — built **once per overlay epoch** instead of re-deriving slot lists
/// on every page visit of every scan.
///
/// The overlay's excluded row set only changes when a write queues a new
/// row or an alignment round retires rows, so the adaptive layer caches one
/// `ExclusionMasks` per overlay generation and hands scans a reference
/// (`ScanKernel::with_exclusion_masks`).
#[derive(Clone, Debug, Default)]
pub struct ExclusionMasks {
    rows: Vec<u64>,
    pages: Vec<u64>,
    masks: Vec<PageExclusionMask>,
}

impl ExclusionMasks {
    /// Builds the per-page masks from ascending, duplicate-free global row
    /// ids.
    pub fn from_rows(rows: Vec<u64>) -> Self {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must ascend");
        let mut pages = Vec::new();
        let mut masks: Vec<PageExclusionMask> = Vec::new();
        for &row in &rows {
            let page = row / VALUES_PER_PAGE as u64;
            let slot = (row % VALUES_PER_PAGE as u64) as usize;
            if pages.last() != Some(&page) {
                pages.push(page);
                masks.push(PageExclusionMask::new());
            }
            masks.last_mut().expect("pushed above").set(slot);
        }
        Self { rows, pages, masks }
    }

    /// The excluded rows, ascending.
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// Returns `true` if no row is excluded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The exclusion mask of `page_id`, if any of its slots are excluded.
    #[inline]
    pub fn mask_for(&self, page_id: u64) -> Option<&PageExclusionMask> {
        self.pages
            .binary_search(&page_id)
            .ok()
            .map(|idx| &self.masks[idx])
    }
}

/// Lane-wise accumulator of one page scan. Reduced once per page by
/// [`Acc::finish`].
#[derive(Clone, Copy)]
struct Acc {
    count: [u64; LANES],
    sum_lo: [u64; LANES],
    sum_hi: [u64; LANES],
    below: [u64; LANES],
    has_below: [u64; LANES],
    above: [u64; LANES],
    has_above: [u64; LANES],
}

impl Acc {
    #[inline]
    fn new() -> Self {
        Self {
            count: [0; LANES],
            sum_lo: [0; LANES],
            sum_hi: [0; LANES],
            below: [0; LANES],
            has_below: [0; LANES],
            above: [u64::MAX; LANES],
            has_above: [0; LANES],
        }
    }

    /// Reduces the lanes into a [`PageScanResult`]. Exactness: the checksum
    /// halves are re-joined as `lo + (hi << 32)` in `u128`, which equals the
    /// scalar order-independent sum; the bound folds are plain max/min, with
    /// non-participating lanes contributing the fold identities (0 for the
    /// below-max, `u64::MAX` for the above-min).
    #[inline]
    fn finish<const SUM: bool>(&self) -> PageScanResult {
        let count: u64 = self.count.iter().sum();
        let sum = if SUM {
            let lo: u64 = self.sum_lo.iter().sum();
            let hi: u64 = self.sum_hi.iter().sum();
            lo as u128 + ((hi as u128) << 32)
        } else {
            0
        };
        let below_max = self
            .has_below
            .iter()
            .any(|&m| m != 0)
            .then(|| self.below.iter().copied().max().unwrap_or(0));
        let above_min = self
            .has_above
            .iter()
            .any(|&m| m != 0)
            .then(|| self.above.iter().copied().min().unwrap_or(u64::MAX));
        PageScanResult {
            count,
            sum,
            below_max,
            above_min,
        }
    }
}

/// One full chunk step: classifies [`LANES`] values against `[low, high]`
/// and folds them into `acc` without any data-dependent branch. Returns the
/// chunk's qualify bits (bit `i` set = lane `i` qualifies).
#[inline(always)]
fn chunk_step<const SUM: bool>(chunk: &[u64], low: u64, high: u64, acc: &mut Acc) -> u64 {
    let mut qbits = 0u64;
    for (i, &v) in chunk.iter().enumerate() {
        let q = (v >= low) as u64 & (v <= high) as u64;
        let qm = q.wrapping_neg();
        acc.count[i] += q;
        if SUM {
            let masked = v & qm;
            acc.sum_lo[i] += masked & 0xFFFF_FFFF;
            acc.sum_hi[i] += masked >> 32;
        }
        let bm = ((v < low) as u64).wrapping_neg();
        acc.has_below[i] |= bm;
        acc.below[i] = acc.below[i].max(v & bm);
        let am = ((v > high) as u64).wrapping_neg();
        acc.has_above[i] |= am;
        acc.above[i] = acc.above[i].min(v | !am);
        qbits |= q << i;
    }
    qbits
}

/// Like [`chunk_step`], but additionally masked by `keep_bits` (bit `i`
/// clear = lane `i` is treated as absent). Used for excluded slots and for
/// the final partial chunk of a page.
#[inline(always)]
fn chunk_step_masked<const SUM: bool>(
    chunk: &[u64],
    keep_bits: u64,
    low: u64,
    high: u64,
    acc: &mut Acc,
) -> u64 {
    let mut qbits = 0u64;
    for (i, &v) in chunk.iter().enumerate() {
        let keep = (keep_bits >> i) & 1;
        let km = keep.wrapping_neg();
        let q = (v >= low) as u64 & (v <= high) as u64 & keep;
        let qm = q.wrapping_neg();
        acc.count[i] += q;
        if SUM {
            let masked = v & qm;
            acc.sum_lo[i] += masked & 0xFFFF_FFFF;
            acc.sum_hi[i] += masked >> 32;
        }
        let bm = ((v < low) as u64).wrapping_neg() & km;
        acc.has_below[i] |= bm;
        acc.below[i] = acc.below[i].max(v & bm);
        let am = ((v > high) as u64).wrapping_neg() & km;
        acc.has_above[i] |= am;
        acc.above[i] = acc.above[i].min(v | !am);
        qbits |= q << i;
    }
    qbits
}

/// Converts a chunk's qualify bits into global row ids appended to
/// `rows_out` (mask → index compaction).
#[inline(always)]
fn push_qualifying_rows(mut qbits: u64, first_row: u64, rows_out: &mut Vec<u64>) {
    while qbits != 0 {
        let lane = qbits.trailing_zeros() as u64;
        rows_out.push(first_row + lane);
        qbits &= qbits - 1;
    }
}

/// Chunked core shared by every scan entry point. `COLLECT` appends
/// qualifying global row ids (`base_row + index`) to `rows_out`; `SUM`
/// accumulates the checksum.
#[inline(always)]
fn scan_core<const SUM: bool, const COLLECT: bool>(
    values: &[u64],
    range: &ValueRange,
    exclusion: Option<&PageExclusionMask>,
    base_row: u64,
    rows_out: &mut Vec<u64>,
) -> PageScanResult {
    let (low, high) = (range.low(), range.high());
    let mut acc = Acc::new();
    let mut chunks = values.chunks_exact(LANES);
    let mut chunk_idx = 0usize;
    for chunk in &mut chunks {
        let qbits = match exclusion {
            Some(mask) => {
                chunk_step_masked::<SUM>(chunk, mask.keep_bits(chunk_idx), low, high, &mut acc)
            }
            None => chunk_step::<SUM>(chunk, low, high, &mut acc),
        };
        if COLLECT {
            push_qualifying_rows(qbits, base_row + (chunk_idx * LANES) as u64, rows_out);
        }
        chunk_idx += 1;
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        // The tail runs as a masked chunk: lanes beyond the slice are
        // dropped by the keep mask, excluded lanes by the exclusion bits.
        let mut keep = (1u64 << tail.len()) - 1;
        if let Some(mask) = exclusion {
            keep &= mask.keep_bits(chunk_idx);
        }
        let qbits = chunk_step_masked::<SUM>(tail, keep, low, high, &mut acc);
        if COLLECT {
            push_qualifying_rows(qbits, base_row + (chunk_idx * LANES) as u64, rows_out);
        }
    }
    acc.finish::<SUM>()
}

/// Chunked [`crate::PageRef::scan_filter`]: count + checksum + widening
/// bounds.
pub fn scan_filter_chunked(values: &[u64], range: &ValueRange) -> PageScanResult {
    let mut none = Vec::new();
    scan_core::<true, false>(values, range, None, 0, &mut none)
}

/// Chunked [`crate::PageRef::scan_filter_count`]: the fully branch-free
/// count-only fast path (no checksum accumulation at all).
pub fn scan_filter_count_chunked(values: &[u64], range: &ValueRange) -> PageScanResult {
    let mut none = Vec::new();
    scan_core::<false, false>(values, range, None, 0, &mut none)
}

/// Chunked [`crate::PageRef::scan_filter_collect`]: also appends qualifying
/// global row ids (`base_row + slot`) via mask → index compaction.
pub fn scan_filter_collect_chunked(
    values: &[u64],
    range: &ValueRange,
    base_row: u64,
    rows_out: &mut Vec<u64>,
) -> PageScanResult {
    scan_core::<true, true>(values, range, None, base_row, rows_out)
}

/// Chunked [`crate::PageRef::scan_filter_excluding`]: the exclusion bits
/// ride along as a second lane mask. `count_only` skips the checksum (the
/// result's `sum` stays 0), matching the scalar reference bit-for-bit.
pub fn scan_filter_excluding_chunked(
    values: &[u64],
    range: &ValueRange,
    exclusion: &PageExclusionMask,
    count_only: bool,
    base_row: u64,
    rows_out: Option<&mut Vec<u64>>,
) -> PageScanResult {
    match (count_only, rows_out) {
        (true, None) => {
            let mut none = Vec::new();
            scan_core::<false, false>(values, range, Some(exclusion), base_row, &mut none)
        }
        (false, None) => {
            let mut none = Vec::new();
            scan_core::<true, false>(values, range, Some(exclusion), base_row, &mut none)
        }
        (false, Some(rows)) => {
            scan_core::<true, true>(values, range, Some(exclusion), base_row, rows)
        }
        (true, Some(rows)) => {
            scan_core::<false, true>(values, range, Some(exclusion), base_row, rows)
        }
    }
}

/// Chunked branch-free min/max fold over the valid values of a page.
pub fn min_max_chunked(values: &[u64]) -> Option<(u64, u64)> {
    if values.is_empty() {
        return None;
    }
    let mut mins = [u64::MAX; LANES];
    let mut maxs = [0u64; LANES];
    let mut chunks = values.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (i, &v) in chunk.iter().enumerate() {
            mins[i] = mins[i].min(v);
            maxs[i] = maxs[i].max(v);
        }
    }
    for &v in chunks.remainder() {
        mins[0] = mins[0].min(v);
        maxs[0] = maxs[0].max(v);
    }
    let min = mins.iter().copied().min().unwrap_or(u64::MAX);
    let max = maxs.iter().copied().max().unwrap_or(0);
    Some((min, max))
}

/// Chunked min/max fold that *continues* an accumulator across slices — the
/// multi-page variant of [`min_max_chunked`] used by zone-statistics
/// construction, where one zone band folds over the valid values of many
/// consecutive pages without materializing a per-page `Option` in between.
///
/// The fold identities are `(u64::MAX, 0)`: start from
/// `(u64::MAX, 0)` and the result is `(min, max)` of everything folded, or
/// the identities unchanged if every slice was empty (callers detect the
/// empty zone from the row count they track alongside).
pub fn fold_min_max_chunked(values: &[u64], acc: (u64, u64)) -> (u64, u64) {
    let mut mins = [acc.0; LANES];
    let mut maxs = [acc.1; LANES];
    let mut chunks = values.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (i, &v) in chunk.iter().enumerate() {
            mins[i] = mins[i].min(v);
            maxs[i] = maxs[i].max(v);
        }
    }
    for &v in chunks.remainder() {
        mins[0] = mins[0].min(v);
        maxs[0] = maxs[0].max(v);
    }
    let min = mins.iter().copied().min().unwrap_or(acc.0);
    let max = maxs.iter().copied().max().unwrap_or(acc.1);
    (min, max)
}

/// Chunked page copy: materializes a page's words through the same
/// [`LANES`]-wide chunk structure as the filter kernels, so the alignment
/// snapshot and page-freeze copy loops compile to full-width vector moves
/// with one reserve and one bounds check per chunk instead of per-value
/// iterator stepping.
pub fn copy_values_chunked(src: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(src.len());
    let mut chunks = src.chunks_exact(LANES);
    for chunk in &mut chunks {
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(chunks.remainder());
    out
}

/// Chunked probe kernel: gathers the candidate slots' values in batches of
/// [`LANES`] and qualifies them with a branch-free lane mask. The widening
/// bounds stay untouched — a probe observes individual slots, not whole
/// pages (see [`crate::ScanKernel::probe_page_rows`]).
///
/// `rows` are ascending global row ids, all located on the page whose
/// values and base row are given.
///
/// # Panics
/// Panics if a row's slot is outside `values` (same contract as
/// [`crate::PageRef::value`]).
pub fn probe_rows_chunked(
    values: &[u64],
    range: &ValueRange,
    base_row: u64,
    rows: &[u64],
    count_only: bool,
    rows_out: Option<&mut Vec<u64>>,
) -> PageScanResult {
    if count_only {
        probe_core::<false>(values, range, base_row, rows, rows_out)
    } else {
        probe_core::<true>(values, range, base_row, rows, rows_out)
    }
}

#[inline(always)]
fn probe_core<const SUM: bool>(
    values: &[u64],
    range: &ValueRange,
    base_row: u64,
    rows: &[u64],
    mut rows_out: Option<&mut Vec<u64>>,
) -> PageScanResult {
    let (low, high) = (range.low(), range.high());
    let mut count = [0u64; LANES];
    let mut sum_lo = [0u64; LANES];
    let mut sum_hi = [0u64; LANES];
    let mut buf = [0u64; LANES];
    let mut chunks = rows.chunks_exact(LANES);
    for chunk in &mut chunks {
        // Gather: scalar loads, but the qualify/accumulate stage below is
        // branch-free lane arithmetic over the batched candidates.
        for (i, &row) in chunk.iter().enumerate() {
            buf[i] = values[(row - base_row) as usize];
        }
        let mut qbits = 0u64;
        for (i, &v) in buf.iter().enumerate() {
            let q = (v >= low) as u64 & (v <= high) as u64;
            let qm = q.wrapping_neg();
            count[i] += q;
            if SUM {
                let masked = v & qm;
                sum_lo[i] += masked & 0xFFFF_FFFF;
                sum_hi[i] += masked >> 32;
            }
            qbits |= q << i;
        }
        if let Some(out) = rows_out.as_deref_mut() {
            while qbits != 0 {
                let lane = qbits.trailing_zeros() as usize;
                out.push(chunk[lane]);
                qbits &= qbits - 1;
            }
        }
    }
    for (i, &row) in chunks.remainder().iter().enumerate() {
        let v = values[(row - base_row) as usize];
        let q = (v >= low) as u64 & (v <= high) as u64;
        let qm = q.wrapping_neg();
        count[i] += q;
        if SUM {
            let masked = v & qm;
            sum_lo[i] += masked & 0xFFFF_FFFF;
            sum_hi[i] += masked >> 32;
        }
        if q == 1 {
            if let Some(out) = rows_out.as_deref_mut() {
                out.push(row);
            }
        }
    }
    let sum = if SUM {
        let lo: u64 = sum_lo.iter().sum();
        let hi: u64 = sum_hi.iter().sum();
        lo as u128 + ((hi as u128) << 32)
    } else {
        0
    };
    PageScanResult {
        count: count.iter().sum(),
        sum,
        below_max: None,
        above_min: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Scalar reference of the full filter, written independently of the
    /// implementations in `page.rs`.
    fn reference(values: &[u64], range: &ValueRange, excluded: &[usize]) -> PageScanResult {
        let mut res = PageScanResult::default();
        for (idx, &v) in values.iter().enumerate() {
            if excluded.contains(&idx) {
                continue;
            }
            if range.contains(v) {
                res.count += 1;
                res.sum += v as u128;
            } else if v < range.low() {
                res.below_max = Some(res.below_max.map_or(v, |b| b.max(v)));
            } else {
                res.above_min = Some(res.above_min.map_or(v, |a| a.min(v)));
            }
        }
        res
    }

    fn random_values(len: usize, state: &mut u64) -> Vec<u64> {
        (0..len)
            .map(|_| match xorshift(state) % 10 {
                0 => 0,
                1 => u64::MAX,
                _ => xorshift(state) % 1_000,
            })
            .collect()
    }

    #[test]
    fn chunked_matches_reference_across_lengths_and_ranges() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for len in [0usize, 1, 7, 8, 9, 63, 64, 100, VALUES_PER_PAGE] {
            let values = random_values(len, &mut state);
            for range in [
                ValueRange::new(100, 600),
                ValueRange::full(),
                ValueRange::point(0),
                ValueRange::new(0, 0),
                ValueRange::new(999, u64::MAX),
            ] {
                let expected = reference(&values, &range, &[]);
                assert_eq!(scan_filter_chunked(&values, &range), expected, "len {len}");
                let count_only = scan_filter_count_chunked(&values, &range);
                assert_eq!(count_only.count, expected.count);
                assert_eq!(count_only.sum, 0);
                assert_eq!(count_only.below_max, expected.below_max);
                assert_eq!(count_only.above_min, expected.above_min);
                let mut rows = Vec::new();
                let collected = scan_filter_collect_chunked(&values, &range, 1000, &mut rows);
                assert_eq!(collected, expected);
                let expected_rows: Vec<u64> = values
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| range.contains(**v))
                    .map(|(i, _)| 1000 + i as u64)
                    .collect();
                assert_eq!(rows, expected_rows, "len {len}");
            }
        }
    }

    #[test]
    fn checksum_is_exact_at_domain_extremes() {
        // u64::MAX values stress the 32-bit-split accumulation.
        let values = vec![u64::MAX; VALUES_PER_PAGE];
        let res = scan_filter_chunked(&values, &ValueRange::full());
        assert_eq!(res.count, VALUES_PER_PAGE as u64);
        assert_eq!(res.sum, (u64::MAX as u128) * VALUES_PER_PAGE as u128);
    }

    #[test]
    fn exclusion_mask_matches_reference() {
        let mut state = 0xdead_beefu64;
        for len in [1usize, 8, 17, 200, VALUES_PER_PAGE] {
            let values = random_values(len, &mut state);
            let excluded: Vec<usize> = (0..len)
                .filter(|_| xorshift(&mut state).is_multiple_of(4))
                .collect();
            let mask = PageExclusionMask::from_slots(excluded.iter().copied());
            assert_eq!(mask.is_empty(), excluded.is_empty());
            let range = ValueRange::new(50, 700);
            let expected = reference(&values, &range, &excluded);
            let got = scan_filter_excluding_chunked(&values, &range, &mask, false, 0, None);
            assert_eq!(got, expected, "len {len}");
            // Count-only zeroes the checksum but keeps everything else.
            let count_only = scan_filter_excluding_chunked(&values, &range, &mask, true, 0, None);
            assert_eq!(count_only.count, expected.count);
            assert_eq!(count_only.sum, 0);
            assert_eq!(count_only.below_max, expected.below_max);
            // Collection honours the exclusions.
            let mut rows = Vec::new();
            scan_filter_excluding_chunked(&values, &range, &mask, false, 0, Some(&mut rows));
            let expected_rows: Vec<u64> = values
                .iter()
                .enumerate()
                .filter(|(i, v)| !excluded.contains(i) && range.contains(**v))
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(rows, expected_rows);
        }
    }

    #[test]
    fn exclusion_masks_index_per_page() {
        let vpp = VALUES_PER_PAGE as u64;
        let rows = vec![3, 5, vpp, 2 * vpp + 7, 2 * vpp + 8];
        let masks = ExclusionMasks::from_rows(rows.clone());
        assert_eq!(masks.rows(), &rows[..]);
        assert!(!masks.is_empty());
        assert!(masks.mask_for(0).unwrap().excluded(3));
        assert!(masks.mask_for(0).unwrap().excluded(5));
        assert!(!masks.mask_for(0).unwrap().excluded(4));
        assert!(masks.mask_for(1).unwrap().excluded(0));
        assert!(masks.mask_for(2).unwrap().excluded(7));
        assert!(masks.mask_for(3).is_none());
        assert!(ExclusionMasks::from_rows(Vec::new()).is_empty());
    }

    #[test]
    fn min_max_matches_iterator_fold() {
        let mut state = 42u64;
        for len in [0usize, 1, 5, 8, 64, 100, VALUES_PER_PAGE] {
            let values = random_values(len, &mut state);
            let expected = values
                .iter()
                .copied()
                .min()
                .zip(values.iter().copied().max());
            assert_eq!(min_max_chunked(&values), expected, "len {len}");
        }
    }

    #[test]
    fn fold_min_max_continues_accumulators_across_slices() {
        let mut state = 0xfeed_faceu64;
        for lens in [
            vec![0usize],
            vec![0, 0, 0],
            vec![1, 7, 8],
            vec![VALUES_PER_PAGE, 100, 0, 9],
        ] {
            let slices: Vec<Vec<u64>> = lens
                .iter()
                .map(|&len| random_values(len, &mut state))
                .collect();
            let mut acc = (u64::MAX, 0u64);
            for slice in &slices {
                acc = fold_min_max_chunked(slice, acc);
            }
            let all: Vec<u64> = slices.iter().flatten().copied().collect();
            match min_max_chunked(&all) {
                Some(expected) => assert_eq!(acc, expected, "lens {lens:?}"),
                None => assert_eq!(acc, (u64::MAX, 0), "lens {lens:?}"),
            }
        }
    }

    #[test]
    fn chunked_copy_is_exact() {
        let mut state = 0xc0ff_ee00u64;
        for len in [0usize, 1, 7, 8, 9, 64, 100, VALUES_PER_PAGE + 1] {
            let values = random_values(len, &mut state);
            assert_eq!(copy_values_chunked(&values), values, "len {len}");
        }
    }

    #[test]
    fn probe_matches_reference() {
        let mut state = 7u64;
        let values = random_values(VALUES_PER_PAGE, &mut state);
        let base = 5 * VALUES_PER_PAGE as u64;
        let rows: Vec<u64> = (0..VALUES_PER_PAGE as u64)
            .filter(|_| xorshift(&mut state).is_multiple_of(3))
            .map(|slot| base + slot)
            .collect();
        let range = ValueRange::new(100, 800);
        let expected_rows: Vec<u64> = rows
            .iter()
            .copied()
            .filter(|&r| range.contains(values[(r - base) as usize]))
            .collect();
        let expected_sum: u128 = expected_rows
            .iter()
            .map(|&r| values[(r - base) as usize] as u128)
            .sum();
        let mut got_rows = Vec::new();
        let res = probe_rows_chunked(&values, &range, base, &rows, false, Some(&mut got_rows));
        assert_eq!(res.count, expected_rows.len() as u64);
        assert_eq!(res.sum, expected_sum);
        assert_eq!(res.below_max, None);
        assert_eq!(res.above_min, None);
        assert_eq!(got_rows, expected_rows);
        let count_only = probe_rows_chunked(&values, &range, base, &rows, true, None);
        assert_eq!(count_only.count, expected_rows.len() as u64);
        assert_eq!(count_only.sum, 0);
    }

    #[test]
    #[should_panic(expected = "out of page bounds")]
    fn mask_rejects_out_of_page_slots() {
        PageExclusionMask::from_slots([VALUES_PER_PAGE]);
    }
}
