//! Page layout and page-level scan kernels.
//!
//! A page is [`asv_vmem::SLOTS_PER_PAGE`] (= 512) `u64` slots: slot 0 holds
//! the embedded pageID, slots `1..=VALUES_PER_PAGE` hold values. The last
//! page of a column may be partially filled; [`PageRef`] therefore carries
//! the number of valid values.

use asv_util::ValueRange;
use asv_vmem::{SLOTS_PER_PAGE, VALUES_PER_PAGE};

use crate::simd::{self, PageExclusionMask};

/// Index of the slot holding the embedded pageID.
pub const PAGE_ID_SLOT: usize = 0;

/// Result of filtering one page against a query range.
///
/// Besides the aggregate of qualifying values, the scan records the largest
/// non-qualifying value below the range and the smallest non-qualifying
/// value above it. Those bounds drive the range-widening step of adaptive
/// view creation (paper §2.2): if a page contains *no* qualifying value,
/// every value strictly between its `below_max` and `above_min` is known to
/// live on other (qualifying) pages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PageScanResult {
    /// Number of values on the page that fall into the query range.
    pub count: u64,
    /// Sum of the qualifying values (used as a result checksum).
    pub sum: u128,
    /// Largest value on the page that is strictly below the query range.
    pub below_max: Option<u64>,
    /// Smallest value on the page that is strictly above the query range.
    pub above_min: Option<u64>,
}

impl PageScanResult {
    /// Returns `true` if no value on the page qualified.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds another page's result into this one (used to accumulate a
    /// query result over many pages).
    pub fn merge(&mut self, other: &PageScanResult) {
        self.count += other.count;
        self.sum += other.sum;
        self.below_max = match (self.below_max, other.below_max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.above_min = match (self.above_min, other.above_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A read-only reference to one page of a column, with layout knowledge.
#[derive(Clone, Copy, Debug)]
pub struct PageRef<'a> {
    data: &'a [u64],
    valid_values: usize,
}

impl<'a> PageRef<'a> {
    /// Wraps a raw page slice.
    ///
    /// `valid_values` is the number of value slots in use on this page
    /// (always [`VALUES_PER_PAGE`] except possibly on the last page of a
    /// column).
    ///
    /// # Panics
    /// Panics if the slice is not exactly one page long or if
    /// `valid_values > VALUES_PER_PAGE`.
    pub fn new(data: &'a [u64], valid_values: usize) -> Self {
        assert_eq!(
            data.len(),
            SLOTS_PER_PAGE,
            "a page must be exactly {SLOTS_PER_PAGE} slots"
        );
        assert!(
            valid_values <= VALUES_PER_PAGE,
            "valid_values {valid_values} exceeds {VALUES_PER_PAGE}"
        );
        Self { data, valid_values }
    }

    /// The pageID embedded in slot 0.
    #[inline]
    pub fn page_id(&self) -> u64 {
        self.data[PAGE_ID_SLOT]
    }

    /// Number of valid values stored on this page.
    #[inline]
    pub fn valid_values(&self) -> usize {
        self.valid_values
    }

    /// The valid values of this page (excluding the pageID header).
    #[inline]
    pub fn values(&self) -> &'a [u64] {
        &self.data[1..1 + self.valid_values]
    }

    /// The raw page slice including the header slot.
    #[inline]
    pub fn raw(&self) -> &'a [u64] {
        self.data
    }

    /// The value stored at value-slot `idx` (0-based, header excluded).
    ///
    /// # Panics
    /// Panics if `idx >= self.valid_values()`.
    #[inline]
    pub fn value(&self, idx: usize) -> u64 {
        assert!(idx < self.valid_values, "value slot {idx} out of bounds");
        self.data[1 + idx]
    }

    /// Minimum and maximum of the valid values, if the page is non-empty.
    ///
    /// Computed with the chunked branch-free fold of [`crate::simd`].
    pub fn min_max(&self) -> Option<(u64, u64)> {
        simd::min_max_chunked(self.values())
    }

    /// Filters the page against `range`, producing counts, a checksum and
    /// the non-qualifying bounds needed for range widening.
    ///
    /// This is the `page.scanAndFilter(q)` primitive of Listing 1,
    /// evaluated by the chunked branch-free kernel of [`crate::simd`]
    /// (bit-identical to [`Self::scan_filter_scalar`]).
    pub fn scan_filter(&self, range: &ValueRange) -> PageScanResult {
        simd::scan_filter_chunked(self.values(), range)
    }

    /// Count-only variant of [`Self::scan_filter`]: tallies qualifying
    /// values and the non-qualifying bounds but skips the checksum
    /// accumulation (`sum` stays 0).
    ///
    /// This is the hot-path fast path for `COUNT(*)`-style queries: fully
    /// branch-free lane-mask accumulation — the widening bounds are still
    /// tracked (adaptive view creation needs them), but neither the
    /// checksum lanes nor any per-value branch remain.
    pub fn scan_filter_count(&self, range: &ValueRange) -> PageScanResult {
        simd::scan_filter_count_chunked(self.values(), range)
    }

    /// Like [`Self::scan_filter`], but additionally appends the global row
    /// ids of qualifying values to `rows_out` (chunk-mask → index
    /// compaction).
    ///
    /// The global row id is reconstructed from the embedded pageID — this is
    /// exactly why the paper embeds it: a partial view maps an arbitrary
    /// subset of pages, so the slot position within the view says nothing
    /// about the tuple.
    pub fn scan_filter_collect(
        &self,
        range: &ValueRange,
        rows_out: &mut Vec<u64>,
    ) -> PageScanResult {
        let base_row = self.page_id() * VALUES_PER_PAGE as u64;
        simd::scan_filter_collect_chunked(self.values(), range, base_row, rows_out)
    }
}

impl PageRef<'_> {
    /// Filters the page against `range` while treating the slots set in
    /// `exclusion` as *absent*: excluded slots contribute neither to the
    /// aggregate nor to the widening bounds nor to the collected rows.
    ///
    /// This is the slow path of the overlay-aware read path: while an
    /// adaptive column holds queued (not yet aligned) writes, the scan
    /// skips the stored values of the affected rows entirely and the query
    /// layer substitutes the queued values afterwards — so answers reflect
    /// every acknowledged write exactly once. `count_only` skips the
    /// checksum accumulation (the [`Self::scan_filter_count`] equivalent);
    /// `rows_out` enables row-id collection (the
    /// [`Self::scan_filter_collect`] equivalent).
    ///
    /// Exclusion bits beyond the valid value count are ignored (the scan
    /// never reads those slots).
    pub fn scan_filter_excluding(
        &self,
        range: &ValueRange,
        exclusion: &PageExclusionMask,
        count_only: bool,
        rows_out: Option<&mut Vec<u64>>,
    ) -> PageScanResult {
        let base_row = self.page_id() * VALUES_PER_PAGE as u64;
        simd::scan_filter_excluding_chunked(
            self.values(),
            range,
            exclusion,
            count_only,
            base_row,
            rows_out,
        )
    }
}

/// Scalar reference implementations.
///
/// These are the original per-value loops the chunked kernels of
/// [`crate::simd`] replaced. They are kept (and exercised) for two reasons:
/// the differential property tests assert the chunked kernels match them
/// bit-identically, and the `filter-kernel` microbench measures the chunked
/// speedup against them.
impl PageRef<'_> {
    /// Scalar reference of [`Self::scan_filter`] (branchy per-value loop).
    pub fn scan_filter_scalar(&self, range: &ValueRange) -> PageScanResult {
        let mut res = PageScanResult::default();
        for &v in self.values() {
            if range.contains(v) {
                res.count += 1;
                res.sum += v as u128;
            } else if v < range.low() {
                res.below_max = Some(res.below_max.map_or(v, |b| b.max(v)));
            } else {
                res.above_min = Some(res.above_min.map_or(v, |a| a.min(v)));
            }
        }
        res
    }

    /// Scalar reference of [`Self::scan_filter_count`].
    pub fn scan_filter_count_scalar(&self, range: &ValueRange) -> PageScanResult {
        let mut res = PageScanResult::default();
        for &v in self.values() {
            if range.contains(v) {
                res.count += 1;
            } else if v < range.low() {
                res.below_max = Some(res.below_max.map_or(v, |b| b.max(v)));
            } else {
                res.above_min = Some(res.above_min.map_or(v, |a| a.min(v)));
            }
        }
        res
    }

    /// Scalar reference of [`Self::scan_filter_collect`].
    pub fn scan_filter_collect_scalar(
        &self,
        range: &ValueRange,
        rows_out: &mut Vec<u64>,
    ) -> PageScanResult {
        let mut res = PageScanResult::default();
        let base_row = self.page_id() * VALUES_PER_PAGE as u64;
        for (idx, &v) in self.values().iter().enumerate() {
            if range.contains(v) {
                res.count += 1;
                res.sum += v as u128;
                rows_out.push(base_row + idx as u64);
            } else if v < range.low() {
                res.below_max = Some(res.below_max.map_or(v, |b| b.max(v)));
            } else {
                res.above_min = Some(res.above_min.map_or(v, |a| a.min(v)));
            }
        }
        res
    }

    /// Scalar reference of [`Self::scan_filter_excluding`], taking the
    /// exclusions as ascending value-slot indexes and skipping them with a
    /// peekable iterator — the shape of the pre-kernel implementation.
    pub fn scan_filter_excluding_scalar(
        &self,
        range: &ValueRange,
        excluded_slots: &[usize],
        count_only: bool,
        mut rows_out: Option<&mut Vec<u64>>,
    ) -> PageScanResult {
        debug_assert!(excluded_slots.windows(2).all(|w| w[0] < w[1]));
        let mut res = PageScanResult::default();
        let base_row = self.page_id() * VALUES_PER_PAGE as u64;
        let mut skip = excluded_slots.iter().copied().peekable();
        for (idx, &v) in self.values().iter().enumerate() {
            if skip.peek() == Some(&idx) {
                skip.next();
                continue;
            }
            if range.contains(v) {
                res.count += 1;
                if !count_only {
                    res.sum += v as u128;
                }
                if let Some(rows) = rows_out.as_deref_mut() {
                    rows.push(base_row + idx as u64);
                }
            } else if v < range.low() {
                res.below_max = Some(res.below_max.map_or(v, |b| b.max(v)));
            } else {
                res.above_min = Some(res.above_min.map_or(v, |a| a.min(v)));
            }
        }
        res
    }

    /// Scalar reference of [`crate::ScanKernel::probe_page_rows`]'s
    /// per-candidate qualification (branchy per-row loop).
    pub fn probe_rows_scalar(
        &self,
        range: &ValueRange,
        rows: &[u64],
        count_only: bool,
        mut rows_out: Option<&mut Vec<u64>>,
    ) -> PageScanResult {
        let base_row = self.page_id() * VALUES_PER_PAGE as u64;
        let mut res = PageScanResult::default();
        for &row in rows {
            let slot = (row - base_row) as usize;
            let v = self.value(slot);
            if range.contains(v) {
                res.count += 1;
                if !count_only {
                    res.sum += v as u128;
                }
                if let Some(rows) = rows_out.as_deref_mut() {
                    rows.push(row);
                }
            }
        }
        res
    }
}

/// Writes the page header (embedded pageID) and values into a raw page
/// buffer. Used by the column builder and by tests.
pub fn write_page(raw: &mut [u64], page_id: u64, values: &[u64]) {
    assert_eq!(raw.len(), SLOTS_PER_PAGE);
    assert!(values.len() <= VALUES_PER_PAGE);
    raw[PAGE_ID_SLOT] = page_id;
    raw[1..1 + values.len()].copy_from_slice(values);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_page(page_id: u64, values: &[u64]) -> Vec<u64> {
        let mut raw = vec![0u64; SLOTS_PER_PAGE];
        write_page(&mut raw, page_id, values);
        raw
    }

    #[test]
    fn page_accessors() {
        let raw = make_page(7, &[10, 20, 30]);
        let page = PageRef::new(&raw, 3);
        assert_eq!(page.page_id(), 7);
        assert_eq!(page.valid_values(), 3);
        assert_eq!(page.values(), &[10, 20, 30]);
        assert_eq!(page.value(2), 30);
        assert_eq!(page.min_max(), Some((10, 30)));
        assert_eq!(page.raw().len(), SLOTS_PER_PAGE);
    }

    #[test]
    fn empty_page_has_no_min_max() {
        let raw = make_page(0, &[]);
        let page = PageRef::new(&raw, 0);
        assert_eq!(page.min_max(), None);
        assert!(page.values().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn value_access_respects_valid_count() {
        let raw = make_page(0, &[1, 2]);
        let page = PageRef::new(&raw, 2);
        page.value(2);
    }

    #[test]
    fn scan_filter_counts_and_bounds() {
        let raw = make_page(3, &[5, 15, 25, 35, 45]);
        let page = PageRef::new(&raw, 5);
        let res = page.scan_filter(&ValueRange::new(10, 30));
        assert_eq!(res.count, 2);
        assert_eq!(res.sum, 15 + 25);
        assert_eq!(res.below_max, Some(5));
        assert_eq!(res.above_min, Some(35));
        assert!(!res.is_empty());
    }

    #[test]
    fn scan_filter_non_qualifying_page() {
        let raw = make_page(3, &[5, 8, 90, 95]);
        let page = PageRef::new(&raw, 4);
        let res = page.scan_filter(&ValueRange::new(10, 30));
        assert!(res.is_empty());
        assert_eq!(res.below_max, Some(8));
        assert_eq!(res.above_min, Some(90));
    }

    #[test]
    fn scan_filter_count_matches_full_filter_except_sum() {
        let raw = make_page(3, &[5, 15, 25, 35, 45]);
        let page = PageRef::new(&raw, 5);
        let range = ValueRange::new(10, 30);
        let full = page.scan_filter(&range);
        let count_only = page.scan_filter_count(&range);
        assert_eq!(count_only.count, full.count);
        assert_eq!(count_only.below_max, full.below_max);
        assert_eq!(count_only.above_min, full.above_min);
        assert_eq!(count_only.sum, 0);
    }

    #[test]
    fn scan_filter_collect_reconstructs_row_ids() {
        let raw = make_page(2, &[100, 7, 200]);
        let page = PageRef::new(&raw, 3);
        let mut rows = Vec::new();
        let res = page.scan_filter_collect(&ValueRange::new(50, 250), &mut rows);
        assert_eq!(res.count, 2);
        let base = 2 * VALUES_PER_PAGE as u64;
        assert_eq!(rows, vec![base, base + 2]);
    }

    #[test]
    fn merge_accumulates_results() {
        let mut a = PageScanResult {
            count: 1,
            sum: 10,
            below_max: Some(3),
            above_min: None,
        };
        let b = PageScanResult {
            count: 2,
            sum: 30,
            below_max: Some(5),
            above_min: Some(100),
        };
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 40);
        assert_eq!(a.below_max, Some(5));
        assert_eq!(a.above_min, Some(100));
    }

    #[test]
    #[should_panic(expected = "exactly")]
    fn wrong_page_size_panics() {
        let raw = vec![0u64; 10];
        PageRef::new(&raw, 0);
    }
}
