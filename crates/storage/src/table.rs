//! Tables: named collections of physical columns.
//!
//! Figure 1 of the paper shows the table representation of the adaptive
//! storage layer: a table is a set of physical columns, each carrying its
//! own full view (and, later, partial views). [`Table`] is that container.
//! The adaptive machinery itself attaches per column (see `asv-core`), so
//! the table stays a thin catalog.

use std::collections::HashMap;

use asv_vmem::Backend;

use crate::column::Column;

/// A named table consisting of physical columns.
pub struct Table<B: Backend> {
    name: String,
    columns: Vec<(String, Column<B>)>,
    index: HashMap<String, usize>,
}

impl<B: Backend> Table<B> {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            columns: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns in the table.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Returns `true` if the table has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Adds a column under `name`.
    ///
    /// # Panics
    /// Panics if a column with the same name already exists or if the new
    /// column's row count differs from the existing columns'.
    pub fn add_column(&mut self, name: impl Into<String>, column: Column<B>) {
        let name = name.into();
        assert!(
            !self.index.contains_key(&name),
            "column '{name}' already exists in table '{}'",
            self.name
        );
        if let Some((_, first)) = self.columns.first() {
            assert_eq!(
                first.num_rows(),
                column.num_rows(),
                "column '{name}' has {} rows but table '{}' has {}",
                column.num_rows(),
                self.name,
                first.num_rows()
            );
        }
        self.index.insert(name.clone(), self.columns.len());
        self.columns.push((name, column));
    }

    /// Builds a column from values and adds it in one step.
    pub fn add_column_from_values(
        &mut self,
        name: impl Into<String>,
        backend: B,
        values: &[u64],
    ) -> asv_vmem::Result<()> {
        let column = Column::from_values(backend, values)?;
        self.add_column(name, column);
        Ok(())
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column<B>> {
        self.index.get(name).map(|&i| &self.columns[i].1)
    }

    /// Looks up a column by name, mutably.
    pub fn column_mut(&mut self, name: &str) -> Option<&mut Column<B>> {
        let i = *self.index.get(name)?;
        Some(&mut self.columns[i].1)
    }

    /// Number of rows (identical across all columns; 0 for an empty table).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.num_rows())
    }

    /// Iterates over `(name, column)` pairs in insertion order.
    pub fn columns(&self) -> impl Iterator<Item = (&str, &Column<B>)> {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Names of all columns in insertion order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::SimBackend;

    fn column(values: &[u64]) -> Column<SimBackend> {
        Column::from_values(SimBackend::new(), values).unwrap()
    }

    #[test]
    fn build_and_lookup_columns() {
        let mut t = Table::new("orders");
        assert!(t.is_empty());
        t.add_column("a", column(&[1, 2, 3]));
        t.add_column("b", column(&[10, 20, 30]));
        assert_eq!(t.name(), "orders");
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.column("a").unwrap().value(2), 3);
        assert_eq!(t.column("b").unwrap().value(0), 10);
        assert!(t.column("c").is_none());
        assert_eq!(t.column_names(), vec!["a", "b"]);
        assert_eq!(t.columns().count(), 2);
    }

    #[test]
    fn add_column_from_values_helper() {
        let mut t = Table::new("t");
        t.add_column_from_values("x", SimBackend::new(), &[5, 6])
            .unwrap();
        assert_eq!(t.column("x").unwrap().num_rows(), 2);
    }

    #[test]
    fn column_mut_allows_updates() {
        let mut t = Table::new("t");
        t.add_column("a", column(&[1, 2, 3]));
        t.column_mut("a").unwrap().write(1, 42);
        assert_eq!(t.column("a").unwrap().value(1), 42);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_column_name_panics() {
        let mut t = Table::new("t");
        t.add_column("a", column(&[1]));
        t.add_column("a", column(&[2]));
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn mismatched_row_count_panics() {
        let mut t = Table::new("t");
        t.add_column("a", column(&[1, 2]));
        t.add_column("b", column(&[1]));
    }

    #[test]
    fn empty_table_has_zero_rows() {
        let t: Table<SimBackend> = Table::new("empty");
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 0);
    }
}
