//! Columnar storage layer backed by main-memory files.
//!
//! This crate materializes the *physical* side of the paper's design
//! (Figure 1): every column of every table is stored as a sequence of 4 KiB
//! pages inside a physical store provided by `asv-vmem`. Each page embeds
//! its pageID in slot 0 (paper §2) so that scans over arbitrarily-rewired
//! partial views can still attribute every value to its tuple.
//!
//! The crate deliberately stops at the storage-layer interface the paper
//! starts from — `value(row)`, full-column scans, update application — and
//! leaves everything view-related to `asv-core`.

pub mod column;
pub mod kernel;
pub mod page;
pub mod simd;
pub mod table;
pub mod updates;

pub use column::Column;
pub use kernel::{probe_rows, scan_view, scan_view_with, ScanKernel, ScanMode, ScanOutput};
pub use page::{PageRef, PageScanResult};
pub use simd::{
    copy_values_chunked, fold_min_max_chunked, ExclusionMasks, PageExclusionMask, LANES,
};
pub use table::Table;
pub use updates::{dedup_last_write_wins, group_by_page, sorted_page_groups, Update, UpdateBatch};

pub use asv_vmem::{PAGE_SIZE_BYTES, SLOTS_PER_PAGE, VALUES_PER_PAGE};
