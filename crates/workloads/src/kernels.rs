//! Inputs of the `filter-kernel` microbench (beyond the paper).
//!
//! The microbench isolates the page-filter hot path from the adaptive
//! machinery around it, so its workload is deliberately minimal: one
//! uniformly distributed column, a small excluded-row set standing in for
//! an overlay's queued writes, a probe-row set standing in for semi-join
//! candidates, and predicate ranges hitting prescribed selectivities.
//! Everything is seeded and deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use asv_util::ValueRange;
use asv_vmem::VALUES_PER_PAGE;

use crate::distributions::Distribution;

/// Fraction of rows masked out by the synthetic exclusion set (mimics an
/// overlay with ~1% of rows carrying queued writes).
const EXCLUDED_ROW_FRACTION: f64 = 0.01;

/// Fraction of rows probed by the synthetic semi-join candidate set.
const PROBE_ROW_FRACTION: f64 = 0.05;

/// The deterministic input set of one `filter-kernel` run.
#[derive(Clone, Debug)]
pub struct KernelWorkload {
    values: Vec<u64>,
    excluded_rows: Vec<u64>,
    probe_rows: Vec<u64>,
    max_value: u64,
}

impl KernelWorkload {
    /// Generates the workload for a column of `num_pages` pages,
    /// deterministically from `seed`.
    pub fn generate(num_pages: usize, seed: u64) -> Self {
        let dist = Distribution::uniform();
        let values = dist.generate_pages(num_pages, seed);
        let num_rows = values.len() as u64;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6b65_726e_656c_7321);
        let excluded_rows = sorted_row_sample(&mut rng, num_rows, EXCLUDED_ROW_FRACTION);
        let probe_rows = sorted_row_sample(&mut rng, num_rows, PROBE_ROW_FRACTION);
        Self {
            values,
            excluded_rows,
            probe_rows,
            max_value: dist.max_value(),
        }
    }

    /// The column's values, page-structured ([`VALUES_PER_PAGE`] per page).
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of pages of the column.
    pub fn num_pages(&self) -> usize {
        self.values.len() / VALUES_PER_PAGE
    }

    /// Ascending, duplicate-free row ids excluded from scans (~1% of rows).
    pub fn excluded_rows(&self) -> &[u64] {
        &self.excluded_rows
    }

    /// Ascending, duplicate-free row ids probed point-wise (~5% of rows).
    pub fn probe_rows(&self) -> &[u64] {
        &self.probe_rows
    }

    /// Upper bound of the value domain.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// A predicate range centered in the value domain that qualifies
    /// approximately `selectivity_pct` percent of a uniform column.
    ///
    /// # Panics
    /// Panics unless `0 < selectivity_pct <= 100`.
    pub fn range_for_selectivity(&self, selectivity_pct: f64) -> ValueRange {
        assert!(
            selectivity_pct > 0.0 && selectivity_pct <= 100.0,
            "selectivity {selectivity_pct}% out of (0, 100]"
        );
        let domain = self.max_value as f64;
        let width = (domain * selectivity_pct / 100.0).max(1.0);
        let low = ((domain - width) / 2.0) as u64;
        let high = (low as f64 + width).min(domain) as u64;
        ValueRange::new(low, high)
    }
}

/// Samples each row independently with probability `fraction`, yielding an
/// ascending duplicate-free row id list.
fn sorted_row_sample(rng: &mut StdRng, num_rows: u64, fraction: f64) -> Vec<u64> {
    let expected = (num_rows as f64 * fraction) as usize;
    let mut rows = Vec::with_capacity(expected + expected / 8 + 1);
    for row in 0..num_rows {
        if rng.gen_bool(fraction) {
            rows.push(row);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = KernelWorkload::generate(16, 7);
        let b = KernelWorkload::generate(16, 7);
        assert_eq!(a.values(), b.values());
        assert_eq!(a.excluded_rows(), b.excluded_rows());
        assert_eq!(a.probe_rows(), b.probe_rows());
        let c = KernelWorkload::generate(16, 8);
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn row_samples_are_sorted_in_bounds_and_sized() {
        let w = KernelWorkload::generate(64, 3);
        let rows = (w.num_pages() * VALUES_PER_PAGE) as u64;
        for sample in [w.excluded_rows(), w.probe_rows()] {
            assert!(sample.windows(2).all(|p| p[0] < p[1]));
            assert!(sample.iter().all(|&r| r < rows));
        }
        let excl_frac = w.excluded_rows().len() as f64 / rows as f64;
        let probe_frac = w.probe_rows().len() as f64 / rows as f64;
        assert!((0.005..0.02).contains(&excl_frac), "{excl_frac}");
        assert!((0.03..0.07).contains(&probe_frac), "{probe_frac}");
    }

    #[test]
    fn selectivity_ranges_hit_their_targets() {
        let w = KernelWorkload::generate(64, 11);
        for pct in [1.0, 10.0, 50.0, 90.0, 100.0] {
            let range = w.range_for_selectivity(pct);
            let hits = w.values().iter().filter(|v| range.contains(**v)).count();
            let actual = 100.0 * hits as f64 / w.values().len() as f64;
            assert!((actual - pct).abs() < 1.5, "target {pct}% got {actual:.2}%");
        }
    }

    #[test]
    #[should_panic(expected = "out of (0, 100]")]
    fn zero_selectivity_panics() {
        KernelWorkload::generate(1, 0).range_for_selectivity(0.0);
    }
}
