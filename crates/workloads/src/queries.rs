//! Query-sequence generators (paper §3.2 and §3.3).
//!
//! * The **selectivity sweep** of Figure 4: "a sequence of 250 queries which
//!   vary the selected value range step-wise from 50M (low selectivity)
//!   down to 5000 (high selectivity). Before firing, we shuffle the
//!   generated queries randomly."
//! * The **fixed-selectivity sequences** of Figure 5: every query selects a
//!   range of the same width (1% or 10% of the domain) at a random
//!   position.

use asv_util::ValueRange;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of a selectivity sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepSpec {
    /// Number of queries in the sequence (the paper uses 250).
    pub num_queries: usize,
    /// Width of the first (widest) query range (the paper uses 50M).
    pub widest_range: u64,
    /// Width of the last (narrowest) query range (the paper uses 5000).
    pub narrowest_range: u64,
    /// Upper bound of the value domain queried (the paper uses 100M).
    pub domain_max: u64,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self {
            num_queries: 250,
            widest_range: 50_000_000,
            narrowest_range: 5_000,
            domain_max: 100_000_000,
        }
    }
}

/// A generator for the paper's query workloads.
#[derive(Clone, Debug)]
pub struct QueryWorkload {
    seed: u64,
}

impl QueryWorkload {
    /// Creates a workload generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates the Figure 4 selectivity sweep: query widths step from
    /// `widest_range` down to `narrowest_range` (geometrically, so both ends
    /// of the selectivity spectrum are represented), each query is placed at
    /// a random position inside the domain, and the sequence is shuffled.
    pub fn selectivity_sweep(&self, spec: &SweepSpec) -> Vec<ValueRange> {
        assert!(spec.num_queries > 0, "need at least one query");
        assert!(
            spec.narrowest_range >= 1 && spec.narrowest_range <= spec.widest_range,
            "invalid sweep widths"
        );
        assert!(
            spec.widest_range <= spec.domain_max,
            "widest range exceeds domain"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = spec.num_queries;
        let mut queries = Vec::with_capacity(n);
        let log_hi = (spec.widest_range as f64).ln();
        let log_lo = (spec.narrowest_range as f64).ln();
        for i in 0..n {
            let t = if n == 1 {
                0.0
            } else {
                i as f64 / (n - 1) as f64
            };
            let width = (log_hi + (log_lo - log_hi) * t).exp().round() as u64;
            let width = width.clamp(spec.narrowest_range, spec.widest_range).max(1);
            let max_start = spec.domain_max - width;
            let start = if max_start == 0 {
                0
            } else {
                rng.gen_range(0..=max_start)
            };
            queries.push(ValueRange::new(start, start + width - 1));
        }
        queries.shuffle(&mut rng);
        queries
    }

    /// Generates the Figure 5 fixed-selectivity sequence: `num_queries`
    /// ranges of width `selectivity * domain_max` at random positions.
    pub fn fixed_selectivity(
        &self,
        num_queries: usize,
        selectivity: f64,
        domain_max: u64,
    ) -> Vec<ValueRange> {
        assert!(num_queries > 0, "need at least one query");
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity must be in (0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let width = ((domain_max as f64 * selectivity).round() as u64).max(1);
        (0..num_queries)
            .map(|_| {
                let max_start = domain_max.saturating_sub(width);
                let start = if max_start == 0 {
                    0
                } else {
                    rng.gen_range(0..=max_start)
                };
                ValueRange::new(start, start + width - 1)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_shuffled() {
        let w = QueryWorkload::new(7);
        let spec = SweepSpec::default();
        let a = w.selectivity_sweep(&spec);
        let b = w.selectivity_sweep(&spec);
        assert_eq!(a.len(), 250);
        assert_eq!(a, b);
        let c = QueryWorkload::new(8).selectivity_sweep(&spec);
        assert_ne!(a, c);
        // Shuffled: widths must not be monotonically decreasing.
        let widths: Vec<u64> = a.iter().map(|r| r.width()).collect();
        assert!(widths.windows(2).any(|w| w[0] < w[1]));
    }

    #[test]
    fn sweep_covers_the_requested_width_spectrum() {
        let spec = SweepSpec::default();
        let queries = QueryWorkload::new(1).selectivity_sweep(&spec);
        let min_w = queries.iter().map(|r| r.width()).min().unwrap();
        let max_w = queries.iter().map(|r| r.width()).max().unwrap();
        // Geometric stepping hits (roughly) both endpoints.
        assert!(min_w <= spec.narrowest_range + spec.narrowest_range / 10);
        assert!(max_w >= spec.widest_range - spec.widest_range / 10);
        for q in &queries {
            assert!(q.high() <= spec.domain_max);
        }
    }

    #[test]
    fn fixed_selectivity_produces_constant_width() {
        let queries = QueryWorkload::new(3).fixed_selectivity(100, 0.01, 100_000_000);
        assert_eq!(queries.len(), 100);
        for q in &queries {
            assert_eq!(q.width(), 1_000_000);
            assert!(q.high() <= 100_000_000);
        }
        // Positions vary.
        assert!(queries.iter().any(|q| q.low() != queries[0].low()));
    }

    #[test]
    fn fixed_selectivity_full_domain() {
        let queries = QueryWorkload::new(3).fixed_selectivity(5, 1.0, 1_000);
        for q in &queries {
            assert_eq!(q.low(), 0);
            assert_eq!(q.width(), 1_000);
        }
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn zero_selectivity_panics() {
        QueryWorkload::new(0).fixed_selectivity(1, 0.0, 100);
    }

    #[test]
    #[should_panic(expected = "invalid sweep widths")]
    fn inverted_sweep_widths_panic() {
        let spec = SweepSpec {
            narrowest_range: 10_000_000,
            widest_range: 5_000,
            ..SweepSpec::default()
        };
        QueryWorkload::new(0).selectivity_sweep(&spec);
    }
}
