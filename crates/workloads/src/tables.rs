//! Multi-column table workloads for conjunctive queries.
//!
//! The paper evaluates single columns; the multi-column planner needs
//! workloads in which the *relationship between columns* matters, because
//! that relationship decides how much a selectivity-ordered plan saves:
//!
//! * **correlated** columns — all columns follow the same page-clustered
//!   ramp, so aligned predicates select the same rows and the residual
//!   probes survive almost everything;
//! * **anti-correlated** columns — odd columns follow the mirrored ramp, so
//!   aligned predicates select disjoint row sets and probes collapse the
//!   survivor set immediately;
//! * **independent** columns — every column gets its own shuffled page
//!   order, making cross-column selectivity the product of the per-column
//!   selectivities.
//!
//! Query generation mirrors the data: conjunctive queries place one range
//! per column, positioned so the per-column selectivity stays fixed while
//! the cross-column overlap follows the chosen correlation.

use asv_util::ValueRange;
use asv_vmem::VALUES_PER_PAGE;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How the columns of a generated table relate to each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnCorrelation {
    /// Every column follows the same page-clustered ramp: aligned
    /// predicates select (nearly) the same rows.
    Correlated,
    /// Odd columns follow the mirrored ramp (`max_value - v`): aligned
    /// predicates select (nearly) disjoint rows.
    AntiCorrelated,
    /// Every column shuffles its page order with its own stream: predicates
    /// select independent row sets.
    Independent,
}

impl ColumnCorrelation {
    /// Short name used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            ColumnCorrelation::Correlated => "correlated",
            ColumnCorrelation::AntiCorrelated => "anti-correlated",
            ColumnCorrelation::Independent => "independent",
        }
    }

    /// All correlations, in report order.
    pub fn all() -> [ColumnCorrelation; 3] {
        [
            ColumnCorrelation::Correlated,
            ColumnCorrelation::AntiCorrelated,
            ColumnCorrelation::Independent,
        ]
    }
}

/// A conjunctive query: one range predicate per column, in column order.
pub type ConjunctiveQuery = Vec<ValueRange>;

/// Generator for multi-column table data and conjunctive query sequences.
#[derive(Clone, Debug)]
pub struct TableWorkload {
    seed: u64,
}

impl TableWorkload {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates `num_columns` columns of `pages` pages each over the value
    /// domain `[0, max_value]`, page-clustered (each page's values spread
    /// around a per-page level) with the requested cross-column structure.
    pub fn clustered_columns(
        &self,
        num_columns: usize,
        pages: usize,
        correlation: ColumnCorrelation,
        max_value: u64,
    ) -> Vec<Vec<u64>> {
        assert!(num_columns > 0, "need at least one column");
        assert!(pages > 0, "need at least one page");
        let mut columns = Vec::with_capacity(num_columns);
        for col in 0..num_columns {
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ (0xC0 + col as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            // The page order decides which rows carry which levels.
            let mut page_order: Vec<usize> = (0..pages).collect();
            if correlation == ColumnCorrelation::Independent {
                page_order.shuffle(&mut rng);
            }
            let mirrored = correlation == ColumnCorrelation::AntiCorrelated && col % 2 == 1;
            let mut values = Vec::with_capacity(pages * VALUES_PER_PAGE);
            for &ordered_page in &page_order {
                let rank = ordered_page as u64;
                // Per-page level: a linear ramp over the page rank, spread
                // over a local band of ~2 page-widths for realistic overlap.
                let level = rank * max_value / pages as u64;
                let band = (max_value / pages as u64).max(1) * 2;
                for _ in 0..VALUES_PER_PAGE {
                    let v = level.saturating_add(rng.gen_range(0..=band)).min(max_value);
                    values.push(if mirrored { max_value - v } else { v });
                }
            }
            columns.push(values);
        }
        columns
    }

    /// Generates `num_queries` conjunctive queries of one range per column,
    /// each selecting `selectivity * max_value` of the domain. Correlated
    /// and anti-correlated workloads place all predicates of one query at
    /// the *same* anchor — on correlated data that selects (nearly) the
    /// same rows everywhere (large survivor sets), on anti-correlated data
    /// (mirrored odd columns) it selects (nearly) disjoint rows, collapsing
    /// the survivor set after the first residual. Independent workloads
    /// draw every predicate position separately.
    pub fn conjunctive_queries(
        &self,
        num_queries: usize,
        num_columns: usize,
        selectivity: f64,
        correlation: ColumnCorrelation,
        max_value: u64,
    ) -> Vec<ConjunctiveQuery> {
        assert!(num_queries > 0, "need at least one query");
        assert!(num_columns > 0, "need at least one column");
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity must be in (0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let width = ((max_value as f64 * selectivity).round() as u64).max(1);
        let max_start = max_value.saturating_sub(width);
        let draw = move |rng: &mut StdRng| {
            if max_start == 0 {
                0
            } else {
                rng.gen_range(0..=max_start)
            }
        };
        (0..num_queries)
            .map(|_| {
                let anchor = draw(&mut rng);
                (0..num_columns)
                    .map(|_| {
                        let start = match correlation {
                            ColumnCorrelation::Correlated | ColumnCorrelation::AntiCorrelated => {
                                anchor
                            }
                            ColumnCorrelation::Independent => draw(&mut rng),
                        };
                        ValueRange::new(start, start + width - 1)
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: u64 = 1_000_000;

    #[test]
    fn columns_are_deterministic_and_sized() {
        let w = TableWorkload::new(7);
        let a = w.clustered_columns(3, 16, ColumnCorrelation::Correlated, MAX);
        let b = TableWorkload::new(7).clustered_columns(3, 16, ColumnCorrelation::Correlated, MAX);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        for col in &a {
            assert_eq!(col.len(), 16 * VALUES_PER_PAGE);
            assert!(col.iter().all(|&v| v <= MAX));
        }
        let c = TableWorkload::new(8).clustered_columns(3, 16, ColumnCorrelation::Correlated, MAX);
        assert_ne!(a, c);
    }

    #[test]
    fn correlated_columns_select_overlapping_rows() {
        let w = TableWorkload::new(3);
        let cols = w.clustered_columns(2, 64, ColumnCorrelation::Correlated, MAX);
        let range = ValueRange::new(0, MAX / 4);
        let hits = |col: &[u64]| -> Vec<usize> {
            col.iter()
                .enumerate()
                .filter(|(_, v)| range.contains(**v))
                .map(|(i, _)| i)
                .collect()
        };
        let a = hits(&cols[0]);
        let b = hits(&cols[1]);
        let b_set: std::collections::HashSet<usize> = b.iter().copied().collect();
        let shared = a.iter().filter(|i| b_set.contains(i)).count();
        // Most qualifying rows are shared between the correlated columns.
        assert!(shared * 2 > a.len(), "{shared} shared of {}", a.len());
    }

    #[test]
    fn anti_correlated_columns_select_disjoint_rows() {
        let w = TableWorkload::new(3);
        let cols = w.clustered_columns(2, 64, ColumnCorrelation::AntiCorrelated, MAX);
        let range = ValueRange::new(0, MAX / 4);
        let a: Vec<usize> = cols[0]
            .iter()
            .enumerate()
            .filter(|(_, v)| range.contains(**v))
            .map(|(i, _)| i)
            .collect();
        let b_set: std::collections::HashSet<usize> = cols[1]
            .iter()
            .enumerate()
            .filter(|(_, v)| range.contains(**v))
            .map(|(i, _)| i)
            .collect();
        let shared = a.iter().filter(|i| b_set.contains(i)).count();
        // The same low range selects (nearly) disjoint rows.
        assert!(
            shared * 10 < a.len().max(1),
            "{shared} shared of {}",
            a.len()
        );
    }

    #[test]
    fn queries_have_fixed_width_and_follow_correlation() {
        let w = TableWorkload::new(5);
        for correlation in ColumnCorrelation::all() {
            let queries = w.conjunctive_queries(50, 3, 0.05, correlation, MAX);
            assert_eq!(queries.len(), 50);
            for q in &queries {
                assert_eq!(q.len(), 3);
                for r in q {
                    assert_eq!(r.width(), (MAX as f64 * 0.05).round() as u64);
                    assert!(r.high() <= MAX);
                }
                match correlation {
                    ColumnCorrelation::Correlated | ColumnCorrelation::AntiCorrelated => {
                        assert_eq!(q[0], q[1]);
                        assert_eq!(q[0], q[2]);
                    }
                    ColumnCorrelation::Independent => {}
                }
            }
            // Positions vary across queries.
            assert!(queries.iter().any(|q| q[0] != queries[0][0]));
        }
    }

    #[test]
    fn correlation_names() {
        assert_eq!(ColumnCorrelation::Correlated.name(), "correlated");
        assert_eq!(ColumnCorrelation::AntiCorrelated.name(), "anti-correlated");
        assert_eq!(ColumnCorrelation::Independent.name(), "independent");
        assert_eq!(ColumnCorrelation::all().len(), 3);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn invalid_selectivity_panics() {
        TableWorkload::new(0).conjunctive_queries(1, 1, 0.0, ColumnCorrelation::Correlated, MAX);
    }

    #[test]
    #[should_panic(expected = "column")]
    fn zero_columns_panic() {
        TableWorkload::new(0).clustered_columns(0, 4, ColumnCorrelation::Correlated, MAX);
    }
}
