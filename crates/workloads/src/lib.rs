//! Workload generators for the paper's evaluation.
//!
//! * [`Distribution`] — the four data distributions of §3 / Figure 2
//!   (uniform, linear, sine, sparse), generated page-clustered exactly like
//!   the paper describes them ("clustered data distributions, as seen in
//!   time series or sensor data").
//! * [`QueryWorkload`] — the query sequences of §3.2/§3.3: a shuffled
//!   selectivity sweep (Figure 4) and fixed-selectivity sequences
//!   (Figure 5).
//! * [`UpdateWorkload`] — random point updates (§3.1 and §3.4), plus
//!   hot-zone-churn rounds whose writes stay inside a moving row window
//!   with page-local values, the workload of the incremental-alignment
//!   planner (beyond the paper).
//! * [`TableWorkload`] — multi-column tables with
//!   correlated/anti-correlated/independent columns plus conjunctive query
//!   sequences, the workload of the multi-column query planner (beyond the
//!   paper).
//! * [`MixedWorkload`] — interleaved read/write streams whose write bursts
//!   arrive mid-alignment, the workload of the write-ingestion subsystem
//!   (beyond the paper).
//! * [`ServeWorkload`] — barrier-phased rounds of range/conjunctive reads
//!   interleaved with zipfian-skewed write bursts, the workload of the
//!   concurrent serving layer (beyond the paper).
//! * [`KernelWorkload`] — the isolated inputs of the `filter-kernel`
//!   microbench: a uniform column plus seeded exclusion/probe row sets and
//!   selectivity-targeted predicate ranges (beyond the paper).
//!
//! All generators are seeded and fully deterministic for a given seed.

pub mod distributions;
pub mod kernels;
pub mod queries;
pub mod streams;
pub mod tables;
pub mod updates;

pub use distributions::{Distribution, DEFAULT_MAX_VALUE};
pub use kernels::KernelWorkload;
pub use queries::{QueryWorkload, SweepSpec};
pub use streams::{
    MixedOp, MixedSpec, MixedWorkload, ServeReadOp, ServeRound, ServeSpec, ServeWorkload,
};
pub use tables::{ColumnCorrelation, ConjunctiveQuery, TableWorkload};
pub use updates::{ChurnRound, UpdateWorkload};
