//! Mixed read/write streams (beyond the paper).
//!
//! The write-ingestion subsystem of `asv_core::align` accepts writes while
//! view alignment is in flight: queued writes overlay every read and fold
//! into the next alignment round automatically. Exercising that path needs
//! workloads in which *queries and write batches interleave* — including
//! write batches that arrive mid-alignment. [`MixedWorkload`] generates
//! such streams deterministically: a seeded sequence of [`MixedOp`]s where
//! every k-th operation is a write burst and the rest are range queries of
//! bounded width.

use asv_util::ValueRange;
use asv_vmem::VALUES_PER_PAGE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One operation of a mixed read/write stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MixedOp {
    /// Answer a range query.
    Query(ValueRange),
    /// Apply (or queue, if alignment is in flight) a batch of
    /// `(row, new value)` writes.
    WriteBatch(Vec<(usize, u64)>),
}

/// Parameters of a mixed read/write stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixedSpec {
    /// Total number of operations in the stream.
    pub num_ops: usize,
    /// Every `write_every`-th operation is a write burst (`0` = read-only).
    pub write_every: usize,
    /// Number of writes per burst.
    pub writes_per_burst: usize,
    /// Width of every query range.
    pub query_width: u64,
    /// Upper bound (inclusive) of the value domain for queries and written
    /// values.
    pub max_value: u64,
}

impl Default for MixedSpec {
    fn default() -> Self {
        Self {
            num_ops: 64,
            write_every: 4,
            writes_per_burst: 16,
            query_width: 1 << 20,
            max_value: u64::MAX,
        }
    }
}

/// A generator for deterministic mixed read/write streams.
#[derive(Clone, Debug)]
pub struct MixedWorkload {
    seed: u64,
}

impl MixedWorkload {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates the operation stream for a column of `num_rows` rows.
    ///
    /// Operations `write_every, 2 * write_every, …` (1-based) are write
    /// bursts of `writes_per_burst` uniform `(row, value)` pairs; all other
    /// operations are queries of width `query_width` at uniform positions.
    /// The stream is fully determined by the seed and the spec.
    ///
    /// # Panics
    /// Panics if `num_rows == 0` while the spec contains writes, or if
    /// `query_width == 0`.
    pub fn ops(&self, spec: &MixedSpec, num_rows: usize) -> Vec<MixedOp> {
        assert!(spec.query_width > 0, "queries need a non-zero width");
        let mut rng = StdRng::seed_from_u64(self.seed);
        (1..=spec.num_ops)
            .map(|i| {
                if spec.write_every > 0 && i % spec.write_every == 0 {
                    assert!(num_rows > 0, "cannot generate writes for an empty column");
                    MixedOp::WriteBatch(
                        (0..spec.writes_per_burst)
                            .map(|_| {
                                (
                                    rng.gen_range(0..num_rows),
                                    rng.gen_range(0..=spec.max_value),
                                )
                            })
                            .collect(),
                    )
                } else {
                    let width = spec.query_width.min(spec.max_value);
                    let lo = rng.gen_range(0..=spec.max_value - width);
                    MixedOp::Query(ValueRange::new(lo, lo + width - 1))
                }
            })
            .collect()
    }
}

/// One read operation of a serving round, executed by a client thread
/// against a pinned snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeReadOp {
    /// A routed range scan of one column.
    Range {
        /// Column to scan.
        col: usize,
        /// Query range.
        range: ValueRange,
    },
    /// A planned conjunctive query over several columns.
    Conjunctive {
        /// `(column, range)` predicates, conjunctively combined.
        predicates: Vec<(usize, ValueRange)>,
    },
}

/// One barrier-phased round of the serve workload: the maintenance thread
/// applies `writes` and commits, then every client executes its share of
/// `reads` against pinned snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeRound {
    /// Reads of this round, partitioned across clients by index.
    pub reads: Vec<ServeReadOp>,
    /// `(column, row, value)` writes folded before the round's reads.
    pub writes: Vec<(usize, usize, u64)>,
}

impl ServeRound {
    /// The subset of this round's writes routed to ingest lane `shard` of
    /// `num_shards`, preserving their relative order. Uses the serving
    /// layer's page-group hash (`row / VALUES_PER_PAGE % num_shards`, the
    /// same function as `asv_core::serve::writer_shard_of`), so the
    /// partitions drive one writer thread per lane while every row's
    /// writes stay in one FIFO sequence.
    pub fn writes_for_shard(&self, shard: usize, num_shards: usize) -> Vec<(usize, usize, u64)> {
        self.writes
            .iter()
            .copied()
            .filter(|&(_, row, _)| (row / VALUES_PER_PAGE) % num_shards.max(1) == shard)
            .collect()
    }
}

/// Parameters of the serve workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeSpec {
    /// Number of barrier-phased rounds.
    pub rounds: usize,
    /// Reads per round (split across the client threads).
    pub reads_per_round: usize,
    /// Writes applied by the maintenance thread before each round.
    pub writes_per_round: usize,
    /// Width of every range predicate.
    pub query_width: u64,
    /// Every `conjunctive_every`-th read is a two-column conjunctive query
    /// (`0` = range reads only; ignored for single-column tables).
    pub conjunctive_every: usize,
    /// Upper bound (inclusive) of the value domain.
    pub max_value: u64,
    /// Zipf exponent of the written-row distribution: `0.0` is uniform,
    /// larger values concentrate writes on a hot set of low row ids.
    pub zipf_exponent: f64,
}

impl Default for ServeSpec {
    fn default() -> Self {
        Self {
            rounds: 16,
            reads_per_round: 64,
            writes_per_round: 32,
            query_width: 1 << 16,
            conjunctive_every: 4,
            max_value: u64::MAX >> 1,
            zipf_exponent: 0.99,
        }
    }
}

/// A generator for deterministic serve workloads: barrier-phased rounds of
/// range/conjunctive reads over a multi-column table interleaved with
/// zipfian-skewed write bursts.
///
/// The skew models the serving-layer stress case: a hot set of rows keeps
/// re-queueing into the write overlay while readers scan, so overlay
/// masking, page freezing and fold retirement all stay exercised.
#[derive(Clone, Debug)]
pub struct ServeWorkload {
    seed: u64,
}

impl ServeWorkload {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates the rounds for a table of `num_cols` columns of
    /// `num_rows` rows each. The stream is fully determined by the seed
    /// and the spec.
    ///
    /// # Panics
    /// Panics if `num_cols == 0`, if `num_rows == 0` while the spec
    /// contains writes, or if `query_width == 0`.
    pub fn rounds(&self, spec: &ServeSpec, num_cols: usize, num_rows: usize) -> Vec<ServeRound> {
        assert!(num_cols > 0, "serve workload needs at least one column");
        assert!(spec.query_width > 0, "queries need a non-zero width");
        assert!(
            num_rows > 0 || spec.writes_per_round == 0,
            "cannot generate writes for an empty column"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let width = spec.query_width.min(spec.max_value);
        let random_range = |rng: &mut StdRng| {
            let lo = rng.gen_range(0..=spec.max_value - width);
            ValueRange::new(lo, lo + width - 1)
        };
        (0..spec.rounds)
            .map(|_| {
                let writes = (0..spec.writes_per_round)
                    .map(|_| {
                        (
                            rng.gen_range(0..num_cols),
                            zipf_row(&mut rng, num_rows, spec.zipf_exponent),
                            rng.gen_range(0..=spec.max_value),
                        )
                    })
                    .collect();
                let reads = (1..=spec.reads_per_round)
                    .map(|i| {
                        let conjunctive = spec.conjunctive_every > 0
                            && num_cols > 1
                            && i % spec.conjunctive_every == 0;
                        if conjunctive {
                            let a = rng.gen_range(0..num_cols);
                            let b = (a + 1 + rng.gen_range(0..num_cols - 1)) % num_cols;
                            ServeReadOp::Conjunctive {
                                predicates: vec![
                                    (a, random_range(&mut rng)),
                                    (b, random_range(&mut rng)),
                                ],
                            }
                        } else {
                            ServeReadOp::Range {
                                col: rng.gen_range(0..num_cols),
                                range: random_range(&mut rng),
                            }
                        }
                    })
                    .collect();
                ServeRound { reads, writes }
            })
            .collect()
    }
}

/// Samples a row id with zipfian skew via the inverse CDF of a truncated
/// continuous power law (a standard continuous approximation of the Zipf
/// distribution): hot rows cluster at low ids, `exponent == 0` is uniform.
fn zipf_row(rng: &mut StdRng, num_rows: usize, exponent: f64) -> usize {
    debug_assert!(num_rows > 0);
    let u: f64 = rng.gen_range(0.0..1.0);
    let n = num_rows as f64;
    let rank = if exponent <= f64::EPSILON {
        u * n
    } else if (exponent - 1.0).abs() <= f64::EPSILON {
        // s = 1: inverse of the log CDF.
        n.powf(u) - 1.0
    } else {
        let s = 1.0 - exponent;
        ((n.powf(s) - 1.0) * u + 1.0).powf(1.0 / s) - 1.0
    };
    (rank as usize).min(num_rows - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_interleaved() {
        let spec = MixedSpec {
            num_ops: 12,
            write_every: 3,
            writes_per_burst: 5,
            query_width: 1_000,
            max_value: 1_000_000,
        };
        let a = MixedWorkload::new(7).ops(&spec, 10_000);
        let b = MixedWorkload::new(7).ops(&spec, 10_000);
        assert_eq!(a, b);
        assert_ne!(a, MixedWorkload::new(8).ops(&spec, 10_000));
        assert_eq!(a.len(), 12);
        for (i, op) in a.iter().enumerate() {
            match op {
                MixedOp::WriteBatch(writes) => {
                    assert_eq!((i + 1) % 3, 0, "burst at position {i}");
                    assert_eq!(writes.len(), 5);
                    assert!(writes.iter().all(|&(r, v)| r < 10_000 && v <= 1_000_000));
                }
                MixedOp::Query(range) => {
                    assert_eq!(range.width(), 1_000);
                    assert!(range.high() <= 1_000_000);
                }
            }
        }
    }

    #[test]
    fn write_every_zero_is_read_only() {
        let spec = MixedSpec {
            write_every: 0,
            ..MixedSpec::default()
        };
        let ops = MixedWorkload::new(3).ops(&spec, 0);
        assert!(ops.iter().all(|op| matches!(op, MixedOp::Query(_))));
    }

    #[test]
    #[should_panic(expected = "empty column")]
    fn writes_into_empty_column_panic() {
        let spec = MixedSpec {
            num_ops: 4,
            write_every: 1,
            ..MixedSpec::default()
        };
        MixedWorkload::new(0).ops(&spec, 0);
    }

    #[test]
    fn serve_rounds_are_deterministic_and_well_formed() {
        let spec = ServeSpec {
            rounds: 6,
            reads_per_round: 12,
            writes_per_round: 8,
            query_width: 1_000,
            conjunctive_every: 3,
            max_value: 1_000_000,
            zipf_exponent: 0.99,
        };
        let a = ServeWorkload::new(11).rounds(&spec, 3, 20_000);
        let b = ServeWorkload::new(11).rounds(&spec, 3, 20_000);
        assert_eq!(a, b);
        assert_ne!(a, ServeWorkload::new(12).rounds(&spec, 3, 20_000));
        assert_eq!(a.len(), 6);
        for round in &a {
            assert_eq!(round.writes.len(), 8);
            assert!(round
                .writes
                .iter()
                .all(|&(c, r, v)| c < 3 && r < 20_000 && v <= 1_000_000));
            assert_eq!(round.reads.len(), 12);
            for (i, read) in round.reads.iter().enumerate() {
                match read {
                    ServeReadOp::Range { col, range } => {
                        assert_ne!((i + 1) % 3, 0, "conjunctive expected at position {i}");
                        assert!(*col < 3);
                        assert_eq!(range.width(), 1_000);
                        assert!(range.high() <= 1_000_000);
                    }
                    ServeReadOp::Conjunctive { predicates } => {
                        assert_eq!((i + 1) % 3, 0, "range read expected at position {i}");
                        assert_eq!(predicates.len(), 2);
                        assert_ne!(predicates[0].0, predicates[1].0);
                        assert!(predicates.iter().all(|(c, r)| {
                            *c < 3 && r.width() == 1_000 && r.high() <= 1_000_000
                        }));
                    }
                }
            }
        }
    }

    #[test]
    fn shard_partitions_cover_every_write_once_in_order() {
        let spec = ServeSpec {
            rounds: 3,
            writes_per_round: 40,
            ..ServeSpec::default()
        };
        let rounds = ServeWorkload::new(9).rounds(&spec, 2, 8 * VALUES_PER_PAGE);
        for round in &rounds {
            for num_shards in [1usize, 2, 3] {
                let mut merged: Vec<(usize, usize, u64)> = Vec::new();
                for shard in 0..num_shards {
                    let part = round.writes_for_shard(shard, num_shards);
                    assert!(part
                        .iter()
                        .all(|&(_, row, _)| (row / VALUES_PER_PAGE) % num_shards == shard));
                    merged.extend(part);
                }
                assert_eq!(
                    merged.len(),
                    round.writes.len(),
                    "a partition, not a subset"
                );
                // Within one shard the relative write order is preserved.
                for shard in 0..num_shards {
                    let part = round.writes_for_shard(shard, num_shards);
                    let reference: Vec<_> = round
                        .writes
                        .iter()
                        .copied()
                        .filter(|&(_, row, _)| (row / VALUES_PER_PAGE) % num_shards == shard)
                        .collect();
                    assert_eq!(part, reference);
                }
            }
        }
    }

    #[test]
    fn serve_single_column_tables_get_range_reads_only() {
        let spec = ServeSpec {
            rounds: 4,
            conjunctive_every: 2,
            ..ServeSpec::default()
        };
        let rounds = ServeWorkload::new(5).rounds(&spec, 1, 10_000);
        assert!(rounds
            .iter()
            .flat_map(|r| &r.reads)
            .all(|op| matches!(op, ServeReadOp::Range { .. })));
    }

    #[test]
    fn zipf_skew_concentrates_writes_on_hot_rows() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000usize;
        let samples = 4_000;
        let hot = (0..samples)
            .filter(|_| zipf_row(&mut rng, n, 1.2) < n / 100)
            .count();
        // With exponent 1.2 far more than 1% of samples land in the first
        // 1% of rows; uniform sampling would put ~40 of 4000 there.
        assert!(hot > samples / 4, "only {hot} hot-row samples");
        let uniform = (0..samples)
            .filter(|_| zipf_row(&mut rng, n, 0.0) < n / 100)
            .count();
        assert!(uniform < samples / 10, "{uniform} uniform samples in 1%");
    }
}
