//! Mixed read/write streams (beyond the paper).
//!
//! The write-ingestion subsystem of `asv_core::align` accepts writes while
//! view alignment is in flight: queued writes overlay every read and fold
//! into the next alignment round automatically. Exercising that path needs
//! workloads in which *queries and write batches interleave* — including
//! write batches that arrive mid-alignment. [`MixedWorkload`] generates
//! such streams deterministically: a seeded sequence of [`MixedOp`]s where
//! every k-th operation is a write burst and the rest are range queries of
//! bounded width.

use asv_util::ValueRange;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One operation of a mixed read/write stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MixedOp {
    /// Answer a range query.
    Query(ValueRange),
    /// Apply (or queue, if alignment is in flight) a batch of
    /// `(row, new value)` writes.
    WriteBatch(Vec<(usize, u64)>),
}

/// Parameters of a mixed read/write stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixedSpec {
    /// Total number of operations in the stream.
    pub num_ops: usize,
    /// Every `write_every`-th operation is a write burst (`0` = read-only).
    pub write_every: usize,
    /// Number of writes per burst.
    pub writes_per_burst: usize,
    /// Width of every query range.
    pub query_width: u64,
    /// Upper bound (inclusive) of the value domain for queries and written
    /// values.
    pub max_value: u64,
}

impl Default for MixedSpec {
    fn default() -> Self {
        Self {
            num_ops: 64,
            write_every: 4,
            writes_per_burst: 16,
            query_width: 1 << 20,
            max_value: u64::MAX,
        }
    }
}

/// A generator for deterministic mixed read/write streams.
#[derive(Clone, Debug)]
pub struct MixedWorkload {
    seed: u64,
}

impl MixedWorkload {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates the operation stream for a column of `num_rows` rows.
    ///
    /// Operations `write_every, 2 * write_every, …` (1-based) are write
    /// bursts of `writes_per_burst` uniform `(row, value)` pairs; all other
    /// operations are queries of width `query_width` at uniform positions.
    /// The stream is fully determined by the seed and the spec.
    ///
    /// # Panics
    /// Panics if `num_rows == 0` while the spec contains writes, or if
    /// `query_width == 0`.
    pub fn ops(&self, spec: &MixedSpec, num_rows: usize) -> Vec<MixedOp> {
        assert!(spec.query_width > 0, "queries need a non-zero width");
        let mut rng = StdRng::seed_from_u64(self.seed);
        (1..=spec.num_ops)
            .map(|i| {
                if spec.write_every > 0 && i % spec.write_every == 0 {
                    assert!(num_rows > 0, "cannot generate writes for an empty column");
                    MixedOp::WriteBatch(
                        (0..spec.writes_per_burst)
                            .map(|_| {
                                (
                                    rng.gen_range(0..num_rows),
                                    rng.gen_range(0..=spec.max_value),
                                )
                            })
                            .collect(),
                    )
                } else {
                    let width = spec.query_width.min(spec.max_value);
                    let lo = rng.gen_range(0..=spec.max_value - width);
                    MixedOp::Query(ValueRange::new(lo, lo + width - 1))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_interleaved() {
        let spec = MixedSpec {
            num_ops: 12,
            write_every: 3,
            writes_per_burst: 5,
            query_width: 1_000,
            max_value: 1_000_000,
        };
        let a = MixedWorkload::new(7).ops(&spec, 10_000);
        let b = MixedWorkload::new(7).ops(&spec, 10_000);
        assert_eq!(a, b);
        assert_ne!(a, MixedWorkload::new(8).ops(&spec, 10_000));
        assert_eq!(a.len(), 12);
        for (i, op) in a.iter().enumerate() {
            match op {
                MixedOp::WriteBatch(writes) => {
                    assert_eq!((i + 1) % 3, 0, "burst at position {i}");
                    assert_eq!(writes.len(), 5);
                    assert!(writes.iter().all(|&(r, v)| r < 10_000 && v <= 1_000_000));
                }
                MixedOp::Query(range) => {
                    assert_eq!(range.width(), 1_000);
                    assert!(range.high() <= 1_000_000);
                }
            }
        }
    }

    #[test]
    fn write_every_zero_is_read_only() {
        let spec = MixedSpec {
            write_every: 0,
            ..MixedSpec::default()
        };
        let ops = MixedWorkload::new(3).ops(&spec, 0);
        assert!(ops.iter().all(|op| matches!(op, MixedOp::Query(_))));
    }

    #[test]
    #[should_panic(expected = "empty column")]
    fn writes_into_empty_column_panic() {
        let spec = MixedSpec {
            num_ops: 4,
            write_every: 1,
            ..MixedSpec::default()
        };
        MixedWorkload::new(0).ops(&spec, 0);
    }
}
