//! Update-batch generators (paper §3.1 and §3.4).
//!
//! The Figure 3 experiment updates "10,000 uniformly selected entries"; the
//! Figure 7 experiment applies batches of 100 to 1M updates to a column.
//! [`UpdateWorkload`] produces such batches as `(row, new value)` pairs with
//! uniformly chosen rows and values drawn uniformly from the value domain.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use asv_vmem::VALUES_PER_PAGE;

use crate::distributions::page_interval_start;

/// One round of hot-zone churn: a contiguous window of rows plus the
/// writes confined to it (see [`UpdateWorkload::hot_zone_churn`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnRound {
    /// The hot row window `[start, end)` this round's writes fall into.
    pub window: (usize, usize),
    /// The `(row, new value)` writes of the round.
    pub writes: Vec<(usize, u64)>,
}

/// A generator for random point-update batches.
#[derive(Clone, Debug)]
pub struct UpdateWorkload {
    seed: u64,
}

impl UpdateWorkload {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates `count` updates: uniformly random rows in `[0, num_rows)`
    /// and uniformly random new values in `[0, max_value]`.
    pub fn uniform_writes(
        &self,
        count: usize,
        num_rows: usize,
        max_value: u64,
    ) -> Vec<(usize, u64)> {
        assert!(num_rows > 0, "cannot generate updates for an empty column");
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..count)
            .map(|_| (rng.gen_range(0..num_rows), rng.gen_range(0..=max_value)))
            .collect()
    }

    /// Generates `count` updates whose rows are uniform but whose new values
    /// are confined to `value_range` — useful to stress a specific partial
    /// view.
    pub fn targeted_writes(
        &self,
        count: usize,
        num_rows: usize,
        value_range: (u64, u64),
    ) -> Vec<(usize, u64)> {
        assert!(num_rows > 0, "cannot generate updates for an empty column");
        assert!(value_range.0 <= value_range.1, "invalid value range");
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..count)
            .map(|_| {
                (
                    rng.gen_range(0..num_rows),
                    rng.gen_range(value_range.0..=value_range.1),
                )
            })
            .collect()
    }

    /// Generates `rounds` rounds of *hot-zone churn* for a linearly
    /// clustered column of `num_rows` rows over `[0, max_value]`
    /// ([`crate::Distribution::Linear`]'s page layout).
    ///
    /// Each round picks a fresh contiguous hot window of
    /// `ceil(num_rows * touch_fraction)` rows and confines all of its
    /// `writes_per_round` writes to that window; every new value is drawn
    /// from the *local* value interval of some page inside the window, so
    /// zone bands stay confined to the window's slice of the domain (only
    /// views whose predicate range overlaps that slice are affected) while
    /// page ↔ view membership genuinely churns — a row regularly receives
    /// a neighbouring window page's values, moving its page in and out of
    /// the views partitioning the domain. This is the adversarial pattern
    /// for incremental alignment: at small touch fractions a full replan
    /// wastes almost all of its planning work.
    pub fn hot_zone_churn(
        &self,
        rounds: usize,
        writes_per_round: usize,
        num_rows: usize,
        touch_fraction: f64,
        max_value: u64,
    ) -> Vec<ChurnRound> {
        assert!(num_rows > 0, "cannot generate updates for an empty column");
        assert!(
            (0.0..=1.0).contains(&touch_fraction),
            "touch fraction must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let num_pages = num_rows.div_ceil(VALUES_PER_PAGE).max(1);
        let window_len = ((num_rows as f64 * touch_fraction).ceil() as usize)
            .max(1)
            .min(num_rows);
        (0..rounds)
            .map(|_| {
                let start = rng.gen_range(0..=num_rows - window_len);
                let writes = (0..writes_per_round)
                    .map(|_| {
                        let row = rng.gen_range(start..start + window_len);
                        // Draw the value from the interval of another
                        // window row's page: still inside the window's
                        // slice of the domain, but membership-churning.
                        let donor = rng.gen_range(start..start + window_len);
                        let page = donor / VALUES_PER_PAGE;
                        let lo = page_interval_start(page, num_pages, max_value);
                        let hi = page_interval_start(page + 1, num_pages, max_value).max(lo + 1);
                        let value = rng.gen_range(lo..hi.min(max_value.saturating_add(1)));
                        (row, value)
                    })
                    .collect();
                ChurnRound {
                    window: (start, start + window_len),
                    writes,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_writes_are_deterministic_and_bounded() {
        let w = UpdateWorkload::new(11);
        let a = w.uniform_writes(1_000, 5_000, 999);
        let b = w.uniform_writes(1_000, 5_000, 999);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1_000);
        assert!(a.iter().all(|&(r, v)| r < 5_000 && v <= 999));
        let c = UpdateWorkload::new(12).uniform_writes(1_000, 5_000, 999);
        assert_ne!(a, c);
    }

    #[test]
    fn targeted_writes_stay_in_range() {
        let w = UpdateWorkload::new(11);
        let writes = w.targeted_writes(500, 100, (40, 60));
        assert!(writes
            .iter()
            .all(|&(r, v)| r < 100 && (40..=60).contains(&v)));
    }

    #[test]
    fn empty_batch_is_allowed() {
        let w = UpdateWorkload::new(0);
        assert!(w.uniform_writes(0, 10, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty column")]
    fn zero_rows_panics() {
        UpdateWorkload::new(0).uniform_writes(1, 0, 10);
    }

    #[test]
    fn hot_zone_churn_confines_rows_and_values() {
        let num_rows = 64 * VALUES_PER_PAGE;
        let num_pages = 64;
        let max_value = 1_000_000;
        let w = UpdateWorkload::new(7);
        let rounds = w.hot_zone_churn(10, 200, num_rows, 0.05, max_value);
        assert_eq!(rounds.len(), 10);
        let window_len = (num_rows as f64 * 0.05).ceil() as usize;
        for round in &rounds {
            let (start, end) = round.window;
            assert_eq!(end - start, window_len);
            assert!(end <= num_rows);
            assert_eq!(round.writes.len(), 200);
            // Values stay inside the *window's* slice of the domain.
            let first_page = start / VALUES_PER_PAGE;
            let last_page = (end - 1) / VALUES_PER_PAGE;
            let lo = page_interval_start(first_page, num_pages, max_value);
            let hi = page_interval_start(last_page + 1, num_pages, max_value).max(lo + 1);
            for &(row, value) in &round.writes {
                assert!((start..end).contains(&row), "row stays in the window");
                assert!(
                    value >= lo && value < hi.min(max_value + 1),
                    "value {value} stays in the window's interval [{lo}, {hi})"
                );
            }
        }
        // Deterministic per seed, distinct across seeds.
        assert_eq!(rounds, w.hot_zone_churn(10, 200, num_rows, 0.05, max_value));
        assert_ne!(
            rounds,
            UpdateWorkload::new(8).hot_zone_churn(10, 200, num_rows, 0.05, max_value)
        );
    }

    #[test]
    fn hot_zone_churn_tiny_fraction_still_touches_a_row() {
        let w = UpdateWorkload::new(3);
        let rounds = w.hot_zone_churn(3, 5, 1_000, 0.0, 999);
        for round in &rounds {
            assert_eq!(round.window.1 - round.window.0, 1);
        }
    }
}
