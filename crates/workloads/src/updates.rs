//! Update-batch generators (paper §3.1 and §3.4).
//!
//! The Figure 3 experiment updates "10,000 uniformly selected entries"; the
//! Figure 7 experiment applies batches of 100 to 1M updates to a column.
//! [`UpdateWorkload`] produces such batches as `(row, new value)` pairs with
//! uniformly chosen rows and values drawn uniformly from the value domain.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generator for random point-update batches.
#[derive(Clone, Debug)]
pub struct UpdateWorkload {
    seed: u64,
}

impl UpdateWorkload {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates `count` updates: uniformly random rows in `[0, num_rows)`
    /// and uniformly random new values in `[0, max_value]`.
    pub fn uniform_writes(
        &self,
        count: usize,
        num_rows: usize,
        max_value: u64,
    ) -> Vec<(usize, u64)> {
        assert!(num_rows > 0, "cannot generate updates for an empty column");
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..count)
            .map(|_| (rng.gen_range(0..num_rows), rng.gen_range(0..=max_value)))
            .collect()
    }

    /// Generates `count` updates whose rows are uniform but whose new values
    /// are confined to `value_range` — useful to stress a specific partial
    /// view.
    pub fn targeted_writes(
        &self,
        count: usize,
        num_rows: usize,
        value_range: (u64, u64),
    ) -> Vec<(usize, u64)> {
        assert!(num_rows > 0, "cannot generate updates for an empty column");
        assert!(value_range.0 <= value_range.1, "invalid value range");
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..count)
            .map(|_| {
                (
                    rng.gen_range(0..num_rows),
                    rng.gen_range(value_range.0..=value_range.1),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_writes_are_deterministic_and_bounded() {
        let w = UpdateWorkload::new(11);
        let a = w.uniform_writes(1_000, 5_000, 999);
        let b = w.uniform_writes(1_000, 5_000, 999);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1_000);
        assert!(a.iter().all(|&(r, v)| r < 5_000 && v <= 999));
        let c = UpdateWorkload::new(12).uniform_writes(1_000, 5_000, 999);
        assert_ne!(a, c);
    }

    #[test]
    fn targeted_writes_stay_in_range() {
        let w = UpdateWorkload::new(11);
        let writes = w.targeted_writes(500, 100, (40, 60));
        assert!(writes
            .iter()
            .all(|&(r, v)| r < 100 && (40..=60).contains(&v)));
    }

    #[test]
    fn empty_batch_is_allowed() {
        let w = UpdateWorkload::new(0);
        assert!(w.uniform_writes(0, 10, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty column")]
    fn zero_rows_panics() {
        UpdateWorkload::new(0).uniform_writes(1, 0, 10);
    }
}
