//! Data distributions (paper §3, Figure 2).
//!
//! The evaluation uses a uniform distribution plus three *clustered*
//! distributions in which the values of a page are correlated with the
//! pageID, "reflecting clustered data distributions, as seen in time series
//! or sensor data":
//!
//! * **linear** — values grow linearly with the pageID;
//! * **sine** — values follow a sine wave that "cycles every 100 pages";
//! * **sparse** — "90% of the pages are filled with zeros", the remaining
//!   pages carry uniformly distributed values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use asv_vmem::VALUES_PER_PAGE;

/// The default value domain of the experiments (`[0, 100M]`, Figure 2/3).
pub const DEFAULT_MAX_VALUE: u64 = 100_000_000;

/// A synthetic data distribution over a page-structured column.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Distribution {
    /// Uniformly random values in `[0, max_value]`; no page clustering.
    Uniform {
        /// Upper bound of the value domain (inclusive).
        max_value: u64,
    },
    /// Values grow linearly with the pageID from 0 to `max_value`; within a
    /// page, values spread uniformly over the page's local interval.
    Linear {
        /// Upper bound of the value domain (inclusive).
        max_value: u64,
    },
    /// Values follow a sine wave over the pageID with the given period (the
    /// paper uses 100 pages); within a page, values spread over a local
    /// interval around the wave.
    Sine {
        /// Upper bound of the value domain (inclusive).
        max_value: u64,
        /// Number of pages per full sine cycle.
        period_pages: usize,
    },
    /// A fraction of the pages (default 90%) contains only zeros; the
    /// remaining pages carry uniformly distributed values in
    /// `[0, max_value]`.
    Sparse {
        /// Upper bound of the value domain (inclusive).
        max_value: u64,
        /// Fraction of all-zero pages in `[0, 1]`.
        zero_page_fraction: f64,
    },
}

impl Distribution {
    /// The paper's uniform distribution over `[0, 100M]`.
    pub fn uniform() -> Self {
        Distribution::Uniform {
            max_value: DEFAULT_MAX_VALUE,
        }
    }

    /// The paper's linear distribution over `[0, 100M]`.
    pub fn linear() -> Self {
        Distribution::Linear {
            max_value: DEFAULT_MAX_VALUE,
        }
    }

    /// The paper's sine distribution over `[0, 100M]`, cycling every 100
    /// pages.
    pub fn sine() -> Self {
        Distribution::Sine {
            max_value: DEFAULT_MAX_VALUE,
            period_pages: 100,
        }
    }

    /// The paper's sparse distribution: 90% zero pages, values in
    /// `[0, 100M]`.
    pub fn sparse() -> Self {
        Distribution::Sparse {
            max_value: DEFAULT_MAX_VALUE,
            zero_page_fraction: 0.9,
        }
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Uniform { .. } => "uniform",
            Distribution::Linear { .. } => "linear",
            Distribution::Sine { .. } => "sine",
            Distribution::Sparse { .. } => "sparse",
        }
    }

    /// The upper bound of the value domain.
    pub fn max_value(&self) -> u64 {
        match *self {
            Distribution::Uniform { max_value }
            | Distribution::Linear { max_value }
            | Distribution::Sine { max_value, .. }
            | Distribution::Sparse { max_value, .. } => max_value,
        }
    }

    /// Generates the values for a column of `num_pages` pages
    /// ([`VALUES_PER_PAGE`] values per page), deterministically from `seed`.
    pub fn generate_pages(&self, num_pages: usize, seed: u64) -> Vec<u64> {
        self.generate_values(num_pages * VALUES_PER_PAGE, seed)
    }

    /// Generates `num_values` values, deterministically from `seed`.
    pub fn generate_values(&self, num_values: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_pages = num_values.div_ceil(VALUES_PER_PAGE).max(1);
        let mut out = Vec::with_capacity(num_values);
        match *self {
            Distribution::Uniform { max_value } => {
                for _ in 0..num_values {
                    out.push(rng.gen_range(0..=max_value));
                }
            }
            Distribution::Linear { max_value } => {
                // Page p covers [p/num_pages * max, (p+1)/num_pages * max).
                for i in 0..num_values {
                    let page = i / VALUES_PER_PAGE;
                    let lo = page_interval_start(page, num_pages, max_value);
                    let hi = page_interval_start(page + 1, num_pages, max_value).max(lo + 1);
                    out.push(rng.gen_range(lo..hi.min(max_value.saturating_add(1))));
                }
            }
            Distribution::Sine {
                max_value,
                period_pages,
            } => {
                // The wave is evaluated per *row*, so values cover the whole
                // domain continuously (no value bands are skipped) while
                // neighbouring rows — and hence the rows of one page — stay
                // tightly clustered, as in the paper's Figure 2b. A small
                // seeded jitter (one local step) keeps generation
                // seed-dependent without destroying the clustering.
                let period_rows = (period_pages.max(1) * VALUES_PER_PAGE) as f64;
                let amplitude = max_value as f64;
                // Maximum per-row change of the wave (its steepest slope).
                let local_step = (amplitude * std::f64::consts::PI / period_rows).max(1.0);
                for i in 0..num_values {
                    let phase = (i as f64 / period_rows) * std::f64::consts::TAU;
                    let center = (phase.sin() * 0.5 + 0.5) * amplitude;
                    let jitter = rng.gen_range(0.0..=local_step);
                    let v = (center + jitter).min(amplitude).max(0.0) as u64;
                    out.push(v.min(max_value));
                }
            }
            Distribution::Sparse {
                max_value,
                zero_page_fraction,
            } => {
                // Decide zero-ness per page, not per value.
                let mut page_is_zero = vec![false; num_pages];
                for flag in &mut page_is_zero {
                    *flag = rng.gen_bool(zero_page_fraction.clamp(0.0, 1.0));
                }
                for i in 0..num_values {
                    let page = i / VALUES_PER_PAGE;
                    if page_is_zero[page] {
                        out.push(0);
                    } else {
                        out.push(rng.gen_range(1..=max_value));
                    }
                }
            }
        }
        out
    }
}

pub(crate) fn page_interval_start(page: usize, num_pages: usize, max_value: u64) -> u64 {
    ((page as u128 * max_value as u128) / num_pages.max(1) as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGES: usize = 200;
    const SEED: u64 = 42;

    #[test]
    fn generation_is_deterministic_and_sized() {
        for dist in [
            Distribution::uniform(),
            Distribution::linear(),
            Distribution::sine(),
            Distribution::sparse(),
        ] {
            let a = dist.generate_pages(PAGES, SEED);
            let b = dist.generate_pages(PAGES, SEED);
            assert_eq!(a.len(), PAGES * VALUES_PER_PAGE);
            assert_eq!(a, b, "{} must be deterministic", dist.name());
            let c = dist.generate_pages(PAGES, SEED + 1);
            assert_ne!(a, c, "{} must depend on the seed", dist.name());
            assert!(a.iter().all(|&v| v <= dist.max_value()));
        }
    }

    #[test]
    fn names_and_max_values() {
        assert_eq!(Distribution::uniform().name(), "uniform");
        assert_eq!(Distribution::linear().name(), "linear");
        assert_eq!(Distribution::sine().name(), "sine");
        assert_eq!(Distribution::sparse().name(), "sparse");
        assert_eq!(Distribution::sine().max_value(), DEFAULT_MAX_VALUE);
    }

    #[test]
    fn linear_values_grow_with_page_id() {
        let values = Distribution::linear().generate_pages(PAGES, SEED);
        let page_mean = |p: usize| {
            let s = &values[p * VALUES_PER_PAGE..(p + 1) * VALUES_PER_PAGE];
            s.iter().sum::<u64>() as f64 / s.len() as f64
        };
        assert!(page_mean(0) < page_mean(PAGES / 2));
        assert!(page_mean(PAGES / 2) < page_mean(PAGES - 1));
        // Every page covers a narrow local interval (clustered).
        let p = PAGES / 3;
        let s = &values[p * VALUES_PER_PAGE..(p + 1) * VALUES_PER_PAGE];
        let span = s.iter().max().unwrap() - s.iter().min().unwrap();
        assert!(span <= DEFAULT_MAX_VALUE / PAGES as u64 + 1);
    }

    #[test]
    fn sine_cycles_with_the_configured_period() {
        let dist = Distribution::Sine {
            max_value: 1_000_000,
            period_pages: 100,
        };
        let values = dist.generate_pages(PAGES, SEED);
        let page_mean = |p: usize| {
            let s = &values[p * VALUES_PER_PAGE..(p + 1) * VALUES_PER_PAGE];
            s.iter().sum::<u64>() as f64 / s.len() as f64
        };
        // Pages one full period apart have similar means; a quarter period
        // apart they differ markedly.
        assert!((page_mean(10) - page_mean(110)).abs() < 0.15 * 1_000_000.0);
        assert!((page_mean(0) - page_mean(25)).abs() > 0.2 * 1_000_000.0);
    }

    #[test]
    fn sparse_has_mostly_zero_pages() {
        let values = Distribution::sparse().generate_pages(PAGES, SEED);
        let zero_pages = (0..PAGES)
            .filter(|&p| {
                values[p * VALUES_PER_PAGE..(p + 1) * VALUES_PER_PAGE]
                    .iter()
                    .all(|&v| v == 0)
            })
            .count();
        let frac = zero_pages as f64 / PAGES as f64;
        assert!(frac > 0.8 && frac < 0.97, "zero-page fraction {frac}");
    }

    #[test]
    fn uniform_fills_the_domain() {
        let values = Distribution::uniform().generate_pages(PAGES, SEED);
        let max = *values.iter().max().unwrap();
        let min = *values.iter().min().unwrap();
        assert!(max > DEFAULT_MAX_VALUE / 2);
        assert!(min < DEFAULT_MAX_VALUE / 100);
    }

    #[test]
    fn partial_page_generation() {
        let values = Distribution::linear().generate_values(10, SEED);
        assert_eq!(values.len(), 10);
        let values = Distribution::sparse().generate_values(0, SEED);
        assert!(values.is_empty());
    }
}
