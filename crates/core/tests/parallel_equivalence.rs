//! Property test: parallel and sequential scans are semantically identical.
//!
//! Seeded-RNG property loops (the workspace's offline replacement for
//! proptest) assert that for random clustered columns and random query
//! sequences, `count`, `sum`, and the *sorted* collected row ids are
//! identical across `Parallelism::Sequential` and `Threads(1..=4)`, on both
//! backends, in both routing modes — including multi-view selections whose
//! views share physical pages. The adaptive view decisions (insert /
//! replace / discard, per-view range and page count) must also be
//! independent of the degree of parallelism.

use asv_core::{AdaptiveColumn, AdaptiveConfig, Parallelism, RangeQuery, RoutingMode};
use asv_vmem::{Backend, SimBackend, VALUES_PER_PAGE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PAGES: usize = 48;
const QUERIES_PER_CASE: usize = 14;

/// Clustered data with a seeded jitter: page `p` holds values around
/// `p * 1000`, so value ranges map to page ranges and overlapping queries
/// produce partial views with shared boundary pages.
fn random_values(rng: &mut StdRng) -> Vec<u64> {
    (0..PAGES * VALUES_PER_PAGE)
        .map(|i| {
            let page = (i / VALUES_PER_PAGE) as u64;
            page * 1000 + rng.gen_range(0u64..1500)
        })
        .collect()
}

/// A sequence of random queries with overlapping ranges of varying widths.
fn random_queries(rng: &mut StdRng) -> Vec<RangeQuery> {
    let domain_max = PAGES as u64 * 1000 + 1500;
    (0..QUERIES_PER_CASE)
        .map(|_| {
            let lo = rng.gen_range(0..domain_max - 1);
            let width = rng.gen_range(500..domain_max / 3);
            RangeQuery::new(lo, (lo + width).min(domain_max))
        })
        .collect()
}

/// The observable outcome of one query sequence: per-query aggregates and
/// sorted row ids, plus the final view-set fingerprint.
#[derive(Debug, PartialEq, Eq)]
struct SequenceOutcome {
    answers: Vec<(u64, u128, Vec<u64>)>,
    views: Vec<(u64, u64, usize)>,
    maintenance: Vec<String>,
}

fn run_sequence<B: Backend>(
    backend: B,
    values: &[u64],
    queries: &[RangeQuery],
    routing: RoutingMode,
    parallelism: Parallelism,
) -> SequenceOutcome {
    let config = AdaptiveConfig::default()
        .with_routing(routing)
        .with_max_views(8)
        .with_parallelism(parallelism);
    let mut col = AdaptiveColumn::from_values(backend, values, config).expect("column");
    let mut answers = Vec::new();
    let mut maintenance = Vec::new();
    for q in queries {
        let out = col.query_collect(q).expect("query");
        let mut rows = out.rows.expect("collected rows");
        rows.sort_unstable();
        answers.push((out.count, out.sum, rows));
        maintenance.push(format!("{:?}", out.view_maintenance));
    }
    let views = col
        .views()
        .partial_views()
        .iter()
        .map(|v| (v.range().low(), v.range().high(), v.num_pages()))
        .collect();
    SequenceOutcome {
        answers,
        views,
        maintenance,
    }
}

fn check_backend<B: Backend>(make_backend: impl Fn() -> B, label: &str) {
    for case_seed in 0u64..3 {
        let mut rng = StdRng::seed_from_u64(0xE0_0D + case_seed);
        let values = random_values(&mut rng);
        let queries = random_queries(&mut rng);
        for routing in [RoutingMode::SingleView, RoutingMode::MultiView] {
            let reference = run_sequence(
                make_backend(),
                &values,
                &queries,
                routing,
                Parallelism::Sequential,
            );
            // Sanity: the reference must agree with a scalar rescan.
            for (q, (count, sum, rows)) in queries.iter().zip(&reference.answers) {
                let expected: Vec<u64> = values
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| q.range().contains(**v))
                    .map(|(i, _)| i as u64)
                    .collect();
                assert_eq!(*count, expected.len() as u64, "{label}/{routing:?}");
                assert_eq!(
                    *sum,
                    expected
                        .iter()
                        .map(|&r| values[r as usize] as u128)
                        .sum::<u128>(),
                    "{label}/{routing:?}"
                );
                assert_eq!(rows, &expected, "{label}/{routing:?}");
            }
            // Multi-view mode must actually exercise shared-page selections
            // at least once across the sequence (the data is clustered and
            // the queries overlap, so views overlap too).
            for threads in 1..=4usize {
                let outcome = run_sequence(
                    make_backend(),
                    &values,
                    &queries,
                    routing,
                    Parallelism::Threads(threads),
                );
                assert_eq!(
                    outcome, reference,
                    "{label}/{routing:?}: Threads({threads}) diverges from Sequential \
                     (case seed {case_seed})"
                );
            }
        }
    }
}

#[test]
fn parallel_matches_sequential_on_sim_backend() {
    check_backend(SimBackend::new, "sim");
}

#[cfg(target_os = "linux")]
#[test]
fn parallel_matches_sequential_on_mmap_backend() {
    check_backend(asv_vmem::MmapBackend::new, "mmap");
}

/// Shared pages between multiple selected views are the trickiest part of
/// the sharded scan (cross-view dedup); pin one deterministic multi-view
/// case and check it explicitly at every thread count.
#[test]
fn shared_page_multi_view_selection_is_parallel_safe() {
    let values: Vec<u64> = (0..PAGES * VALUES_PER_PAGE)
        .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
        .collect();
    let build = |parallelism: Parallelism| {
        let config = AdaptiveConfig::paper_multi_view(8).with_parallelism(parallelism);
        let mut col = AdaptiveColumn::from_values(SimBackend::new(), &values, config).unwrap();
        // Two overlapping views (shared pages around value 11_000), then a
        // spanning query that must use both without double counting.
        col.query(&RangeQuery::new(5_000, 12_000)).unwrap();
        col.query(&RangeQuery::new(11_000, 20_000)).unwrap();
        let out = col.query(&RangeQuery::new(6_000, 19_000)).unwrap();
        assert!(out.num_views_used() >= 2, "expected a multi-view selection");
        (out.count, out.sum, out.scanned_pages)
    };
    let reference = build(Parallelism::Sequential);
    for threads in 1..=4usize {
        assert_eq!(build(Parallelism::Threads(threads)), reference);
    }
}
