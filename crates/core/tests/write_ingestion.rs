//! Property test: concurrent write ingestion + chunked epoch alignment.
//!
//! Seeded-RNG property loops drive a column through the full write-
//! ingestion lifecycle — a directly-applied base batch shipped to a
//! chunked background alignment round, write bursts queued *mid-flight*
//! (acknowledged into the overlay), chunk-at-a-time publishing, and the
//! automatic folding of the queue into follow-up rounds — and assert, on
//! both backends, across thread counts and chunk sizes:
//!
//! * **Acknowledged-write visibility**: every read issued between a queued
//!   `write_batch` acknowledgement and the publish of the round folding it
//!   returns the written values — full scans match a scalar rescan of the
//!   model at all times, and queued rows appear in (or vanish from)
//!   collected row sets exactly as their overlay values dictate. Once the
//!   base batch's round has published, *adaptive* queries are exact against
//!   the model too, at every intermediate chunk epoch.
//! * **Drain-then-sync equivalence**: after the queue drains through its
//!   rounds, the column is bit-identical — answers *and* slot ↔ page
//!   layouts — to a twin that applied the same batches and synchronously
//!   aligned round by round; and answer-identical to a twin that applied
//!   *all* writes and ran one synchronous alignment.
//! * **Chunk-size invariance**: the final layouts do not depend on the
//!   chunk size or the planning thread count; only the number of published
//!   epochs does.

use std::collections::HashSet;

use asv_core::{
    build_view_for_range, AdaptiveColumn, AdaptiveConfig, AlignChunking, CreationOptions,
    Parallelism, RangeQuery,
};
use asv_util::ValueRange;
use asv_vmem::{Backend, SimBackend, VALUES_PER_PAGE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PAGES: usize = 40;
const VIEW_RANGES: [(u64, u64); 3] = [(3_000, 8_400), (12_000, 18_510), (25_000, 33_000)];
const BASE_UPDATES: usize = 200;
const QUERIES_PER_CASE: usize = 10;
/// Write bursts queued while round 1 (the base batch) is in flight.
const ROUND2_BURSTS: usize = 3;
/// Write bursts queued while round 2 (the first drained queue) publishes.
const ROUND3_BURSTS: usize = 2;
const WRITES_PER_BURST: usize = 40;

fn domain_max() -> u64 {
    PAGES as u64 * 1000 + 1500
}

/// Clustered data: value ranges map to page ranges, so the partial views
/// index meaningful page subsets.
fn clustered_values(rng: &mut StdRng) -> Vec<u64> {
    (0..PAGES * VALUES_PER_PAGE)
        .map(|i| {
            let page = (i / VALUES_PER_PAGE) as u64;
            page * 1000 + rng.gen_range(0u64..1500)
        })
        .collect()
}

fn random_writes(rng: &mut StdRng, count: usize) -> Vec<(usize, u64)> {
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0..PAGES * VALUES_PER_PAGE),
                rng.gen_range(0..domain_max()),
            )
        })
        .collect()
}

fn random_queries(rng: &mut StdRng) -> Vec<RangeQuery> {
    (0..QUERIES_PER_CASE)
        .map(|_| {
            let lo = rng.gen_range(0..domain_max() - 1);
            let width = rng.gen_range(500..domain_max() / 4);
            RangeQuery::new(lo, (lo + width).min(domain_max()))
        })
        .collect()
}

fn column_with_views<B: Backend>(
    backend: B,
    values: &[u64],
    config: AdaptiveConfig,
) -> AdaptiveColumn<B> {
    let mut col = AdaptiveColumn::from_values(backend, values, config).expect("column");
    for &(lo, hi) in &VIEW_RANGES {
        let range = ValueRange::new(lo, hi);
        let (buffer, _) =
            build_view_for_range(col.column(), &range, &CreationOptions::ALL).expect("view");
        col.install_view(range, buffer);
    }
    col
}

/// The slot → page layout of every partial view, in slot order.
fn view_layouts<B: Backend>(col: &AdaptiveColumn<B>) -> Vec<Vec<usize>> {
    col.views()
        .partial_views()
        .iter()
        .map(|view| {
            let table = col
                .column()
                .backend()
                .mapping_table(col.column().store(), view.buffer())
                .expect("mapping table");
            (0..view.num_pages())
                .map(|slot| table.phys_for_slot(slot).expect("dense mapped prefix"))
                .collect()
        })
        .collect()
}

fn scalar_answer(values: &[u64], q: &RangeQuery) -> (u64, u128) {
    let mut count = 0u64;
    let mut sum = 0u128;
    for &v in values {
        if q.range().contains(v) {
            count += 1;
            sum += v as u128;
        }
    }
    (count, sum)
}

/// Asserts adaptive query, full scan and row collection against the model.
fn assert_exact<B: Backend>(
    col: &mut AdaptiveColumn<B>,
    model: &[u64],
    queries: &[RangeQuery],
    ctx: &str,
) {
    for q in queries {
        let expected = scalar_answer(model, q);
        let out = col.query(q).expect("query");
        assert_eq!((out.count, out.sum), expected, "{ctx}: adaptive query");
        let full = col.full_scan(q);
        assert_eq!((full.count, full.sum), expected, "{ctx}: full scan");
        let mut rows = col.query_collect(q).expect("collect").rows.expect("rows");
        rows.sort_unstable();
        let expected_rows: Vec<u64> = model
            .iter()
            .enumerate()
            .filter(|(_, v)| q.range().contains(**v))
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(rows, expected_rows, "{ctx}: collected rows");
    }
}

#[allow(clippy::too_many_lines)]
fn check_case<B: Backend>(
    make_backend: &impl Fn() -> B,
    label: &str,
    parallelism: Parallelism,
    chunk_updates: usize,
    case_seed: u64,
) {
    let ctx = format!("{label}/threads={parallelism}/chunk={chunk_updates}/case={case_seed}");
    let mut rng = StdRng::seed_from_u64(0x1D6E_57ED ^ (case_seed * 7919));
    let values = clustered_values(&mut rng);
    let base_writes = random_writes(&mut rng, BASE_UPDATES);
    let round2_bursts: Vec<Vec<(usize, u64)>> = (0..ROUND2_BURSTS)
        .map(|_| random_writes(&mut rng, WRITES_PER_BURST))
        .collect();
    let round3_bursts: Vec<Vec<(usize, u64)>> = (0..ROUND3_BURSTS)
        .map(|_| random_writes(&mut rng, WRITES_PER_BURST))
        .collect();
    let queries = random_queries(&mut rng);

    let config = AdaptiveConfig::default()
        .with_adaptive_creation(false)
        .with_parallelism(parallelism)
        .with_chunking(AlignChunking::default().with_chunk_updates(chunk_updates));
    let mut col = column_with_views(make_backend(), &values, config);
    let mut model = values.clone();

    // Round 1: the base batch, applied directly and shipped to a chunked
    // background round.
    let base_updates = col.write_batch(&base_writes);
    for &(row, v) in &base_writes {
        model[row] = v;
    }
    col.align_views_async(&base_updates).expect("async");
    assert!(col.alignment_pending(), "{ctx}");

    // Queue the round-2 bursts mid-flight. Every acknowledged write is
    // immediately visible: full scans match the model exactly, and queued
    // rows appear in collected row sets iff their overlay value qualifies.
    for burst in &round2_bursts {
        for &(row, v) in burst {
            model[row] = v;
        }
        col.write_batch(burst);
    }
    let queued_rows: HashSet<u64> = round2_bursts
        .iter()
        .flatten()
        .map(|&(row, _)| row as u64)
        .collect();
    assert_eq!(col.write_overlay().len(), queued_rows.len(), "{ctx}");
    for q in &queries {
        let expected = scalar_answer(&model, q);
        let full = col.full_scan(q);
        assert_eq!(
            (full.count, full.sum),
            expected,
            "{ctx}: mid-round-1 full scan must see every acknowledged write"
        );
        // Adaptive queries run on the pre-batch view epoch (the base batch
        // may be invisible through stale views), but the *queued* rows are
        // overlay-resolved: their membership is exact.
        let out = col.query_collect(q).expect("collect");
        let rows: HashSet<u64> = out.rows.as_deref().expect("rows").iter().copied().collect();
        assert_eq!(rows.len() as u64, out.count, "{ctx}: count matches rows");
        for &row in &queued_rows {
            let acked = model[row as usize];
            assert_eq!(
                rows.contains(&row),
                q.range().contains(acked),
                "{ctx}: queued row {row} (acked {acked}) membership in [{}, {}]",
                q.low(),
                q.high()
            );
        }
    }

    // Publish round 1 completely; the queue auto-folds into round 2.
    let generation_before = col.view_generation();
    let r1 = col
        .publish_aligned_views()
        .expect("publish")
        .expect("round 1");
    assert_eq!(r1.batch_size, base_updates.len(), "{ctx}");
    assert!(
        col.view_generation() > generation_before,
        "{ctx}: publishing advanced at least one epoch"
    );
    assert!(
        col.alignment_pending(),
        "{ctx}: the queued bursts spawned round 2 automatically"
    );
    // From here on every affected row is either aligned (base batch) or
    // overlay-resolved (queued), so adaptive queries are exact at every
    // intermediate epoch.
    assert_exact(
        &mut col,
        &model,
        &queries,
        &format!("{ctx}: during round 2"),
    );

    // Queue the round-3 bursts while round 2 publishes.
    for burst in &round3_bursts {
        for &(row, v) in burst {
            model[row] = v;
        }
        col.write_batch(burst);
    }

    // Drive everything to completion one chunk at a time, interleaving
    // queries with the publishes: exactness must hold at every epoch.
    let mut polls = 0usize;
    while col.alignment_pending() {
        col.poll_aligned_views().expect("poll");
        let q = &queries[polls % queries.len()];
        let expected = scalar_answer(&model, q);
        let out = col.query(q).expect("between-chunk query");
        assert_eq!(
            (out.count, out.sum),
            expected,
            "{ctx}: between-chunk epoch {}",
            col.view_generation()
        );
        polls += 1;
        assert!(polls < 1_000_000, "{ctx}: poll loop runaway");
    }
    assert!(col.write_overlay().is_empty(), "{ctx}: queue drained");
    let records = col.take_chunk_records();
    assert_eq!(
        col.view_generation(),
        records.len() as u64,
        "{ctx}: one epoch per published chunk"
    );
    if chunk_updates > 0 {
        assert!(
            records.len() as u64 >= 3,
            "{ctx}: three rounds publish at least three chunks"
        );
    }
    assert_exact(&mut col, &model, &queries, &format!("{ctx}: after flush"));

    // Twin (a): same batches, synchronously aligned round by round — the
    // drained queue replayed as explicit write-then-align rounds. Layouts
    // must be bit-identical.
    let mut sync_col = column_with_views(make_backend(), &values, config);
    for batch in std::iter::once(&base_writes[..])
        .chain(std::iter::once(&round2_bursts.concat()[..]))
        .chain(std::iter::once(&round3_bursts.concat()[..]))
    {
        let updates = sync_col.write_batch(batch);
        sync_col.align_views(&updates).expect("sync align");
    }
    assert_eq!(
        view_layouts(&col),
        view_layouts(&sync_col),
        "{ctx}: chunked background and round-matched sync layouts diverge"
    );

    // Twin (b): drain everything and run ONE synchronous alignment —
    // answers must be identical (the indexed page sets agree even though
    // batch grouping may shuffle slot orders).
    let mut oneshot = column_with_views(make_backend(), &values, config);
    let mut all_writes = base_writes.clone();
    all_writes.extend(round2_bursts.concat());
    all_writes.extend(round3_bursts.concat());
    let updates = oneshot.write_batch(&all_writes);
    oneshot.align_views(&updates).expect("one-shot align");
    for q in &queries {
        let expected = scalar_answer(&model, q);
        let a = col.query(q).expect("chunked query");
        let b = oneshot.query(q).expect("one-shot query");
        assert_eq!((a.count, a.sum), expected, "{ctx}: chunked vs model");
        assert_eq!((b.count, b.sum), expected, "{ctx}: one-shot vs model");
    }
}

fn check_backend<B: Backend>(make_backend: impl Fn() -> B, label: &str) {
    let cases = [
        (Parallelism::Sequential, 0usize),
        (Parallelism::Sequential, 5),
        (Parallelism::Sequential, 64),
        (Parallelism::Threads(3), 0),
        (Parallelism::Threads(3), 5),
    ];
    for case_seed in 0u64..2 {
        for &(parallelism, chunk_updates) in &cases {
            check_case(&make_backend, label, parallelism, chunk_updates, case_seed);
        }
    }
}

#[test]
fn write_ingestion_properties_hold_on_sim_backend() {
    check_backend(SimBackend::new, "sim");
}

#[cfg(target_os = "linux")]
#[test]
fn write_ingestion_properties_hold_on_mmap_backend() {
    check_backend(asv_vmem::MmapBackend::new, "mmap");
}

/// Layouts are invariant under chunk size and planning thread count: every
/// (chunk, threads) combination ends in the byte-identical view layout.
#[test]
fn layouts_are_invariant_under_chunk_size_and_threads() {
    let mut rng = StdRng::seed_from_u64(0xC4_0FF);
    let values = clustered_values(&mut rng);
    let base = random_writes(&mut rng, 150);
    let queued = random_writes(&mut rng, 80);

    let mut reference: Option<Vec<Vec<usize>>> = None;
    for chunk_updates in [0usize, 1, 7, 1_000] {
        for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let config = AdaptiveConfig::default()
                .with_adaptive_creation(false)
                .with_parallelism(parallelism)
                .with_chunking(AlignChunking::default().with_chunk_updates(chunk_updates));
            let mut col = column_with_views(SimBackend::new(), &values, config);
            let updates = col.write_batch(&base);
            col.align_views_async(&updates).expect("async");
            col.write_batch(&queued); // queued mid-flight, auto-folded
            col.flush_pending_writes().expect("flush");
            let layouts = view_layouts(&col);
            match &reference {
                None => reference = Some(layouts),
                Some(expected) => assert_eq!(
                    &layouts, expected,
                    "chunk={chunk_updates}/threads={parallelism} layout diverged"
                ),
            }
        }
    }
}
