//! Sparse-column coverage: columns whose physical store spans far more
//! pages than their data ([`Column::from_values_with_capacity`]) must not
//! inflate any layer's view of their row mass.
//!
//! * [`ZoneStats`] zones covering only capacity pages count zero rows and
//!   carry no band;
//! * cardinality estimates are bounded by *live* rows, never by the
//!   page-capacity bound `pages × VALUES_PER_PAGE`;
//! * the conjunctive planner therefore drives with a sparse column whose
//!   live cardinality is small even when its page count dwarfs every
//!   dense column in the query — and the planned answers stay
//!   bit-identical to a naive reference filter.
//!
//! Checked on the simulation backend everywhere and on the file backend
//! on Linux.

use asv_core::{
    plan_conjunctive, AdaptiveColumn, AdaptiveConfig, PlanInput, RangeQuery, ZoneStats,
};
use asv_storage::Column;
use asv_util::ValueRange;
use asv_vmem::{Backend, SimBackend, VALUES_PER_PAGE};

const CAPACITY_PAGES: usize = 64;
const LIVE_ROWS: usize = VALUES_PER_PAGE + 37;

/// Sparse data: ~1.1 pages of live clustered values in a 64-page store.
fn sparse_values() -> Vec<u64> {
    (0..LIVE_ROWS as u64).map(|i| i * 3).collect()
}

/// Dense data: 8 full pages spanning [0, 1M), page-clustered.
fn dense_values() -> Vec<u64> {
    (0..8 * VALUES_PER_PAGE as u64)
        .map(|i| i * 1_000_000 / (8 * VALUES_PER_PAGE as u64))
        .collect()
}

fn check_zone_stats<B: Backend>(backend: B) {
    let values = sparse_values();
    let column = Column::from_values_with_capacity(backend, &values, CAPACITY_PAGES).unwrap();
    assert_eq!(column.num_pages(), CAPACITY_PAGES);
    let stats = ZoneStats::build(&column);
    let live_zone = stats.zone_of_row(0);
    assert!(stats.zone_rows(live_zone) > 0, "the live zone counts rows");
    let total_counted: usize = (0..stats.num_zones()).map(|z| stats.zone_rows(z)).sum();
    assert_eq!(
        total_counted, LIVE_ROWS,
        "zone row counts sum to the live rows, not the page capacity"
    );
    // Zones holding only capacity pages: no rows, no band.
    let last_zone = stats.num_zones() - 1;
    assert!(last_zone > live_zone, "capacity spans additional zones");
    assert_eq!(stats.zone_rows(last_zone), 0);
    assert!(stats.zone_band(last_zone).is_none());
    // The estimate is bounded by live rows, far below the capacity bound.
    let est = stats.estimate(&ValueRange::full());
    assert_eq!(est.est_rows as usize, LIVE_ROWS);
    assert!(
        (est.est_rows as usize) < CAPACITY_PAGES * VALUES_PER_PAGE / 8,
        "estimate must not scale with page capacity"
    );
}

fn check_planner_drives_with_live_rows<B: Backend>(make_backend: impl Fn() -> B) {
    let config = AdaptiveConfig::default();
    let sparse =
        Column::from_values_with_capacity(make_backend(), &sparse_values(), CAPACITY_PAGES)
            .unwrap();
    let dense = Column::from_values(make_backend(), &dense_values()).unwrap();
    let sparse_stats = ZoneStats::build(&sparse);
    let dense_stats = ZoneStats::build(&dense);
    let sparse_col = AdaptiveColumn::new(sparse, config).unwrap();
    let dense_col = AdaptiveColumn::new(dense, config).unwrap();
    // Sparse predicate: everything (~LIVE_ROWS live values). Dense
    // predicate: half the dense column (~4 pages of rows). By live rows
    // the sparse predicate is ~4x cheaper; by page capacity it would
    // look ~8x more expensive (64 pages vs 8).
    let sparse_query = RangeQuery::new(0, u64::MAX);
    let dense_query = RangeQuery::new(0, 500_000);
    let plan = plan_conjunctive(&[
        PlanInput {
            column: &sparse_col,
            stats: &sparse_stats,
            query: &sparse_query,
            promoted: false,
        },
        PlanInput {
            column: &dense_col,
            stats: &dense_stats,
            query: &dense_query,
            promoted: false,
        },
    ]);
    let driving = plan.driving().expect("plan has steps");
    assert_eq!(
        driving.input_index, 0,
        "the sparse column drives: its live cardinality is the smallest"
    );
    assert_eq!(
        driving.estimate.est_rows as usize, LIVE_ROWS,
        "the driving estimate is the live row count"
    );
}

fn check_sparse_answers_match_reference<B: Backend>(backend: B) {
    let values = sparse_values();
    let column = Column::from_values_with_capacity(backend, &values, CAPACITY_PAGES).unwrap();
    let mut adaptive = AdaptiveColumn::new(column, AdaptiveConfig::default()).unwrap();
    for (low, high) in [(0u64, u64::MAX), (100, 900), (0, 0), (2_000, 5_000)] {
        let range = ValueRange::new(low, high);
        let outcome = adaptive.query(&RangeQuery::from_range(range)).unwrap();
        let expected: Vec<u64> = values
            .iter()
            .copied()
            .filter(|v| range.contains(*v))
            .collect();
        assert_eq!(outcome.count as usize, expected.len(), "range {range:?}");
        assert_eq!(
            outcome.sum,
            expected.iter().map(|&v| v as u128).sum::<u128>(),
            "range {range:?}"
        );
    }
}

#[test]
fn sparse_zone_stats_on_sim_backend() {
    check_zone_stats(SimBackend::new());
}

#[test]
fn planner_uses_live_rows_on_sim_backend() {
    check_planner_drives_with_live_rows(SimBackend::new);
}

#[test]
fn sparse_answers_match_reference_on_sim_backend() {
    check_sparse_answers_match_reference(SimBackend::new());
}

#[cfg(target_os = "linux")]
mod file_backend {
    use super::*;

    fn with_temp_backend(run: impl FnOnce(asv_vmem::FileBackend)) {
        let backend = asv_vmem::FileBackend::temp();
        let dir = backend.dir().to_path_buf();
        run(backend);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sparse_zone_stats_on_file_backend() {
        with_temp_backend(check_zone_stats);
    }

    #[test]
    fn planner_uses_live_rows_on_file_backend() {
        let backend = asv_vmem::FileBackend::temp();
        let dir = backend.dir().to_path_buf();
        check_planner_drives_with_live_rows(|| backend.clone());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sparse_answers_match_reference_on_file_backend() {
        with_temp_backend(check_sparse_answers_match_reference);
    }
}
