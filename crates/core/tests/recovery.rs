//! Property test: crash recovery is exact at the last sealed epoch.
//!
//! Each cell builds a durable [`ServeTable`] with a deterministic
//! [`FaultPlan`] injected into its journal — the plan kills the journal at
//! the Nth append or fsync (dropping, cutting short or tearing the record,
//! or rolling back unsynced bytes), after which every journal operation
//! errors, exactly like a process killed at that instant. The table runs a
//! seeded write workload until the crash surfaces (or, if the plan never
//! fires, to a clean quiesce), then is dropped and recovered from the
//! journal alone.
//!
//! The property, swept across fault kinds × operation indices × torn/short
//! seeds × chunk sizes × backends: the recovered table's answers are
//! **bit-identical** to a never-crashed reference execution replaying
//! exactly the acknowledged batches the journal sealed —
//! `RecoveryInfo::batches_applied` is always a prefix of the acknowledged
//! batch log, never a reordering, never a partial batch.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use asv_core::{
    AdaptiveConfig, AlignChunking, DurabilityConfig, FaultPlan, RangeAnswer, ServeTable,
};
use asv_util::ValueRange;
use asv_vmem::{Backend, SimBackend, VALUES_PER_PAGE};

const PAGES: usize = 12;
const BATCHES: usize = 10;
const WRITES_PER_BATCH: usize = 4;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Clustered data: page p holds values in [p*1000, p*1000 + 510].
fn clustered_values(pages: usize) -> Vec<u64> {
    (0..pages * VALUES_PER_PAGE)
        .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
        .collect()
}

fn reference_answer(values: &[u64], range: &ValueRange) -> RangeAnswer {
    let mut answer = RangeAnswer::default();
    for &v in values {
        if range.contains(v) {
            answer.count += 1;
            answer.sum += v as u128;
        }
    }
    answer
}

fn temp_journal(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("asv-recovery-{}-{tag}-{n}.wal", std::process::id()))
}

fn config(chunk_updates: usize) -> AdaptiveConfig {
    AdaptiveConfig::default().with_chunking(
        AlignChunking::default()
            .with_chunk_updates(chunk_updates)
            .with_group_commit_idle(0),
    )
}

/// Runs one crash cell: drive a durable table into the injected fault,
/// recover from the journal, compare against the reference replay of the
/// sealed batch prefix.
fn crash_and_recover<B: Backend>(
    make_backend: impl Fn() -> B,
    fault: FaultPlan,
    workload_seed: u64,
    chunk_updates: usize,
    path: &Path,
    label: &str,
) {
    let values = clustered_values(PAGES);
    let view_range = ValueRange::new(2_000, 9_400);
    // The log of acknowledged batches, in acknowledgement order. A batch
    // enters the log only if `try_write_batch` returned Ok — the
    // write-ahead contract says an Err stages nothing.
    let mut acked: Vec<Vec<(usize, u64)>> = Vec::new();
    let mut clean_finish = false;
    {
        let durability = DurabilityConfig::new(path).with_fault(fault);
        let mut table =
            ServeTable::with_durability(make_backend(), config(chunk_updates), durability)
                .expect("journal creation performs no journal append");
        let mut rng = workload_seed;
        let mut crashed = table.add_column(&values).is_err();
        if !crashed {
            crashed = table.install_view(0, view_range).is_err();
        }
        if !crashed {
            for _ in 0..BATCHES {
                let batch: Vec<(usize, u64)> = (0..WRITES_PER_BATCH)
                    .map(|_| {
                        (
                            (splitmix(&mut rng) as usize) % values.len(),
                            splitmix(&mut rng) % 1_000_000,
                        )
                    })
                    .collect();
                match table.try_write_batch(0, &batch) {
                    Ok(()) => acked.push(batch),
                    Err(_) => {
                        crashed = true;
                        break;
                    }
                }
                if table.tick().is_err() {
                    crashed = true;
                    break;
                }
            }
        }
        if !crashed {
            clean_finish = table.quiesce().is_ok();
        }
        // Dropping the table here is the kill: no flush, no farewell.
    }
    let (table, info) = ServeTable::recover(
        make_backend(),
        config(chunk_updates),
        DurabilityConfig::new(path),
    )
    .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
    if table.num_columns() == 0 {
        // The fault killed the journal before the column load was sealed.
        assert_eq!(
            info.batches_applied, 0,
            "{label}: no batches without a column"
        );
        return;
    }
    let expected_batches = if clean_finish {
        // A clean quiesce compacts to a checkpoint: every acknowledged
        // batch is folded into the checkpoint's column values.
        assert_eq!(
            info.batches_applied, 0,
            "{label}: checkpoint holds no batches"
        );
        acked.len()
    } else {
        assert!(
            info.batches_applied <= acked.len(),
            "{label}: replay can never exceed the acknowledged log"
        );
        info.batches_applied
    };
    let mut mirror = values.clone();
    for batch in &acked[..expected_batches] {
        for &(row, value) in batch {
            mirror[row] = value;
        }
    }
    let snap = table.handle().pin();
    for range in [
        ValueRange::full(),
        view_range,
        ValueRange::new(0, 3_000),
        ValueRange::new(500_000, u64::MAX),
    ] {
        assert_eq!(
            snap.query_range(0, &range),
            reference_answer(&mirror, &range),
            "{label}: range {range:?} diverges from the sealed reference"
        );
    }
    for row in [0usize, 5, values.len() / 2, values.len() - 1] {
        assert_eq!(snap.value(0, row), mirror[row], "{label}: row {row}");
    }
}

fn sweep_backend<B: Backend>(make_backend: impl Fn() -> B + Copy, backend_tag: &str) {
    // Kill points: early ops hit the column load and the first seals, the
    // later ones land mid-batch, mid-chunk and between chunks of the
    // write phase (each acknowledged batch costs one append, each commit
    // one seal append).
    let kill_ops = [0usize, 1, 2, 3, 5, 8, 13, 21];
    for chunk_updates in [0usize, 4] {
        for op in kill_ops {
            let tag = format!("{backend_tag}-c{chunk_updates}-op{op}");
            let path = temp_journal(&tag);
            crash_and_recover(
                make_backend,
                FaultPlan::fail_append(op),
                0xA51CE ^ op as u64,
                chunk_updates,
                &path,
                &format!("{tag}-fail"),
            );
            let _ = std::fs::remove_file(&path);
            for seed in 0..3u64 {
                let path = temp_journal(&tag);
                crash_and_recover(
                    make_backend,
                    FaultPlan::short_append(op, seed),
                    0xA51CE ^ op as u64,
                    chunk_updates,
                    &path,
                    &format!("{tag}-short-s{seed}"),
                );
                let _ = std::fs::remove_file(&path);
                let path = temp_journal(&tag);
                crash_and_recover(
                    make_backend,
                    FaultPlan::torn_append(op, seed),
                    0xA51CE ^ op as u64,
                    chunk_updates,
                    &path,
                    &format!("{tag}-torn-s{seed}"),
                );
                let _ = std::fs::remove_file(&path);
            }
        }
        // Fsync faults: with one fsync per commit the op index is the
        // commit index, hitting mid-fold and between-chunk seal points.
        for op in [0usize, 1, 3, 7] {
            let tag = format!("{backend_tag}-c{chunk_updates}-fsync{op}");
            let path = temp_journal(&tag);
            crash_and_recover(
                make_backend,
                FaultPlan::fail_fsync(op),
                0xA51CE ^ (op as u64) << 8,
                chunk_updates,
                &path,
                &tag,
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn recovery_is_exact_on_sim_backend() {
    sweep_backend(SimBackend::new, "sim");
}

#[cfg(target_os = "linux")]
#[test]
fn recovery_is_exact_on_file_backend() {
    // One process-unique directory for all file-backend cells; the stores
    // persist across the simulated kills (that is the point of the
    // backend), so clean up once at the end.
    let dir = std::env::temp_dir().join(format!("asv-recovery-stores-{}", std::process::id()));
    let make = || asv_vmem::FileBackend::with_dir(&dir);
    sweep_backend(make, "file");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crashed durable table whose journal never sealed anything recovers
/// to an empty table rather than erroring.
#[test]
fn recovery_of_an_unsealed_journal_is_empty() {
    let path = temp_journal("unsealed");
    {
        let durability = DurabilityConfig::new(&path).with_fault(FaultPlan::fail_append(0));
        let mut table =
            ServeTable::with_durability(SimBackend::new(), config(4), durability).unwrap();
        assert!(table.add_column(&clustered_values(2)).is_err());
    }
    let (table, info) =
        ServeTable::recover(SimBackend::new(), config(4), DurabilityConfig::new(&path)).unwrap();
    assert_eq!(table.num_columns(), 0);
    assert_eq!(info.sealed_epoch, 0);
    assert_eq!(info.records_replayed, 0);
    let _ = std::fs::remove_file(&path);
}
