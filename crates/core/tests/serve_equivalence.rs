//! Property test: the concurrent serving layer is deterministic.
//!
//! Seeded [`ServeWorkload`]s drive a two-column [`ServeTable`] through
//! barrier-phased rounds — the maintenance thread stages and commits each
//! round's zipfian write burst, then N client threads pin epoch snapshots
//! and answer the round's range/conjunctive reads while maintenance keeps
//! ticking (publishing alignment chunks, folding the queue when grace
//! allows). Cells additionally vary the snapshot [`Parallelism`] (morsel
//! fan-out inside each read) and the number of writer threads feeding the
//! sharded ingest lanes instead of the direct maintenance write path. The
//! properties, checked on both backends across seeds, client counts,
//! thread counts, writer counts and chunk sizes:
//!
//! * **Concurrent == sequential, bit-identical**: every client-computed
//!   answer (count, sum, conjunctive row checksum) equals the answer a
//!   single-threaded twin computes for the same read of the same round —
//!   regardless of which mid-round epoch the client happened to pin.
//! * **Sequential == model**: the sequential twin's range answers match a
//!   naive rescan of a plain `Vec` mirror, and its conjunctive counts
//!   match a naive predicate intersection.
//! * **Round-phase invariance**: a twin that fully quiesces after every
//!   round (overlay empty, all folds retired) produces the same answers
//!   as the overlay-serving twin — committed acknowledgements answer
//!   identically whether they are still overlaid or already folded.
//! * **Pin consistency**: snapshots pinned mid-round never observe a
//!   partially published epoch — column count and row counts are always
//!   complete, per-client generations only move forward, and repeating a
//!   query on one snapshot is bit-identical.

use std::sync::atomic::{AtomicUsize, Ordering};

use asv_core::{AdaptiveConfig, AlignChunking, Parallelism, ServeTable, Snapshot};
use asv_util::ValueRange;
use asv_vmem::{Backend, SimBackend, VALUES_PER_PAGE};
use asv_workloads::{ServeReadOp, ServeRound, ServeSpec, ServeWorkload};

const PAGES: usize = 24;
const VIEW_RANGES: [(u64, u64); 2] = [(5_000, 9_400), (12_000, 16_500)];

/// `(count, sum, rows_checksum)` — range answers fill the first two
/// fields, conjunctive answers the first and last.
type Answer = (u64, u128, u64);

fn spec(seed_bump: u64) -> ServeSpec {
    ServeSpec {
        rounds: 5,
        reads_per_round: 24,
        writes_per_round: 30,
        query_width: 2_000 + 131 * seed_bump,
        conjunctive_every: 4,
        max_value: 30_000,
        zipf_exponent: 1.1,
    }
}

/// Clustered data: page p holds values around p*1000, so the installed
/// views index meaningful page subsets.
fn column_values(col: usize) -> Vec<u64> {
    let n = PAGES * VALUES_PER_PAGE;
    (0..n)
        .map(|i| {
            // Column 1 is the reverse clustering of column 0, so
            // conjunctive predicates intersect non-trivially.
            let row = if col == 0 { i } else { n - 1 - i };
            ((row / VALUES_PER_PAGE) * 1000 + row % VALUES_PER_PAGE) as u64
        })
        .collect()
}

fn config(chunk_updates: usize, writer_shards: usize) -> AdaptiveConfig {
    AdaptiveConfig::default().with_chunking(
        AlignChunking::default()
            .with_chunk_updates(chunk_updates)
            .with_group_commit_idle(0)
            .with_writer_shards(writer_shards.max(1)),
    )
}

fn build_table<B: Backend>(
    backend: B,
    chunk_updates: usize,
    writer_shards: usize,
) -> ServeTable<B> {
    let mut table = ServeTable::new(backend, config(chunk_updates, writer_shards));
    for (col, &(lo, hi)) in VIEW_RANGES.iter().enumerate() {
        table.add_column(&column_values(col)).expect("column");
        table
            .install_view(col, ValueRange::new(lo, hi))
            .expect("view");
    }
    table
}

fn answer<B: Backend>(snap: &Snapshot<B>, read: &ServeReadOp) -> Answer {
    match read {
        ServeReadOp::Range { col, range } => {
            let out = snap.query_range(*col, range);
            (out.count, out.sum, 0)
        }
        ServeReadOp::Conjunctive { predicates } => {
            let out = snap.query_conjunctive(predicates);
            (out.count, 0, out.rows_checksum)
        }
    }
}

fn model_answer(mirrors: &[Vec<u64>], read: &ServeReadOp) -> (u64, Option<u128>) {
    match read {
        ServeReadOp::Range { col, range } => {
            let (mut count, mut sum) = (0u64, 0u128);
            for &v in &mirrors[*col] {
                if range.contains(v) {
                    count += 1;
                    sum += v as u128;
                }
            }
            (count, Some(sum))
        }
        ServeReadOp::Conjunctive { predicates } => {
            let count = (0..mirrors[0].len())
                .filter(|&row| {
                    predicates
                        .iter()
                        .all(|(col, range)| range.contains(mirrors[*col][row]))
                })
                .count() as u64;
            (count, None)
        }
    }
}

/// Single-threaded twin: stage + commit each round's writes, then answer
/// every read from one pinned snapshot. With `quiesce_rounds` the twin
/// additionally drains the overlay completely before reading, so its
/// answers come from the folded store instead of the overlay.
fn run_sequential<B: Backend>(
    backend: B,
    rounds: &[ServeRound],
    chunk_updates: usize,
    quiesce_rounds: bool,
) -> Vec<Vec<Answer>> {
    let mut table = build_table(backend, chunk_updates, 1);
    let handle = table.handle();
    let mut mirrors = vec![column_values(0), column_values(1)];
    rounds
        .iter()
        .map(|round| {
            for &(col, row, value) in &round.writes {
                table.write(col, row, value);
                mirrors[col][row] = value;
            }
            if quiesce_rounds {
                table.quiesce().expect("quiesce");
            } else {
                table.tick().expect("tick");
            }
            let snap = handle.pin();
            round
                .reads
                .iter()
                .map(|read| {
                    let got = answer(&snap, read);
                    let (count, sum) = model_answer(&mirrors, read);
                    assert_eq!(got.0, count, "sequential twin vs naive model: count");
                    if let Some(sum) = sum {
                        assert_eq!(got.1, sum, "sequential twin vs naive model: sum");
                    }
                    got
                })
                .collect()
        })
        .collect()
}

/// Concurrent run: one maintenance thread commits each round's writes and
/// keeps ticking while `num_clients` reader threads answer the round's
/// reads (read `i` belongs to client `i % num_clients`) from freshly
/// pinned snapshots. With `num_writers > 0` the round's writes arrive via
/// that many writer threads pushing through the sharded [`TableWriter`]
/// front door (writer `w` owns shard `w`'s rows) instead of direct
/// maintenance-thread writes; reads run at `parallelism` morsel fan-out.
fn run_concurrent<B: Backend>(
    backend: B,
    rounds: &[ServeRound],
    chunk_updates: usize,
    num_clients: usize,
    parallelism: Parallelism,
    num_writers: usize,
) -> Vec<Vec<Answer>> {
    let mut table = build_table(backend, chunk_updates, num_writers.max(1));
    let handle = table.handle().with_parallelism(parallelism);
    let writer = table.writer();
    let num_rows = PAGES * VALUES_PER_PAGE;
    // Rounds the maintenance thread has committed and opened for reading.
    let round_ready = AtomicUsize::new(0);
    // Total client-round completions; round k is done at (k+1)*clients.
    let finished = AtomicUsize::new(0);
    // Rounds opened for writer threads / writer-round completions.
    let write_round_open = AtomicUsize::new(0);
    let writes_done = AtomicUsize::new(0);

    let mut answers: Vec<Vec<Answer>> = rounds
        .iter()
        .map(|round| vec![Answer::default(); round.reads.len()])
        .collect();

    std::thread::scope(|scope| {
        let round_ready = &round_ready;
        let finished = &finished;
        let write_round_open = &write_round_open;
        let writes_done = &writes_done;
        for w in 0..num_writers {
            let writer = writer.clone();
            scope.spawn(move || {
                for (k, round) in rounds.iter().enumerate() {
                    while write_round_open.load(Ordering::Acquire) <= k {
                        std::thread::yield_now();
                    }
                    for (col, row, value) in round.writes_for_shard(w, num_writers) {
                        writer.write(col, row, value);
                    }
                    writes_done.fetch_add(1, Ordering::AcqRel);
                }
            });
        }
        let clients: Vec<_> = (0..num_clients)
            .map(|client| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut out: Vec<(usize, usize, Answer)> = Vec::new();
                    let mut last_generation = 0u64;
                    for (k, round) in rounds.iter().enumerate() {
                        while round_ready.load(Ordering::Acquire) <= k {
                            std::thread::yield_now();
                        }
                        for (i, read) in round.reads.iter().enumerate() {
                            if i % num_clients != client {
                                continue;
                            }
                            let snap = handle.pin();
                            // Never a partially published epoch.
                            assert_eq!(snap.num_columns(), 2);
                            assert_eq!(snap.num_rows(0), num_rows);
                            assert_eq!(snap.num_rows(1), num_rows);
                            assert!(
                                snap.generation() >= last_generation,
                                "generations move forward only"
                            );
                            last_generation = snap.generation();
                            let got = answer(&snap, read);
                            if i % 5 == 0 {
                                assert_eq!(
                                    got,
                                    answer(&snap, read),
                                    "one snapshot answers identically twice"
                                );
                            }
                            out.push((k, i, got));
                        }
                        finished.fetch_add(1, Ordering::AcqRel);
                    }
                    out
                })
            })
            .collect();

        for (k, round) in rounds.iter().enumerate() {
            if num_writers == 0 {
                for &(col, row, value) in &round.writes {
                    table.write(col, row, value);
                }
            } else {
                // Open the round's ingest window and wait until every
                // writer thread has pushed its shard's writes into the
                // lanes; the next tick drains them before committing, so
                // the committed epoch is identical to the direct path.
                write_round_open.store(k + 1, Ordering::Release);
                while writes_done.load(Ordering::Acquire) < (k + 1) * num_writers {
                    std::thread::yield_now();
                }
            }
            // One tick commits the staged acknowledgements; every epoch a
            // client pins from here to the next round's commit answers
            // identically (chunk publishes and retires are invariant).
            table.tick().expect("tick");
            round_ready.store(k + 1, Ordering::Release);
            while finished.load(Ordering::Acquire) < (k + 1) * num_clients {
                table.tick().expect("tick");
                std::thread::yield_now();
            }
        }
        for client in clients {
            for (k, i, got) in client.join().expect("client thread") {
                answers[k][i] = got;
            }
        }
    });

    // Drain everything; the final folded state still answers every read of
    // the last round identically (no writes happened since its commit).
    table.quiesce().expect("quiesce");
    let snap = handle.pin();
    if let Some((k, round)) = rounds.iter().enumerate().next_back() {
        for (i, read) in round.reads.iter().enumerate() {
            assert_eq!(
                answer(&snap, read),
                answers[k][i],
                "post-quiesce answers match the last round"
            );
        }
    }
    answers
}

/// `(clients, reader threads, writer threads)` cells; `threads == 0`
/// means sequential snapshot execution, `writers == 0` means direct
/// maintenance-thread writes.
const CELLS: [(usize, usize, usize); 6] = [
    (1, 0, 0),
    (2, 0, 0),
    (4, 0, 0),
    (2, 2, 0),
    (2, 0, 2),
    (4, 2, 2),
];

fn check_backend<B: Backend>(make_backend: impl Fn() -> B, label: &str, seeds: u64) {
    for seed in 0..seeds {
        let workload_spec = spec(seed);
        let rounds = ServeWorkload::new(0xE9_0C * (seed + 1)).rounds(
            &workload_spec,
            2,
            PAGES * VALUES_PER_PAGE,
        );
        for &chunk_updates in &[0usize, 5] {
            let ctx = format!("{label}/seed={seed}/chunk={chunk_updates}");
            let sequential = run_sequential(make_backend(), &rounds, chunk_updates, false);
            let quiesced = run_sequential(make_backend(), &rounds, chunk_updates, true);
            assert_eq!(
                sequential, quiesced,
                "{ctx}: overlay-serving and fully-folded twins diverge"
            );
            for &(num_clients, threads, num_writers) in &CELLS {
                let parallelism = if threads == 0 {
                    Parallelism::Sequential
                } else {
                    Parallelism::from_threads(threads)
                };
                let concurrent = run_concurrent(
                    make_backend(),
                    &rounds,
                    chunk_updates,
                    num_clients,
                    parallelism,
                    num_writers,
                );
                assert_eq!(
                    concurrent, sequential,
                    "{ctx}/clients={num_clients}/threads={threads}/writers={num_writers}: \
                     concurrent answers diverge"
                );
            }
        }
    }
}

#[test]
fn serve_concurrent_matches_sequential_sim() {
    check_backend(SimBackend::new, "sim", 2);
}

#[cfg(target_os = "linux")]
#[test]
fn serve_concurrent_matches_sequential_mmap() {
    check_backend(asv_vmem::MmapBackend::new, "mmap", 1);
}
