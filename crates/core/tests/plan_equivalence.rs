//! Property test: planned conjunctive execution returns bit-identical row
//! sets to the naive scan-all-then-intersect path — across seeds, column
//! counts, correlations, selectivities, thread counts and both backends —
//! and both agree with a reference filter over the raw values.
//!
//! The two tables evolve their view sets independently (the planned table
//! only adapts the driving/promoted columns), so agreement here proves the
//! *answers* are execution-strategy-independent, which is the acceptance
//! bar of the planner refactor.

use asv_core::{
    AdaptiveConfig, AdaptiveTable, Parallelism, PlannerConfig, QueryExecution, RangeQuery,
};
use asv_vmem::{Backend, MmapBackend, SimBackend};

/// Deterministic pseudo-random stream (xorshift) — the core crate's tests
/// avoid depending on `rand`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

const PAGES: usize = 12;
const MAX: u64 = 1_000_000;

/// Page-clustered column data; `mirror` flips the ramp (anti-correlation).
fn column_values(pages: usize, mirror: bool, rng: &mut Rng) -> Vec<u64> {
    let values_per_page = asv_vmem::VALUES_PER_PAGE;
    let mut values = Vec::with_capacity(pages * values_per_page);
    for page in 0..pages {
        let level = page as u64 * MAX / pages as u64;
        let band = (MAX / pages as u64) * 2;
        for _ in 0..values_per_page {
            let v = (level + rng.next() % band).min(MAX);
            values.push(if mirror { MAX - v } else { v });
        }
    }
    values
}

fn build_table<B: Backend>(
    make_backend: &impl Fn() -> B,
    columns: &[Vec<u64>],
    threads: usize,
    planned: bool,
) -> AdaptiveTable<B> {
    let parallelism = Parallelism::from_threads(threads);
    let config = AdaptiveConfig::default().with_parallelism(parallelism);
    let mut table = AdaptiveTable::new("t");
    for (i, values) in columns.iter().enumerate() {
        table
            .add_column(format!("c{i}"), make_backend(), values, config)
            .unwrap();
    }
    table.set_planner_config(
        PlannerConfig::default()
            .with_enabled(planned)
            .with_parallelism(parallelism),
    );
    table
}

fn reference_rows(columns: &[Vec<u64>], predicates: &[(String, RangeQuery)]) -> Vec<u64> {
    let num_rows = columns[0].len();
    (0..num_rows)
        .filter(|&row| {
            predicates.iter().enumerate().all(|(c, (_, q))| {
                // Predicate c targets column c by construction.
                q.range().contains(columns[c][row])
            })
        })
        .map(|row| row as u64)
        .collect()
}

fn check_equivalence<B: Backend>(make_backend: impl Fn() -> B, label: &str) {
    for seed in [3u64, 77] {
        for num_columns in [2usize, 3] {
            for mirrored in [false, true] {
                for selectivity in [0.02f64, 0.25] {
                    for threads in [1usize, 3] {
                        let mut rng = Rng(seed * 0x9E37_79B9 + 1);
                        let columns: Vec<Vec<u64>> = (0..num_columns)
                            .map(|c| column_values(PAGES, mirrored && c % 2 == 1, &mut rng))
                            .collect();
                        let mut planned = build_table(&make_backend, &columns, threads, true);
                        let mut naive = build_table(&make_backend, &columns, threads, false);

                        let width = ((MAX as f64 * selectivity) as u64).max(1);
                        for q in 0..8 {
                            let anchor = rng.next() % (MAX - width);
                            // Alternate aligned and per-column anchors so
                            // the driving choice varies.
                            let predicates: Vec<(String, RangeQuery)> = (0..num_columns)
                                .map(|c| {
                                    let start = if q % 2 == 0 {
                                        anchor
                                    } else {
                                        rng.next() % (MAX - width)
                                    };
                                    (format!("c{c}"), RangeQuery::new(start, start + width - 1))
                                })
                                .collect();
                            let refs: Vec<(&str, RangeQuery)> =
                                predicates.iter().map(|(n, q)| (n.as_str(), *q)).collect();
                            let p = planned.query_conjunctive(&refs).unwrap();
                            let n = naive.query_conjunctive(&refs).unwrap();
                            let expected = reference_rows(&columns, &predicates);
                            let ctx = format!(
                                "{label} seed={seed} cols={num_columns} mirrored={mirrored} \
                                 sel={selectivity} threads={threads} q={q}"
                            );
                            assert_eq!(p.rows, expected, "planned vs reference: {ctx}");
                            assert_eq!(n.rows, expected, "naive vs reference: {ctx}");
                            assert!(p.plan.is_some(), "{ctx}");
                            assert!(n.plan.is_none(), "{ctx}");
                            // Executed-order bookkeeping is a permutation of
                            // the inputs and maps every predicate to an
                            // outcome.
                            let mut order = p.executed_order.clone();
                            order.sort_unstable();
                            assert_eq!(order, (0..num_columns).collect::<Vec<_>>(), "{ctx}");
                            for input in 0..num_columns {
                                assert!(p.outcome_for_input(input).is_some(), "{ctx}");
                            }
                            // The driving step ran the adaptive path.
                            assert_eq!(p.per_column[0].executed, QueryExecution::Adaptive, "{ctx}");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn planned_matches_naive_and_reference_sim() {
    check_equivalence(SimBackend::new, "sim");
}

#[test]
fn planned_matches_naive_and_reference_mmap() {
    check_equivalence(MmapBackend::new, "mmap");
}

/// Thread counts must not change planned answers *or* plans: the same
/// query sequence on tables that only differ in parallelism produces
/// identical row sets, executed orders and per-step page counts.
#[test]
fn planned_execution_is_thread_count_invariant() {
    let mut rng = Rng(0xDEADBEEF);
    let columns: Vec<Vec<u64>> = (0..3)
        .map(|_| column_values(PAGES, false, &mut rng))
        .collect();
    let make = SimBackend::new;
    let mut sequential = build_table(&make, &columns, 1, true);
    let mut threaded = build_table(&make, &columns, 4, true);
    for q in 0..10 {
        let width = 30_000 + (q as u64) * 11_000;
        let anchor = rng.next() % (MAX - width);
        let predicates: Vec<(String, RangeQuery)> = (0..3)
            .map(|c| (format!("c{c}"), RangeQuery::new(anchor, anchor + width - 1)))
            .collect();
        let refs: Vec<(&str, RangeQuery)> =
            predicates.iter().map(|(n, q)| (n.as_str(), *q)).collect();
        let a = sequential.query_conjunctive(&refs).unwrap();
        let b = threaded.query_conjunctive(&refs).unwrap();
        assert_eq!(a.rows, b.rows, "q={q}");
        assert_eq!(a.executed_order, b.executed_order, "q={q}");
        let pages = |o: &asv_core::ConjunctiveOutcome| -> Vec<usize> {
            o.per_column.iter().map(|s| s.scanned_pages).collect()
        };
        assert_eq!(pages(&a), pages(&b), "q={q}");
    }
}
