//! Property test: background (epoch-handoff) alignment, synchronous
//! alignment and a rebuild-from-scratch are semantically identical.
//!
//! Seeded-RNG property loops (the workspace's offline replacement for
//! proptest) drive random update batches through three twin columns per
//! case — one aligned in the background, one aligned synchronously, one
//! rebuilt from scratch — and assert, on both backends:
//!
//! * all three answer random range queries identically after the batch is
//!   visible (checked against a scalar rescan of the raw values);
//! * background and synchronous alignment publish *identical slot ↔ page
//!   layouts* (the epoch handoff replays the exact ops the synchronous
//!   path executes — bit-identical by construction, verified here);
//! * queries issued mid-alignment are answered on the pre-batch view epoch
//!   (same answers as right before the alignment started) and the view
//!   generation only advances at publish time.

use asv_core::{
    build_view_for_range, AdaptiveColumn, AdaptiveConfig, CreationOptions, Parallelism, RangeQuery,
};
use asv_storage::Column;
use asv_util::ValueRange;
use asv_vmem::{Backend, SimBackend, VALUES_PER_PAGE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PAGES: usize = 40;
const VIEW_RANGES: [(u64, u64); 3] = [(3_000, 8_400), (12_000, 18_510), (25_000, 33_000)];
const UPDATES_PER_BATCH: usize = 300;
const QUERIES_PER_CASE: usize = 12;

/// Clustered data: value ranges map to page ranges, so the partial views
/// index meaningful page subsets.
fn clustered_values(rng: &mut StdRng) -> Vec<u64> {
    (0..PAGES * VALUES_PER_PAGE)
        .map(|i| {
            let page = (i / VALUES_PER_PAGE) as u64;
            page * 1000 + rng.gen_range(0u64..1500)
        })
        .collect()
}

/// Random writes across the whole column; values land inside and around
/// the view ranges so batches trigger both page additions and removals.
fn random_writes(rng: &mut StdRng) -> Vec<(usize, u64)> {
    let domain_max = PAGES as u64 * 1000 + 1500;
    (0..UPDATES_PER_BATCH)
        .map(|_| {
            let row = rng.gen_range(0..PAGES * VALUES_PER_PAGE);
            let value = rng.gen_range(0..domain_max);
            (row, value)
        })
        .collect()
}

fn random_queries(rng: &mut StdRng) -> Vec<RangeQuery> {
    let domain_max = PAGES as u64 * 1000 + 1500;
    (0..QUERIES_PER_CASE)
        .map(|_| {
            let lo = rng.gen_range(0..domain_max - 1);
            let width = rng.gen_range(500..domain_max / 4);
            RangeQuery::new(lo, (lo + width).min(domain_max))
        })
        .collect()
}

/// Builds an adaptive column with the three fixed partial views installed
/// (adaptive creation disabled so all twins keep identical view sets).
fn column_with_views<B: Backend>(backend: B, values: &[u64]) -> AdaptiveColumn<B> {
    let config = AdaptiveConfig::default().with_adaptive_creation(false);
    let mut col = AdaptiveColumn::from_values(backend, values, config).expect("column");
    for &(lo, hi) in &VIEW_RANGES {
        let range = ValueRange::new(lo, hi);
        let (buffer, _) =
            build_view_for_range(col.column(), &range, &CreationOptions::ALL).expect("view");
        col.install_view(range, buffer);
    }
    col
}

/// The slot → page layout of every partial view, in slot order.
fn view_layouts<B: Backend>(col: &AdaptiveColumn<B>) -> Vec<Vec<usize>> {
    col.views()
        .partial_views()
        .iter()
        .map(|view| {
            let table = col
                .column()
                .backend()
                .mapping_table(col.column().store(), view.buffer())
                .expect("mapping table");
            (0..view.num_pages())
                .map(|slot| table.phys_for_slot(slot).expect("dense mapped prefix"))
                .collect()
        })
        .collect()
}

fn scalar_answer(values: &[u64], q: &RangeQuery) -> (u64, u128) {
    let mut count = 0u64;
    let mut sum = 0u128;
    for &v in values {
        if q.range().contains(v) {
            count += 1;
            sum += v as u128;
        }
    }
    (count, sum)
}

fn check_backend<B: Backend>(make_backend: impl Fn() -> B, label: &str) {
    for case_seed in 0u64..3 {
        let mut rng = StdRng::seed_from_u64(0xA116_4E55 + case_seed);
        let mut values = clustered_values(&mut rng);
        let writes = random_writes(&mut rng);
        let queries = random_queries(&mut rng);

        let mut background = column_with_views(make_backend(), &values);
        let mut sync = column_with_views(make_backend(), &values);
        let mut rebuilt = column_with_views(make_backend(), &values);

        let bg_updates = background.write_batch(&writes);
        let sync_updates = sync.write_batch(&writes);
        rebuilt.write_batch(&writes);
        for &(row, value) in &writes {
            values[row] = value;
        }

        // Freeze the pre-publish epoch: answers of all queries against the
        // stale (pre-batch) views.
        let stale: Vec<(u64, u128)> = queries
            .iter()
            .map(|q| {
                let out = background.query(q).expect("stale query");
                (out.count, out.sum)
            })
            .collect();

        // Kick off the background alignment and interleave the query
        // sequence with the in-flight worker: every answer must come from
        // the pre-batch epoch.
        let generation_before = background.view_generation();
        background.align_views_async(&bg_updates).expect("async");
        assert!(background.alignment_pending(), "{label}/case{case_seed}");
        for (q, &(count, sum)) in queries.iter().zip(&stale) {
            let out = background.query(q).expect("mid-alignment query");
            assert_eq!(
                (out.count, out.sum),
                (count, sum),
                "{label}/case{case_seed}: mid-alignment answer left the pre-batch epoch"
            );
        }
        assert_eq!(background.view_generation(), generation_before);

        // Publish; align the synchronous twin (planning fork-joined over 3
        // workers — parallel and sequential planning must agree too);
        // rebuild the third twin from scratch.
        let bg_stats = background
            .publish_aligned_views()
            .expect("publish")
            .expect("a plan was pending");
        assert_eq!(background.view_generation(), generation_before + 1);
        let sync_config_stats = {
            let col = &mut sync;
            col.align_views(&sync_updates).expect("sync align")
        };
        assert_eq!(
            (bg_stats.pages_added, bg_stats.pages_removed),
            (
                sync_config_stats.pages_added,
                sync_config_stats.pages_removed
            ),
            "{label}/case{case_seed}: background and sync stats diverge"
        );
        rebuilt.rebuild_views().expect("rebuild");

        // Background == sync: identical slot ↔ page layouts, not just
        // identical page sets.
        assert_eq!(
            view_layouts(&background),
            view_layouts(&sync),
            "{label}/case{case_seed}: background and sync layouts diverge"
        );

        // All three twins answer every query identically, and correctly.
        for q in &queries {
            let expected = scalar_answer(&values, q);
            let b = background.query(q).expect("background query");
            let s = sync.query(q).expect("sync query");
            let r = rebuilt.query(q).expect("rebuilt query");
            let f = background.full_scan(q);
            for (who, out) in [
                ("background", (b.count, b.sum)),
                ("sync", (s.count, s.sum)),
                ("rebuilt", (r.count, r.sum)),
                ("full-scan", (f.count, f.sum)),
            ] {
                assert_eq!(
                    out, expected,
                    "{label}/case{case_seed}: {who} disagrees with the scalar rescan"
                );
            }
        }
    }
}

#[test]
fn background_sync_and_rebuild_agree_on_sim_backend() {
    check_backend(SimBackend::new, "sim");
}

#[cfg(target_os = "linux")]
#[test]
fn background_sync_and_rebuild_agree_on_mmap_backend() {
    check_backend(asv_vmem::MmapBackend::new, "mmap");
}

/// The raw (non-AdaptiveColumn) pipeline: planning with different degrees
/// of parallelism must produce identical plans, and replaying a plan on a
/// twin column must equal in-place synchronous alignment.
#[test]
fn plan_replay_equals_in_place_alignment() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let values = clustered_values(&mut rng);
    let writes = random_writes(&mut rng);

    let build = || {
        let column = Column::from_values(SimBackend::new(), &values).expect("column");
        let mut views = asv_core::ViewSet::new(8);
        for &(lo, hi) in &VIEW_RANGES {
            let range = ValueRange::new(lo, hi);
            let (buffer, _) =
                build_view_for_range(&column, &range, &CreationOptions::ALL).expect("view");
            views.insert_unchecked(range, buffer);
        }
        (column, views)
    };

    let (mut col_a, mut views_a) = build();
    let updates = col_a.write_batch(&writes);
    let snapshot = asv_core::snapshot_alignment(&col_a, &views_a, &updates).expect("snapshot");
    let plan_seq = asv_core::plan_alignment(&snapshot, Parallelism::Sequential);
    let plan_par = asv_core::plan_alignment(&snapshot, Parallelism::Threads(4));
    for (a, b) in plan_seq.views.iter().zip(&plan_par.views) {
        assert_eq!(a.ops, b.ops, "parallel planning changed the ops");
        assert_eq!(a.view_idx, b.view_idx);
    }
    asv_core::apply_plan(&col_a, &mut views_a, &plan_seq).expect("apply");

    let (mut col_b, mut views_b) = build();
    let updates_b = col_b.write_batch(&writes);
    asv_core::align_views_after_updates(&col_b, &mut views_b, &updates_b).expect("sync");

    for idx in 0..views_a.num_partial_views() {
        let table_a = col_a
            .backend()
            .mapping_table(col_a.store(), views_a.partial_view(idx).unwrap().buffer())
            .unwrap();
        let table_b = col_b
            .backend()
            .mapping_table(col_b.store(), views_b.partial_view(idx).unwrap().buffer())
            .unwrap();
        let layout = |t: &asv_vmem::MappingTable, n: usize| -> Vec<usize> {
            (0..n).map(|s| t.phys_for_slot(s).unwrap()).collect()
        };
        let n = views_a.partial_view(idx).unwrap().num_pages();
        assert_eq!(n, views_b.partial_view(idx).unwrap().num_pages());
        assert_eq!(layout(&table_a, n), layout(&table_b, n), "view {idx}");
    }
}
