//! Property test: dependency-pruned incremental alignment is exact.
//!
//! Seeded hot-zone-churn batches ([`asv_workloads::UpdateWorkload`])
//! drive twin view sets through three maintenance paths — the
//! delta-restricted incremental planner, a full replan and a
//! rebuild-from-scratch — and assert, on both backends across seeds,
//! view counts, touch fractions and chunk sizes:
//!
//! * the delta computed from the dependency graph names **exactly** the
//!   views whose predicate range overlaps a touched zone's band (checked
//!   against an independent linear scan over the views);
//! * the restricted snapshot plans exactly those views, and replaying
//!   its chunked plan publishes *identical slot ↔ page layouts* to the
//!   full replan — untouched views keep their mapping verbatim;
//! * all three paths leave every view indexing the same page set;
//! * at the serving layer, draining the per-view delta queue item by
//!   item answers every query bit-identically to the full-replan twin
//!   and to a naive `Vec` mirror, for every delta-items-per-tick budget.

use asv_core::{
    build_view_for_range, compute_alignment_delta, plan_alignment, plan_alignment_chunked,
    rebuild_all_views, snapshot_alignment, snapshot_alignment_delta, AdaptiveConfig, AlignChunking,
    CreationOptions, Parallelism, ServeTable, ViewSet, ZoneStats,
};
use asv_storage::Column;
use asv_util::ValueRange;
use asv_vmem::{Backend, SimBackend, VALUES_PER_PAGE};
use asv_workloads::{ChurnRound, Distribution, UpdateWorkload};

const PAGES: usize = 32;
const MAX_VALUE: u64 = 320_000;
const WRITES_PER_ROUND: usize = 120;

/// `V` contiguous views partitioning `[0, MAX_VALUE]`.
fn view_ranges(views: usize) -> Vec<ValueRange> {
    let width = (MAX_VALUE / views as u64).max(1);
    (0..views as u64)
        .map(|i| {
            let lo = i * width;
            let hi = if i + 1 == views as u64 {
                MAX_VALUE
            } else {
                (i + 1) * width - 1
            };
            ValueRange::new(lo, hi.max(lo))
        })
        .collect()
}

fn build_column_with_views<B: Backend>(
    backend: B,
    values: &[u64],
    ranges: &[ValueRange],
) -> (Column<B>, ViewSet<B>) {
    let column = Column::from_values(backend, values).expect("column");
    let mut views = ViewSet::new(ranges.len() + 1);
    for r in ranges {
        let (buffer, _) = build_view_for_range(&column, r, &CreationOptions::ALL).expect("view");
        views.insert_unchecked(*r, buffer);
    }
    (column, views)
}

/// The slot → page layout of every partial view, in slot order.
fn layouts<B: Backend>(column: &Column<B>, views: &ViewSet<B>) -> Vec<Vec<usize>> {
    views
        .partial_views()
        .iter()
        .map(|view| {
            let table = column
                .backend()
                .mapping_table(column.store(), view.buffer())
                .expect("mapping table");
            (0..view.num_pages())
                .map(|slot| table.phys_for_slot(slot).expect("dense mapped prefix"))
                .collect()
        })
        .collect()
}

/// Per-view page *sets* (layouts with the slot order erased).
fn page_sets(layouts: &[Vec<usize>]) -> Vec<Vec<usize>> {
    layouts
        .iter()
        .map(|l| {
            let mut pages = l.clone();
            pages.sort_unstable();
            pages
        })
        .collect()
}

/// The set of views a full replan would find affected, computed by a
/// plain linear scan over the views — the independent reference for the
/// dependency graph's interval query.
fn affected_by_linear_scan<B: Backend>(
    stats: &ZoneStats,
    views: &ViewSet<B>,
    updates: &[asv_storage::Update],
) -> Vec<usize> {
    let mut affected: Vec<usize> = views
        .iter()
        .filter(|(_, view)| {
            updates.iter().any(|u| {
                let mut band = stats
                    .zone_band(stats.zone_of_row(u.row as usize))
                    .unwrap_or_else(|| ValueRange::point(u.old_value));
                band.extend_to(u.old_value);
                band.extend_to(u.new_value);
                band.overlaps(view.range())
            })
        })
        .map(|(idx, _)| idx)
        .collect();
    affected.sort_unstable();
    affected
}

fn check_raw_pipeline<B: Backend>(make_backend: impl Fn() -> B, label: &str) {
    for seed in 0u64..2 {
        for &num_views in &[4usize, 9] {
            for &touch_permille in &[20usize, 300] {
                for &chunk_updates in &[0usize, 16] {
                    let case = format!(
                        "{label}/seed{seed}/views{num_views}/touch{touch_permille}\
                         /chunk{chunk_updates}"
                    );
                    let values = Distribution::Linear {
                        max_value: MAX_VALUE,
                    }
                    .generate_pages(PAGES, seed);
                    let ranges = view_ranges(num_views);
                    let churn = UpdateWorkload::new(seed ^ 0x1AC4E).hot_zone_churn(
                        3,
                        WRITES_PER_ROUND,
                        PAGES * VALUES_PER_PAGE,
                        touch_permille as f64 / 1_000.0,
                        MAX_VALUE,
                    );

                    let (mut col_inc, mut views_inc) =
                        build_column_with_views(make_backend(), &values, &ranges);
                    let (mut col_full, mut views_full) =
                        build_column_with_views(make_backend(), &values, &ranges);
                    let (mut col_rebuild, mut views_rebuild) =
                        build_column_with_views(make_backend(), &values, &ranges);
                    let mut stats = ZoneStats::build(&col_inc);

                    for (round_idx, ChurnRound { writes, .. }) in churn.iter().enumerate() {
                        // Incremental twin: eager band widening at ack,
                        // then a delta-restricted snapshot + chunked plan.
                        let updates = col_inc.write_batch(writes);
                        for &(row, value) in writes {
                            stats.note_write(row, value);
                        }
                        let delta = compute_alignment_delta(&stats, &views_inc, &updates);
                        let expected = affected_by_linear_scan(&stats, &views_inc, &updates);
                        let mut planned: Vec<usize> =
                            delta.items.iter().map(|i| i.view_idx).collect();
                        planned.sort_unstable();
                        assert_eq!(
                            planned, expected,
                            "{case}/round{round_idx}: the dependency graph must name \
                             exactly the views whose range intersects a touched band"
                        );
                        assert_eq!(delta.num_affected(), expected.len());
                        assert_eq!(delta.total_views, num_views);

                        let snapshot =
                            snapshot_alignment_delta(&col_inc, &views_inc, &updates, &delta)
                                .expect("delta snapshot");
                        assert_eq!(
                            snapshot.num_planned_views(),
                            expected.len(),
                            "{case}/round{round_idx}: the snapshot plans only delta views"
                        );
                        let chunked = plan_alignment_chunked(
                            &snapshot,
                            Parallelism::Sequential,
                            chunk_updates,
                        );
                        for chunk in &chunked.chunks {
                            asv_core::apply_plan(&col_inc, &mut views_inc, chunk).expect("apply");
                        }

                        // Full-replan twin.
                        let updates_full = col_full.write_batch(writes);
                        let snapshot_full =
                            snapshot_alignment(&col_full, &views_full, &updates_full)
                                .expect("full snapshot");
                        assert_eq!(snapshot_full.num_planned_views(), num_views);
                        let plan = plan_alignment(&snapshot_full, Parallelism::Sequential);
                        asv_core::apply_plan(&col_full, &mut views_full, &plan).expect("apply");

                        // Rebuild twin.
                        col_rebuild.write_batch(writes);
                        rebuild_all_views(&col_rebuild, &mut views_rebuild, &CreationOptions::ALL)
                            .expect("rebuild");

                        let inc_layouts = layouts(&col_inc, &views_inc);
                        let full_layouts = layouts(&col_full, &views_full);
                        assert_eq!(
                            inc_layouts, full_layouts,
                            "{case}/round{round_idx}: incremental and full replan \
                             must publish identical slot layouts"
                        );
                        assert_eq!(
                            page_sets(&inc_layouts),
                            page_sets(&layouts(&col_rebuild, &views_rebuild)),
                            "{case}/round{round_idx}: incremental diverged from rebuild"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn incremental_equals_full_replan_and_rebuild_sim() {
    check_raw_pipeline(SimBackend::new, "sim");
}

#[cfg(target_os = "linux")]
#[test]
fn incremental_equals_full_replan_and_rebuild_mmap() {
    check_raw_pipeline(asv_vmem::MmapBackend::new, "mmap");
}

/// A batch whose zones' bands miss every view plans nothing at all.
#[test]
fn untouched_views_produce_an_empty_delta() {
    let values = Distribution::Linear {
        max_value: MAX_VALUE,
    }
    .generate_pages(PAGES, 1);
    // Views over the low half of the domain only.
    let ranges: Vec<ValueRange> = view_ranges(8).into_iter().take(4).collect();
    let (mut column, views) = build_column_with_views(SimBackend::new(), &values, &ranges);
    let mut stats = ZoneStats::build(&column);
    // Rewrite rows of the last page (top of the linear domain) with
    // top-of-domain values: bands stay far above every view range.
    let writes: Vec<(usize, u64)> = (0..40)
        .map(|i| ((PAGES - 1) * VALUES_PER_PAGE + i, MAX_VALUE - i as u64))
        .collect();
    let updates = column.write_batch(&writes);
    for &(row, value) in &writes {
        stats.note_write(row, value);
    }
    let delta = compute_alignment_delta(&stats, &views, &updates);
    assert_eq!(delta.num_affected(), 0, "no view overlaps the written band");
    assert!(delta.touched_zones > 0);
    let snapshot = snapshot_alignment_delta(&column, &views, &updates, &delta).expect("snapshot");
    assert!(snapshot.num_planned_views() == 0);
    let plan = plan_alignment(&snapshot, Parallelism::Sequential);
    assert!(plan.views.is_empty(), "nothing to plan, nothing planned");
}

fn serve_config(incremental: bool, delta_items_per_tick: usize, chunk: usize) -> AdaptiveConfig {
    AdaptiveConfig::default().with_chunking(
        AlignChunking::default()
            .with_chunk_updates(chunk)
            .with_group_commit_idle(0)
            .with_incremental_align(incremental)
            .with_delta_items_per_tick(delta_items_per_tick),
    )
}

/// Serving layer: delta-queue draining answers bit-identically to the
/// full-replan twin and a naive mirror, at every queue budget, including
/// mid-drain (between ticks).
fn check_serve_delta_drain<B: Backend>(make_backend: impl Fn() -> B, label: &str) {
    let values = Distribution::Linear {
        max_value: MAX_VALUE,
    }
    .generate_pages(PAGES, 3);
    let ranges = view_ranges(6);
    let churn =
        UpdateWorkload::new(0xD3A1).hot_zone_churn(4, 80, PAGES * VALUES_PER_PAGE, 0.05, MAX_VALUE);

    for &budget in &[1usize, 3, 0] {
        let case = format!("{label}/budget{budget}");
        let mut inc = ServeTable::new(make_backend(), serve_config(true, budget, 16));
        let mut full = ServeTable::new(make_backend(), serve_config(false, 0, 16));
        let inc_col = inc.add_column(&values).expect("column");
        let full_col = full.add_column(&values).expect("column");
        for r in &ranges {
            inc.install_view(inc_col, *r).expect("view");
            full.install_view(full_col, *r).expect("view");
        }
        let inc_handle = inc.handle();
        let full_handle = full.handle();
        let mut mirror = values.clone();

        for (k, round) in churn.iter().enumerate() {
            inc.write_batch(inc_col, &round.writes);
            full.write_batch(full_col, &round.writes);
            for &(row, value) in &round.writes {
                mirror[row] = value;
            }
            // Tick both tables a few times — the incremental table is
            // mid-drain here (budget items per tick) — and compare every
            // pinned answer: publishes must be answer-invariant.
            for _ in 0..3 {
                inc.tick().expect("tick");
                full.tick().expect("tick");
                let inc_snap = inc_handle.pin();
                let full_snap = full_handle.pin();
                for r in &ranges {
                    let a = inc_snap.query_range(inc_col, r);
                    let b = full_snap.query_range(full_col, r);
                    assert_eq!(
                        (a.count, a.sum),
                        (b.count, b.sum),
                        "{case}/round{k}: mid-drain answers diverged"
                    );
                }
            }
            inc.quiesce().expect("quiesce");
            full.quiesce().expect("quiesce");
            let inc_snap = inc_handle.pin();
            let full_snap = full_handle.pin();
            for r in &ranges {
                let a = inc_snap.query_range(inc_col, r);
                let b = full_snap.query_range(full_col, r);
                let (mut count, mut sum) = (0u64, 0u128);
                for &v in &mirror {
                    if r.contains(v) {
                        count += 1;
                        sum += v as u128;
                    }
                }
                assert_eq!((a.count, a.sum), (count, sum), "{case}/round{k}: vs mirror");
                assert_eq!((b.count, b.sum), (count, sum), "{case}/round{k}: vs mirror");
            }
        }
        let activity = inc.align_activity();
        assert!(
            activity.planned_views <= activity.candidate_views,
            "{case}: pruning can only shrink the planning set"
        );
        let full_activity = full.align_activity();
        assert_eq!(
            full_activity.planned_views, full_activity.candidate_views,
            "{case}: the full twin replans everything"
        );
    }
}

#[test]
fn serve_delta_drain_is_answer_invariant_sim() {
    check_serve_delta_drain(SimBackend::new, "sim");
}

#[cfg(target_os = "linux")]
#[test]
fn serve_delta_drain_is_answer_invariant_mmap() {
    check_serve_delta_drain(asv_vmem::MmapBackend::new, "mmap");
}

/// Concurrent readers during incremental delta-drain: every answer a
/// reader computes while maintenance publishes single-view items equals
/// the answer of the final quiesced epoch's mirror-checked state — and
/// repeating a query on one pinned snapshot is bit-identical.
fn check_concurrent_delta_drain<B: Backend>(make_backend: impl Fn() -> B, label: &str) {
    use std::sync::atomic::{AtomicBool, Ordering};

    let values = Distribution::Linear {
        max_value: MAX_VALUE,
    }
    .generate_pages(PAGES, 5);
    let ranges = view_ranges(5);
    let churn =
        UpdateWorkload::new(0xC0C0).hot_zone_churn(6, 60, PAGES * VALUES_PER_PAGE, 0.1, MAX_VALUE);

    let mut table = ServeTable::new(make_backend(), serve_config(true, 1, 8));
    let col = table.add_column(&values).expect("column");
    for r in &ranges {
        table.install_view(col, *r).expect("view");
    }
    let handle = table.handle();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let done = &done;
        let ranges = &ranges;
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let handle = handle.clone();
                scope.spawn(move || {
                    while !done.load(Ordering::Acquire) {
                        let snap = handle.pin();
                        for r in ranges {
                            let first = snap.query_range(col, r);
                            let again = snap.query_range(col, r);
                            assert_eq!(
                                (first.count, first.sum),
                                (again.count, again.sum),
                                "one snapshot, one answer"
                            );
                        }
                        std::thread::yield_now();
                    }
                })
            })
            .collect();

        let mut mirror = values.clone();
        for round in &churn {
            table.write_batch(col, &round.writes);
            for &(row, value) in &round.writes {
                mirror[row] = value;
            }
            table.quiesce().expect("quiesce");
            let snap = handle.pin();
            for r in ranges {
                let out = snap.query_range(col, r);
                let (mut count, mut sum) = (0u64, 0u128);
                for &v in &mirror {
                    if r.contains(v) {
                        count += 1;
                        sum += v as u128;
                    }
                }
                assert_eq!((out.count, out.sum), (count, sum), "{label}: vs mirror");
            }
        }
        done.store(true, Ordering::Release);
        for reader in readers {
            reader.join().expect("reader");
        }
    });
    let activity = table.align_activity();
    assert!(activity.rounds > 0);
    assert!(activity.planned_views <= activity.candidate_views);
}

#[test]
fn concurrent_readers_survive_delta_drain_sim() {
    check_concurrent_delta_drain(SimBackend::new, "sim");
}

#[cfg(target_os = "linux")]
#[test]
fn concurrent_readers_survive_delta_drain_mmap() {
    check_concurrent_delta_drain(asv_vmem::MmapBackend::new, "mmap");
}
