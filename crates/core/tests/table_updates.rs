//! AdaptiveTable under updates: after applying a write batch to one column
//! and re-aligning its views — synchronously or via the background
//! (epoch-handoff) worker — conjunctive answers must match a table rebuilt
//! from scratch over the post-update values, on both backends and in both
//! execution modes (planned and naive).

use asv_core::{AdaptiveConfig, AdaptiveTable, PlannerConfig, RangeQuery};
use asv_vmem::{Backend, MmapBackend, SimBackend, VALUES_PER_PAGE};

const PAGES: usize = 16;
const MAX: u64 = 1_000_000;

/// Page-clustered deterministic values; `salt` decorrelates the columns.
fn column_values(salt: u64) -> Vec<u64> {
    (0..PAGES * VALUES_PER_PAGE)
        .map(|i| {
            let page = (i / VALUES_PER_PAGE) as u64;
            let level = page * MAX / PAGES as u64;
            let jitter = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ salt) % (MAX / 64);
            (level + jitter).min(MAX)
        })
        .collect()
}

/// The query shapes exercised before and after the updates.
fn query_suite() -> Vec<[RangeQuery; 2]> {
    vec![
        [
            RangeQuery::new(100_000, 240_000),
            RangeQuery::new(120_000, 300_000),
        ],
        [RangeQuery::new(0, 80_000), RangeQuery::new(0, 60_000)],
        [
            RangeQuery::new(870_000, 999_999),
            RangeQuery::new(840_000, 999_999),
        ],
        [RangeQuery::new(0, MAX), RangeQuery::new(420_000, 560_000)],
    ]
}

fn build_table<B: Backend>(
    make_backend: &impl Fn() -> B,
    a: &[u64],
    b: &[u64],
    planned: bool,
) -> AdaptiveTable<B> {
    let mut table = AdaptiveTable::new("t");
    table
        .add_column("a", make_backend(), a, AdaptiveConfig::default())
        .unwrap();
    table
        .add_column("b", make_backend(), b, AdaptiveConfig::default())
        .unwrap();
    table.set_planner_config(PlannerConfig::default().with_enabled(planned));
    table
}

fn conjunctive_rows<B: Backend>(
    table: &mut AdaptiveTable<B>,
    [qa, qb]: &[RangeQuery; 2],
) -> Vec<u64> {
    table
        .query_conjunctive(&[("a", *qa), ("b", *qb)])
        .unwrap()
        .rows
}

/// The batch touches pages across the whole column, moving some rows into
/// far-away value ranges (so partial views must gain *and* lose pages).
fn update_batch() -> Vec<(usize, u64)> {
    (0..PAGES)
        .flat_map(|page| {
            let row = page * VALUES_PER_PAGE + page;
            [
                (row, (page as u64 * 61_803) % MAX),
                (row + 7, MAX - (page as u64 * 41_421) % MAX),
            ]
        })
        .collect()
}

fn check_alignment_mode<B: Backend>(
    make_backend: impl Fn() -> B,
    background: bool,
    planned: bool,
    label: &str,
) {
    let a = column_values(1);
    let b = column_values(2);
    let mut table = build_table(&make_backend, &a, &b, planned);

    // Warm the view sets (and the probe trackers) with the query suite.
    for queries in &query_suite() {
        conjunctive_rows(&mut table, queries);
    }
    assert!(
        table.column("a").unwrap().views().num_partial_views() >= 1
            || table.column("b").unwrap().views().num_partial_views() >= 1,
        "{label}: warm-up must create views"
    );

    // Apply the batch to column a and re-align its views.
    let writes = update_batch();
    let updates = table.write_batch("a", &writes);
    let mut a_updated = a.clone();
    for &(row, value) in &writes {
        a_updated[row] = value;
    }
    let col_a = table.column_mut("a").unwrap();
    if background {
        col_a.align_views_async(&updates).unwrap();
        let stats = col_a
            .publish_aligned_views()
            .unwrap()
            .expect("a background plan was pending");
        assert_eq!(stats.batch_size, updates.len());
    } else {
        col_a.align_views(&updates).unwrap();
    }

    // A rebuilt-from-scratch table over the post-update values is ground
    // truth for every conjunctive shape, in both execution modes.
    let mut rebuilt = build_table(&make_backend, &a_updated, &b, planned);
    for queries in &query_suite() {
        let aligned = conjunctive_rows(&mut table, queries);
        let reference = conjunctive_rows(&mut rebuilt, queries);
        assert_eq!(
            aligned, reference,
            "{label}: post-alignment answers diverge for {queries:?}"
        );
        // Sanity: the reference matches a plain filter over the raw data.
        let expected: Vec<u64> = (0..a_updated.len())
            .filter(|&i| {
                queries[0].range().contains(a_updated[i]) && queries[1].range().contains(b[i])
            })
            .map(|i| i as u64)
            .collect();
        assert_eq!(reference, expected, "{label}: rebuilt table is wrong");
    }
}

#[test]
fn sync_alignment_matches_rebuild_sim() {
    check_alignment_mode(SimBackend::new, false, true, "sim/sync/planned");
    check_alignment_mode(SimBackend::new, false, false, "sim/sync/naive");
}

#[test]
fn background_alignment_matches_rebuild_sim() {
    check_alignment_mode(SimBackend::new, true, true, "sim/background/planned");
    check_alignment_mode(SimBackend::new, true, false, "sim/background/naive");
}

#[test]
fn sync_alignment_matches_rebuild_mmap() {
    check_alignment_mode(MmapBackend::new, false, true, "mmap/sync/planned");
    check_alignment_mode(MmapBackend::new, false, false, "mmap/sync/naive");
}

#[test]
fn background_alignment_matches_rebuild_mmap() {
    check_alignment_mode(MmapBackend::new, true, true, "mmap/background/planned");
    check_alignment_mode(MmapBackend::new, true, false, "mmap/background/naive");
}
