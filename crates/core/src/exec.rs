//! The parallel execution layer: sharded scans over the selected views.
//!
//! Query answering scans the views chosen by the router, skipping physical
//! pages shared between views (paper §2.1). `scan_selected_views` is the
//! single entry point for that scan, in two interchangeable strategies built
//! on the unified [`ScanKernel`] of `asv-storage`:
//!
//! * **Sequential** (the default, [`Parallelism::Sequential`]): one pass in
//!   view order with a [`BitVec`] of processed pages — byte-for-byte the
//!   behaviour of the pre-parallel code path, including feeding qualifying
//!   pages to the candidate-view `PageSink` *while* scanning (so the
//!   concurrent-mapping optimization of §2.3 still overlaps mapping with
//!   scanning).
//! * **Sharded fork-join** ([`Parallelism::Threads`] / `Auto`): the physical
//!   page-id space is split into disjoint contiguous shards, one per worker
//!   of the scoped [`ThreadPool`]. Every worker walks all selected views but
//!   only processes pages whose embedded pageID falls into its shard,
//!   deduplicating shared pages with a shard-local bitvector. The partial
//!   [`ScanOutput`]s merge in ascending shard order, and each shard records
//!   its qualifying page ids so the candidate view can be materialized by
//!   feeding the sink in page order *after* the join.
//!
//! Both strategies produce identical `count`/`sum`/`scanned_pages` and
//! identical widening bounds, and the candidate views they build index the
//! same page sets — so view insert/discard decisions do not depend on the
//! degree of parallelism.

use asv_storage::{Column, ScanKernel, ScanOutput};
use asv_util::{split_ranges, BitVec, Parallelism, ThreadPool};
use asv_vmem::{Backend, ViewBuffer, VmemError};

use crate::adaptive::AdaptiveColumn;
use crate::creation::PageSink;
use crate::query::{QueryOutcome, RangeQuery};
use crate::router::{RouteSelection, ViewId};
use crate::viewset::ViewSet;

/// Fork-joins the *independent column scans* of one conjunctive plan: each
/// task owns one column mutably (the planner guarantees the columns are
/// distinct), runs the full adaptive path with row collection, and returns
/// its outcome in task order.
///
/// The scans touch disjoint state, so the outcomes — including the adaptive
/// view decisions each scan makes on its own column — are identical for
/// every worker count; [`Parallelism::Sequential`] simply runs them inline
/// in plan order.
pub(crate) fn scan_columns_fork_join<B: Backend>(
    tasks: Vec<(&mut AdaptiveColumn<B>, RangeQuery)>,
    parallelism: Parallelism,
) -> Vec<Result<QueryOutcome, VmemError>> {
    let pool = ThreadPool::new(parallelism);
    pool.scoped_map(
        tasks
            .into_iter()
            .map(|(column, query)| move || column.query_collect(&query))
            .collect(),
    )
}

/// Resolves the routed view ids to their buffers, in scan order.
fn selected_buffers<'a, B: Backend>(
    column: &'a Column<B>,
    views: &'a ViewSet<B>,
    selection: &RouteSelection,
) -> Vec<&'a B::View> {
    selection
        .views
        .iter()
        .map(|view_id| match view_id {
            ViewId::Full => column.full_view(),
            ViewId::Partial(idx) => views
                .partial_view(*idx)
                .expect("router returned a valid partial-view index")
                .buffer(),
        })
        .collect()
}

/// Scans the selected views with `kernel`, answering the query and feeding
/// qualifying physical pages to the candidate `sink` (if any). Shared pages
/// are processed at most once.
pub(crate) fn scan_selected_views<B: Backend>(
    column: &Column<B>,
    views: &ViewSet<B>,
    selection: &RouteSelection,
    kernel: &ScanKernel<'_>,
    parallelism: Parallelism,
    sink: Option<&mut PageSink<'_, B>>,
) -> Result<ScanOutput, VmemError> {
    let num_pages = column.num_pages();
    let buffers = selected_buffers(column, views, selection);
    let workers = parallelism.worker_count();
    if workers <= 1 || num_pages < 2 {
        scan_sequential(column, &buffers, kernel, sink)
    } else {
        scan_sharded(column, &buffers, kernel, workers, sink)
    }
}

/// The sequential strategy: one pass in view order, sink fed inline.
fn scan_sequential<B: Backend>(
    column: &Column<B>,
    buffers: &[&B::View],
    kernel: &ScanKernel<'_>,
    mut sink: Option<&mut PageSink<'_, B>>,
) -> Result<ScanOutput, VmemError> {
    let num_pages = column.num_pages();
    let mut processed = BitVec::new(num_pages);
    let mut out = ScanOutput::new(kernel.mode(), false);
    for view in buffers {
        for raw in view.iter_pages() {
            let page_id = raw[0] as usize;
            debug_assert!(page_id < num_pages, "corrupt embedded pageID {page_id}");
            if processed.test_and_set(page_id) {
                continue;
            }
            let res = kernel.scan_page(column.wrap_view_page(raw), &mut out);
            if res.count > 0 {
                if let Some(sink) = sink.as_deref_mut() {
                    sink.add_page(page_id as u64)?;
                }
            }
        }
    }
    Ok(out)
}

/// The fork-join strategy: disjoint page-id shards, one per worker.
fn scan_sharded<B: Backend>(
    column: &Column<B>,
    buffers: &[&B::View],
    kernel: &ScanKernel<'_>,
    workers: usize,
    sink: Option<&mut PageSink<'_, B>>,
) -> Result<ScanOutput, VmemError> {
    let num_pages = column.num_pages();
    let track_qualifying = sink.is_some();
    let pool = ThreadPool::with_workers(workers);
    let shards = split_ranges(num_pages, pool.workers());

    let partials = pool.scoped_map(
        shards
            .into_iter()
            .map(|pages| {
                move || {
                    let mut out = ScanOutput::new(kernel.mode(), track_qualifying);
                    // Shard-local dedup of pages shared between views.
                    let mut processed = BitVec::new(pages.len());
                    for view in buffers {
                        for raw in view.iter_pages() {
                            let page_id = raw[0] as usize;
                            debug_assert!(page_id < num_pages, "corrupt embedded pageID {page_id}");
                            if !pages.contains(&page_id)
                                || processed.test_and_set(page_id - pages.start)
                            {
                                continue;
                            }
                            kernel.scan_page(column.wrap_view_page(raw), &mut out);
                        }
                    }
                    out
                }
            })
            .collect(),
    );

    let mut merged = ScanOutput::new(kernel.mode(), track_qualifying);
    for partial in partials {
        merged.merge(partial);
    }
    if let Some(sink) = sink {
        // Shards are disjoint and merged in ascending order; sorting turns
        // the per-shard scan orders into global page order, which maximizes
        // run coalescing and makes the candidate deterministic.
        let mut qualifying = merged.qualifying_pages.take().unwrap_or_default();
        qualifying.sort_unstable();
        for page_id in qualifying {
            sink.add_page(page_id)?;
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoutingMode;
    use crate::router::route;
    use asv_storage::ScanMode;
    use asv_util::ValueRange;
    use asv_vmem::{MmapBackend, SimBackend, VALUES_PER_PAGE};

    fn clustered_values(pages: usize) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    /// Builds a column plus two overlapping partial views so that the
    /// multi-view path has shared pages to deduplicate.
    fn setup<B: Backend>(backend: B) -> (Column<B>, ViewSet<B>) {
        let column = Column::from_values(backend, &clustered_values(40)).unwrap();
        let mut views = ViewSet::new(10);
        for (lo, hi) in [(5_000u64, 12_510u64), (11_000, 20_510)] {
            let range = ValueRange::new(lo, hi);
            let (buffer, _) = crate::creation::build_view_for_range(
                &column,
                &range,
                &crate::config::CreationOptions::ALL,
            )
            .unwrap();
            views.insert_unchecked(range, buffer);
        }
        (column, views)
    }

    fn check_sharded_matches_sequential<B: Backend>(backend: B) {
        let (column, views) = setup(backend);
        let query = ValueRange::new(6_000, 19_000);
        let selection = route(&column, &views, &query, RoutingMode::MultiView);
        assert!(selection.views.len() >= 2, "need a multi-view selection");
        for mode in [
            ScanMode::CountOnly,
            ScanMode::Aggregate,
            ScanMode::CollectRows,
        ] {
            let kernel = ScanKernel::new(query, mode);
            let seq = scan_selected_views(
                &column,
                &views,
                &selection,
                &kernel,
                Parallelism::Sequential,
                None,
            )
            .unwrap();
            for threads in 2..=4 {
                let par = scan_selected_views(
                    &column,
                    &views,
                    &selection,
                    &kernel,
                    Parallelism::Threads(threads),
                    None,
                )
                .unwrap();
                assert_eq!(par.result.count, seq.result.count, "{mode:?}/{threads}");
                assert_eq!(par.result.sum, seq.result.sum, "{mode:?}/{threads}");
                assert_eq!(par.scanned_pages, seq.scanned_pages, "{mode:?}/{threads}");
                assert_eq!(par.below, seq.below, "{mode:?}/{threads}");
                assert_eq!(par.above, seq.above, "{mode:?}/{threads}");
                let sort = |rows: &Option<Vec<u64>>| {
                    rows.clone().map(|mut r| {
                        r.sort_unstable();
                        r
                    })
                };
                assert_eq!(sort(&par.rows), sort(&seq.rows), "{mode:?}/{threads}");
            }
        }
    }

    #[test]
    fn sharded_scan_matches_sequential_on_shared_pages_sim() {
        check_sharded_matches_sequential(SimBackend::new());
    }

    #[test]
    fn sharded_scan_matches_sequential_on_shared_pages_mmap() {
        check_sharded_matches_sequential(MmapBackend::new());
    }

    #[test]
    fn sharded_candidate_creation_maps_the_same_pages_in_page_order() {
        let (column, views) = setup(SimBackend::new());
        let query = ValueRange::new(6_000, 19_000);
        let selection = route(&column, &views, &query, RoutingMode::MultiView);
        let kernel = ScanKernel::new(query, ScanMode::Aggregate);
        let options = crate::config::CreationOptions::ALL;

        let build = |parallelism: Parallelism| {
            crate::creation::create_while_scanning(&column, &options, |sink| {
                scan_selected_views(
                    &column,
                    &views,
                    &selection,
                    &kernel,
                    parallelism,
                    Some(sink),
                )
            })
            .unwrap()
        };
        let (seq_view, _) = build(Parallelism::Sequential);
        let (par_view, _) = build(Parallelism::Threads(4));
        let page_ids = |view: &asv_vmem::SimView| -> Vec<u64> {
            let mut ids: Vec<u64> = view.iter_pages().map(|p| p[0]).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(page_ids(&seq_view), page_ids(&par_view));
        // The parallel candidate is fed in ascending page order.
        let par_order: Vec<u64> = par_view.iter_pages().map(|p| p[0]).collect();
        let mut sorted = par_order.clone();
        sorted.sort_unstable();
        assert_eq!(par_order, sorted);
    }
}
