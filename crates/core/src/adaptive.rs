//! The adaptive column: query answering with adaptive view maintenance.
//!
//! [`AdaptiveColumn`] ties everything together and implements the paper's
//! Listing 1 (`answerQueryAndMaintainViews`): every range query is routed to
//! the most fitting view(s), answered by scanning them (skipping shared
//! pages), and — as a side-product — a new candidate partial view covering
//! (at least) the query range is materialized and offered to the view index.

use std::collections::VecDeque;

use asv_storage::{Column, ScanKernel, ScanMode, ScanOutput, Update};
use asv_util::{Parallelism, Timer, ValueRange};
use asv_vmem::{Backend, ViewBuffer, VmemError};

use crate::align::{
    apply_plan, snapshot_alignment, spawn_alignment_chunked, AlignmentPlan,
    PendingChunkedAlignment, WriteOverlay,
};
use crate::config::{AdaptiveConfig, RoutingMode};
use crate::creation::create_while_scanning;
use crate::exec::scan_selected_views;
use crate::query::{QueryExecution, QueryOutcome, RangeQuery, ViewMaintenance};
use crate::router::{route, ViewId};
use crate::stats::ChunkPublishRecord;
use crate::updates::{align_views_after_updates_with, rebuild_all_views, UpdateAlignmentStats};
use crate::viewset::ViewSet;

/// A column equipped with the adaptive virtual-view layer.
///
/// # Example
///
/// A full round-trip: querying builds a partial view as a side-product,
/// writes go through the full view, and a background alignment round
/// re-aligns the views while further writes are queued (immediately
/// visible) and folded in automatically:
///
/// ```
/// use asv_core::{AdaptiveColumn, AdaptiveConfig, RangeQuery};
/// use asv_vmem::SimBackend;
///
/// # fn main() -> Result<(), asv_vmem::VmemError> {
/// let values: Vec<u64> = (0..100_000u64).collect();
/// let mut col = AdaptiveColumn::from_values(
///     SimBackend::new(),
///     &values,
///     AdaptiveConfig::default(),
/// )?;
///
/// // Querying answers exactly and leaves a partial view behind.
/// let q = RangeQuery::new(10_000, 19_999);
/// assert_eq!(col.query(&q)?.count, 10_000);
/// assert_eq!(col.views().num_partial_views(), 1);
///
/// // Writes are applied directly while no alignment is in flight ...
/// let updates = col.write_batch(&[(0, 15_000)]);
/// col.align_views_async(&updates)?;
///
/// // ... and queued while one is: this write is acknowledged into the
/// // overlay, visible to every read, and folded in automatically.
/// col.write(1, 15_001);
/// assert_eq!(col.query(&RangeQuery::new(15_001, 15_001))?.count, 2);
///
/// col.flush_pending_writes()?;
/// assert!(!col.alignment_pending());
/// assert_eq!(col.query(&q)?.count, 10_002);
/// # Ok(())
/// # }
/// ```
pub struct AdaptiveColumn<B: Backend> {
    column: Column<B>,
    views: ViewSet<B>,
    config: AdaptiveConfig,
    /// The in-flight background planning worker, if any. While any
    /// alignment work is pending (worker or unpublished chunks), adaptive
    /// view creation is paused (the plans address views by position/id) and
    /// writes are queued in the overlay instead of hitting the column.
    pending_alignment: Option<PendingChunkedAlignment>,
    /// Chunks planned but not yet published, in publish order.
    ready_chunks: VecDeque<AlignmentPlan>,
    /// Raw record count of the round currently publishing (aggregate
    /// stats report it as the round's `batch_size`).
    round_raw_size: usize,
    /// Position of the next publish within its round.
    next_chunk_index: usize,
    /// The pending-writes queue: rows written while alignment work was in
    /// flight, overlaid onto every read until the round folding them
    /// publishes.
    overlay: WriteOverlay,
    /// Per-chunk publish records, accumulated across rounds until drained
    /// with [`Self::take_chunk_records`].
    chunk_records: Vec<ChunkPublishRecord>,
}

/// Upper bound on retained [`ChunkPublishRecord`]s: when a caller never
/// drains them, the oldest half is dropped on overflow so a long-running
/// column cannot accumulate unbounded stats.
const MAX_CHUNK_RECORDS: usize = 4_096;

/// The [`ScanMode`] a query resolves to.
fn scan_mode(query: &RangeQuery, collect_rows: bool) -> ScanMode {
    if collect_rows {
        ScanMode::CollectRows
    } else if query.is_count_only() {
        ScanMode::CountOnly
    } else {
        ScanMode::Aggregate
    }
}

impl<B: Backend> AdaptiveColumn<B> {
    /// Wraps an existing column.
    pub fn new(column: Column<B>, config: AdaptiveConfig) -> Result<Self, VmemError> {
        let views = ViewSet::new(config.max_views);
        Ok(Self {
            column,
            views,
            config,
            pending_alignment: None,
            ready_chunks: VecDeque::new(),
            round_raw_size: 0,
            next_chunk_index: 0,
            overlay: WriteOverlay::new(),
            chunk_records: Vec::new(),
        })
    }

    /// Materializes a column from values and wraps it in one step.
    pub fn from_values(
        backend: B,
        values: &[u64],
        config: AdaptiveConfig,
    ) -> Result<Self, VmemError> {
        Self::new(Column::from_values(backend, values)?, config)
    }

    /// The underlying physical column.
    pub fn column(&self) -> &Column<B> {
        &self.column
    }

    /// The set of partial views currently maintained.
    pub fn views(&self) -> &ViewSet<B> {
        &self.views
    }

    /// The active configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Changes the routing mode at runtime.
    pub fn set_routing(&mut self, routing: RoutingMode) {
        self.config.routing = routing;
    }

    /// Answers `query`, adaptively maintaining partial views as a
    /// side-product (Listing 1). Returns the aggregate answer.
    pub fn query(&mut self, query: &RangeQuery) -> Result<QueryOutcome, VmemError> {
        self.answer_and_maintain(query, false)
    }

    /// Like [`Self::query`], but also collects the qualifying row ids.
    pub fn query_collect(&mut self, query: &RangeQuery) -> Result<QueryOutcome, VmemError> {
        self.answer_and_maintain(query, true)
    }

    /// Answers `query` with a plain full scan, bypassing all views and all
    /// adaptivity — the baseline of the paper's evaluation (§3.2). The scan
    /// honours the configured [`asv_util::Parallelism`] by sharding the full
    /// view's page range across the fork-join pool.
    pub fn full_scan(&self, query: &RangeQuery) -> QueryOutcome {
        self.full_scan_impl(query, false)
    }

    /// Like [`Self::full_scan`], but also collects the qualifying row ids —
    /// the row-level baseline [`Self::query_collect`] is compared against.
    pub fn full_scan_collect(&self, query: &RangeQuery) -> QueryOutcome {
        self.full_scan_impl(query, true)
    }

    fn full_scan_impl(&self, query: &RangeQuery, collect_rows: bool) -> QueryOutcome {
        let timer = Timer::start();
        let mode = scan_mode(query, collect_rows);
        let mut out = if self.overlay.is_empty() {
            self.column
                .full_scan_with(query.range(), mode, self.config.parallelism)
        } else {
            self.column.full_scan_excluding_masks(
                query.range(),
                mode,
                self.config.parallelism,
                &self.overlay.exclusion_masks(),
            )
        };
        apply_overlay_to_answer(
            &self.overlay,
            query.range(),
            mode,
            &mut out.result.count,
            &mut out.result.sum,
            &mut out.rows,
        );
        QueryOutcome {
            count: out.result.count,
            sum: out.result.sum,
            rows: out.rows,
            scanned_pages: self.column.num_pages(),
            views_used: vec![ViewId::Full],
            view_maintenance: ViewMaintenance::NotAttempted,
            executed: QueryExecution::FullScan,
            elapsed: timer.elapsed(),
        }
    }

    /// Writes `new_value` into `row`, returning the update record.
    ///
    /// With no alignment in flight this is the direct "update through the
    /// full view" path of §2.4: the physical column is written immediately
    /// and the partial views stay untouched until [`Self::align_views`] /
    /// [`Self::align_views_async`] re-aligns them with the collected update
    /// records.
    ///
    /// While alignment work *is* pending, the write is **queued** instead:
    /// it lands in the pending-writes overlay, every read resolves it from
    /// there (so the acknowledged value is visible immediately, to queries
    /// and full scans alike), and the queue drains into the next alignment
    /// round automatically when the current round's last chunk publishes —
    /// no extra alignment call is needed for queued writes. The returned
    /// record's `old_value` is the previously *visible* value (overlay or
    /// column).
    ///
    /// When the queue reaches [`crate::AlignChunking::max_queued_writes`],
    /// backpressure is applied *without blocking the writer*: the in-flight
    /// round is nudged forward (one non-blocking publish poll, so a
    /// completed round folds the queue into a fresh one) and the write is
    /// queued regardless — the bound is soft and no write is ever dropped
    /// or stalled.
    ///
    /// # Panics
    /// Panics if the backpressure publish poll fails — impossible through
    /// this API, which pins view positions while plans are in flight.
    pub fn write(&mut self, row: usize, new_value: u64) -> Update {
        if self.alignment_pending() {
            self.queue_write(row, new_value)
        } else {
            self.column.write(row, new_value)
        }
    }

    /// Applies a batch of `(row, value)` writes, returning the update
    /// records to later pass to [`Self::align_views`] — or, while alignment
    /// work is pending, queues the whole batch (see [`Self::write`]):
    /// queued batches fold into the next alignment round automatically and
    /// must *not* be passed to an alignment call again.
    pub fn write_batch(&mut self, writes: &[(usize, u64)]) -> Vec<Update> {
        if self.alignment_pending() {
            // Re-check per element: a backpressure flush mid-batch ends the
            // pending state, and the remaining writes must then go directly
            // to the column (overlay entries may only exist while alignment
            // work is pending — a stranded entry would never drain).
            writes
                .iter()
                .map(|&(row, value)| self.write(row, value))
                .collect()
        } else {
            self.column.write_batch(writes)
        }
    }

    /// Queues one write in the overlay, applying non-blocking backpressure
    /// when the queue bound is hit.
    fn queue_write(&mut self, row: usize, new_value: u64) -> Update {
        debug_assert!(self.alignment_pending(), "queue only while pending");
        if self.overlay.len() >= self.config.chunking.max_queued_writes {
            // Backpressure: *start* draining instead of blocking — publish
            // at most one ready chunk; publishing a round's last chunk
            // completes it and auto-folds the queue into a fresh round.
            // While the planner is still running this is a no-op and the
            // (soft) bound is exceeded; the writer never stalls either way.
            self.poll_aligned_views()
                .expect("publish cannot fail: view positions are pinned while plans are in flight");
            if !self.alignment_pending() {
                // The poll finished all alignment work without re-folding
                // (no views left to align): write directly again.
                return self.column.write(row, new_value);
            }
        }
        let old_value = self
            .overlay
            .value(row as u64)
            .unwrap_or_else(|| self.column.value(row));
        self.overlay.push(row, new_value);
        Update::new(row as u64, old_value, new_value)
    }

    /// The pending-writes overlay (empty unless writes arrived while
    /// alignment work was in flight).
    pub fn write_overlay(&self) -> &WriteOverlay {
        &self.overlay
    }

    /// Probes `rows` (ascending global row ids) against `range`, touching
    /// only the physical pages holding candidates — overlay-aware: rows
    /// with queued (not yet aligned) writes are answered from the overlay,
    /// the rest through the physical column. With
    /// [`ScanMode::CollectRows`], the output rows stay ascending.
    pub fn probe_rows_with(
        &self,
        range: &ValueRange,
        mode: ScanMode,
        rows: &[u64],
        parallelism: Parallelism,
    ) -> ScanOutput {
        if self.overlay.is_empty() {
            return self.column.probe_rows_with(range, mode, rows, parallelism);
        }
        let mut physical = Vec::with_capacity(rows.len());
        let mut overlaid: Vec<(u64, u64)> = Vec::new();
        for &row in rows {
            match self.overlay.value(row) {
                Some(value) => overlaid.push((row, value)),
                None => physical.push(row),
            }
        }
        let mut out = self
            .column
            .probe_rows_with(range, mode, &physical, parallelism);
        let mut resort = false;
        for (row, value) in overlaid {
            if range.contains(value) {
                out.result.count += 1;
                if !matches!(mode, ScanMode::CountOnly) {
                    out.result.sum += value as u128;
                }
                if let Some(out_rows) = out.rows.as_mut() {
                    out_rows.push(row);
                    resort = true;
                }
            }
        }
        if resort {
            if let Some(out_rows) = out.rows.as_mut() {
                out_rows.sort_unstable();
            }
        }
        out
    }

    /// Aligns all partial views with an already-applied batch of updates
    /// (paper §2.4–2.5), synchronously: queries cannot run until the call
    /// returns. The per-view planning work is fork-joined across the
    /// configured [`asv_util::Parallelism`].
    ///
    /// All pending alignment work — including rounds created by folding
    /// queued writes — is flushed first.
    pub fn align_views(&mut self, batch: &[Update]) -> Result<UpdateAlignmentStats, VmemError> {
        self.flush_pending_writes()?;
        align_views_after_updates_with(
            &self.column,
            &mut self.views,
            batch,
            self.config.parallelism,
        )
    }

    /// Starts aligning all partial views with an already-applied batch of
    /// updates *in the background* (epoch handoff): the batch is shipped to
    /// a worker thread that plans the alignment — split into chunks of at
    /// most [`crate::AlignChunking::chunk_updates`] updates — against
    /// shadow copies of the view mappings, while queries keep running
    /// against the pre-batch view epoch. The aligned views become visible
    /// chunk by chunk as the plan is published
    /// ([`Self::poll_aligned_views`] / [`Self::publish_aligned_views`]);
    /// every published chunk bumps the view-set generation.
    ///
    /// While alignment work is pending, adaptive view creation is paused so
    /// the planned view positions stay valid; queries are answered as
    /// usual. Writes submitted *after* this call are queued in the
    /// pending-writes overlay — immediately visible to reads, folded into
    /// the next alignment round automatically when this round's last chunk
    /// publishes (see [`Self::write`]). All previously pending alignment
    /// work is flushed (blocking) before the new round starts.
    pub fn align_views_async(&mut self, batch: &[Update]) -> Result<(), VmemError> {
        self.flush_pending_writes()?;
        if batch.is_empty() || self.views.is_empty() {
            return Ok(());
        }
        self.start_round(batch)
    }

    /// Snapshots `batch` and ships it to the chunked planning worker.
    fn start_round(&mut self, batch: &[Update]) -> Result<(), VmemError> {
        debug_assert!(!self.alignment_pending());
        let snapshot = snapshot_alignment(&self.column, &self.views, batch)?;
        self.round_raw_size = batch.len();
        self.next_chunk_index = 0;
        self.pending_alignment = Some(spawn_alignment_chunked(
            snapshot,
            self.config.parallelism,
            self.config.chunking.chunk_updates,
        ));
        Ok(())
    }

    /// Returns `true` while alignment work is in flight: a worker is
    /// planning or planned chunks await publishing. Writes queue and
    /// adaptive view creation stays paused for as long as this holds.
    pub fn alignment_pending(&self) -> bool {
        self.pending_alignment.is_some() || !self.ready_chunks.is_empty()
    }

    /// Publishes the **next ready chunk** of the pending alignment round,
    /// without blocking: returns `None` while the planning worker is still
    /// running (or nothing is pending), and the published chunk's stats
    /// once a chunk was applied. Epochs advance strictly in chunk order —
    /// chunk `k` of a round always publishes before chunk `k + 1`, and a
    /// later round's chunks never overtake an earlier round's.
    ///
    /// Publishing the last chunk of a round *completes* the round: rows
    /// covered by it leave the read overlay, and any writes queued
    /// meanwhile drain into a fresh round automatically (the worker spawns
    /// immediately; [`Self::alignment_pending`] stays `true`).
    pub fn poll_aligned_views(&mut self) -> Result<Option<UpdateAlignmentStats>, VmemError> {
        match &self.pending_alignment {
            Some(pending) if pending.is_finished() => {
                let plan = self.pending_alignment.take().expect("checked above").join();
                self.ready_chunks.extend(plan.chunks);
            }
            Some(_) => return Ok(None),
            None => {}
        }
        let Some(chunk) = self.ready_chunks.pop_front() else {
            return Ok(None);
        };
        let stats = self.apply_chunk(&chunk)?;
        if self.ready_chunks.is_empty() {
            self.complete_round()?;
        }
        Ok(Some(stats))
    }

    /// Waits for the pending alignment round (if any) and publishes **all**
    /// of its remaining chunks: the recorded mapping manipulations are
    /// replayed onto the real view buffers, bumping the view-set generation
    /// once per chunk. Returns the aggregate stats of the chunks published
    /// by this call (`batch_size` reports the raw size of the round they
    /// belong to), or `None` if nothing was pending.
    ///
    /// Completing the round drains writes queued meanwhile into a fresh
    /// background round (see [`Self::poll_aligned_views`]); use
    /// [`Self::flush_pending_writes`] to block until no work is left at
    /// all.
    pub fn publish_aligned_views(&mut self) -> Result<Option<UpdateAlignmentStats>, VmemError> {
        if let Some(pending) = self.pending_alignment.take() {
            self.ready_chunks.extend(pending.join().chunks);
        }
        if self.ready_chunks.is_empty() {
            return Ok(None);
        }
        let round_raw_size = self.round_raw_size;
        let mut agg = UpdateAlignmentStats::default();
        while let Some(chunk) = self.ready_chunks.pop_front() {
            agg.absorb(&self.apply_chunk(&chunk)?);
        }
        agg.batch_size = round_raw_size;
        self.complete_round()?;
        Ok(Some(agg))
    }

    /// Blocks until every pending alignment round — including the rounds
    /// repeatedly created by folding queued writes — has been planned and
    /// published and the pending-writes queue is empty. Returns the
    /// aggregate stats over everything published, or `None` if nothing was
    /// pending.
    pub fn flush_pending_writes(&mut self) -> Result<Option<UpdateAlignmentStats>, VmemError> {
        let mut agg: Option<UpdateAlignmentStats> = None;
        while self.alignment_pending() {
            if let Some(stats) = self.publish_aligned_views()? {
                agg.get_or_insert_with(UpdateAlignmentStats::default)
                    .absorb(&stats);
            }
        }
        Ok(agg)
    }

    /// Applies one chunk to the real view buffers and records its publish
    /// latency.
    fn apply_chunk(&mut self, chunk: &AlignmentPlan) -> Result<UpdateAlignmentStats, VmemError> {
        let publish_timer = Timer::start();
        let stats = apply_plan(&self.column, &mut self.views, chunk)?;
        // Bounded: callers that never drain the records must not leak —
        // on overflow the oldest half is dropped (amortized O(1) per push).
        if self.chunk_records.len() >= MAX_CHUNK_RECORDS {
            self.chunk_records.drain(..MAX_CHUNK_RECORDS / 2);
        }
        self.chunk_records.push(ChunkPublishRecord {
            chunk_index: self.next_chunk_index,
            updates: chunk.deduped_size,
            pages_added: stats.pages_added,
            pages_removed: stats.pages_removed,
            publish_time: publish_timer.elapsed(),
            generation: self.views.generation(),
        });
        self.next_chunk_index += 1;
        Ok(stats)
    }

    /// Finishes a fully-published round: retires its overlay entries and
    /// folds writes queued meanwhile into the next round.
    fn complete_round(&mut self) -> Result<(), VmemError> {
        debug_assert!(self.pending_alignment.is_none() && self.ready_chunks.is_empty());
        self.round_raw_size = 0;
        self.next_chunk_index = 0;
        // The published round covered every write it folded: those rows
        // read correctly through the aligned views now.
        self.overlay.retire_aligned();
        if self.overlay.queued_writes() == 0 {
            return Ok(());
        }
        // Auto-fold: drain the queue into the physical column and ship the
        // resulting batch to the next background round.
        let writes = self.overlay.take_queued();
        let updates = self.column.write_batch(&writes);
        if self.views.is_empty() {
            // No views to align — the writes are fully visible through the
            // full view already.
            self.overlay.retire_aligned();
            return Ok(());
        }
        self.start_round(&updates)
    }

    /// The per-chunk publish records accumulated since the last
    /// [`Self::take_chunk_records`], across rounds, in publish order. At
    /// most the newest 4096 records are retained — drain them regularly
    /// (as the `align-overlap` harness does) to observe every publish.
    pub fn chunk_records(&self) -> &[ChunkPublishRecord] {
        &self.chunk_records
    }

    /// Drains the accumulated per-chunk publish records.
    pub fn take_chunk_records(&mut self) -> Vec<ChunkPublishRecord> {
        std::mem::take(&mut self.chunk_records)
    }

    /// The current view epoch: bumped on every published alignment or
    /// rebuild. Queries observe one epoch for their whole execution.
    pub fn view_generation(&self) -> u64 {
        self.views.generation()
    }

    /// Installs a pre-built partial view covering `range` (warm start /
    /// experiment setup). The view bypasses the retention policy.
    pub fn install_view(&mut self, range: ValueRange, buffer: B::View) -> u64 {
        self.views.insert_unchecked(range, buffer)
    }

    /// Rebuilds every partial view from scratch (the comparison point for
    /// batched alignment in Figure 7). Returns the total rebuild time.
    ///
    /// All pending alignment work (including queued writes) is flushed
    /// first.
    pub fn rebuild_views(&mut self) -> Result<std::time::Duration, VmemError> {
        self.flush_pending_writes()?;
        rebuild_all_views(&self.column, &mut self.views, &self.config.creation)
    }

    fn answer_and_maintain(
        &mut self,
        query: &RangeQuery,
        collect_rows: bool,
    ) -> Result<QueryOutcome, VmemError> {
        let timer = Timer::start();
        let selection = route(
            &self.column,
            &self.views,
            query.range(),
            self.config.routing,
        );
        // Adaptive creation is paused while alignment work is pending: the
        // planned chunks address views by position/id, so the set must stay
        // stable until the round is fully published.
        let create_candidate = self.config.adaptive_creation
            && self.views.can_create_views()
            && !self.alignment_pending();

        let column = &self.column;
        let views = &self.views;
        let mode = scan_mode(query, collect_rows);
        // Rows with queued writes are masked from the scan and answered
        // from the overlay below, so mid-alignment reads see every
        // acknowledged write exactly once.
        let overlay_masks = self.overlay.exclusion_masks();
        let kernel = ScanKernel::new(*query.range(), mode).with_exclusion_masks(&overlay_masks);
        let parallelism = self.config.parallelism;

        let (candidate, mut scan) = if create_candidate {
            let (buffer, scan) = create_while_scanning(column, &self.config.creation, |sink| {
                scan_selected_views(column, views, &selection, &kernel, parallelism, Some(sink))
            })?;
            (Some(buffer), scan)
        } else {
            let scan = scan_selected_views(column, views, &selection, &kernel, parallelism, None)?;
            (None, scan)
        };
        apply_overlay_to_answer(
            &self.overlay,
            query.range(),
            mode,
            &mut scan.result.count,
            &mut scan.result.sum,
            &mut scan.rows,
        );

        // Range widening (Listing 1 lines 13-20): the candidate view covers
        // everything strictly between the closest non-qualifying values
        // observed around the query range, clamped to the covered range of
        // the source views.
        let maintenance = if let Some(buffer) = candidate {
            let widened =
                widen_candidate_range(query.range(), &selection.covered, scan.below, scan.above);
            let candidate_pages = buffer.mapped_pages();
            self.views.offer_candidate(
                widened,
                buffer,
                candidate_pages,
                self.column.num_pages(),
                self.config.discard_tolerance,
                self.config.replacement_tolerance,
            )
        } else {
            ViewMaintenance::NotAttempted
        };

        Ok(QueryOutcome {
            count: scan.result.count,
            sum: scan.result.sum,
            rows: scan.rows,
            scanned_pages: scan.scanned_pages,
            views_used: selection.views,
            view_maintenance: maintenance,
            executed: QueryExecution::Adaptive,
            elapsed: timer.elapsed(),
        })
    }
}

/// Folds the overlaid (acknowledged but not yet aligned) writes into a scan
/// answer whose scan masked the overlaid rows: every overlay value falling
/// into `range` is counted (and summed, unless count-only; and collected,
/// if rows are collected). Collected rows are re-sorted when the overlay
/// added any, since overlay rows arrive out of scan order.
fn apply_overlay_to_answer(
    overlay: &WriteOverlay,
    range: &ValueRange,
    mode: ScanMode,
    count: &mut u64,
    sum: &mut u128,
    rows: &mut Option<Vec<u64>>,
) {
    if overlay.is_empty() {
        return;
    }
    let mut added_rows = false;
    overlay.for_each_qualifying(range, |row, value| {
        *count += 1;
        if !matches!(mode, ScanMode::CountOnly) {
            *sum += value as u128;
        }
        if let Some(rows) = rows.as_mut() {
            rows.push(row);
            added_rows = true;
        }
    });
    if added_rows {
        rows.as_mut()
            .expect("rows were just pushed")
            .sort_unstable();
    }
}

/// Computes the covered range of the candidate view.
fn widen_candidate_range(
    query: &ValueRange,
    source_covered: &ValueRange,
    below: Option<u64>,
    above: Option<u64>,
) -> ValueRange {
    let widened = query.widen_between(below, above);
    // Clamp to the range covered by the source views: pages outside that
    // coverage were never scanned, so nothing can be claimed about them.
    widened
        .intersect(source_covered)
        .unwrap_or(*query)
        .hull(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AlignChunking, CreationOptions};
    use asv_vmem::{MmapBackend, SimBackend, VALUES_PER_PAGE};

    /// Clustered data: page p holds values in [p*1000, p*1000 + 510].
    fn clustered_values(pages: usize) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    fn reference_answer(values: &[u64], range: &ValueRange) -> (u64, u128) {
        let mut count = 0u64;
        let mut sum = 0u128;
        for &v in values {
            if range.contains(v) {
                count += 1;
                sum += v as u128;
            }
        }
        (count, sum)
    }

    fn adaptive<B: Backend>(
        backend: B,
        values: &[u64],
        config: AdaptiveConfig,
    ) -> AdaptiveColumn<B> {
        AdaptiveColumn::from_values(backend, values, config).unwrap()
    }

    #[test]
    fn first_query_answers_correctly_and_creates_a_view() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        let q = RangeQuery::new(5_000, 9_400);
        let out = col.query(&q).unwrap();
        let (count, sum) = reference_answer(&values, q.range());
        assert_eq!(out.count, count);
        assert_eq!(out.sum, sum);
        assert_eq!(out.scanned_pages, 32); // first query = full scan
        assert_eq!(out.views_used, vec![ViewId::Full]);
        assert_eq!(out.view_maintenance, ViewMaintenance::Inserted);
        assert_eq!(col.views().num_partial_views(), 1);
        let view = col.views().partial_view(0).unwrap();
        assert_eq!(view.num_pages(), 5); // pages 5..=9 qualify
        assert!(view.range().covers(q.range()));
    }

    #[test]
    fn second_query_uses_the_new_view_and_scans_fewer_pages() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        let q = RangeQuery::new(6_000, 8_000);
        let out = col.query(&q).unwrap();
        let (count, sum) = reference_answer(&values, q.range());
        assert_eq!((out.count, out.sum), (count, sum));
        assert_eq!(out.views_used, vec![ViewId::Partial(0)]);
        assert!(out.scanned_pages <= 5);
    }

    /// Runs a query sequence on `backend`, asserting every adaptive answer
    /// against the full-scan baseline. Shared by the sim and mmap arms of
    /// the cross-backend test below (and by its parallel variant), replacing
    /// the previously copy-pasted per-backend loops.
    fn check_adaptive_matches_full_scans<B: Backend>(
        make_backend: impl Fn() -> B,
        label: &str,
        parallelism: asv_util::Parallelism,
    ) {
        let values = clustered_values(64);
        let mut config = AdaptiveConfig::default()
            .with_max_views(16)
            .with_parallelism(parallelism);
        config.creation = CreationOptions::ALL;
        // Exercise both routing modes.
        for routing in [RoutingMode::SingleView, RoutingMode::MultiView] {
            config.routing = routing;
            let queries: Vec<RangeQuery> = (0..20)
                .map(|i| {
                    let lo = (i * 2_900) as u64;
                    RangeQuery::new(lo, lo + 4_000)
                })
                .collect();
            let mut col = adaptive(make_backend(), &values, config);
            for q in &queries {
                let out = col.query(q).unwrap();
                let base = col.full_scan(q);
                assert_eq!(out.count, base.count, "{label}/{routing:?}");
                assert_eq!(out.sum, base.sum, "{label}/{routing:?}");
            }
        }
    }

    #[test]
    fn adaptive_answers_match_full_scans_over_a_query_sequence() {
        check_adaptive_matches_full_scans(
            SimBackend::new,
            "sim",
            asv_util::Parallelism::Sequential,
        );
        check_adaptive_matches_full_scans(
            MmapBackend::new,
            "mmap",
            asv_util::Parallelism::Sequential,
        );
    }

    #[test]
    fn adaptive_answers_match_full_scans_with_parallel_scans() {
        check_adaptive_matches_full_scans(
            SimBackend::new,
            "sim-par",
            asv_util::Parallelism::Threads(4),
        );
        check_adaptive_matches_full_scans(
            MmapBackend::new,
            "mmap-par",
            asv_util::Parallelism::Threads(4),
        );
    }

    #[test]
    fn count_only_queries_skip_the_checksum_but_count_correctly() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        let q = RangeQuery::new(5_000, 9_400).count_only();
        let out = col.query(&q).unwrap();
        let (count, _) = reference_answer(&values, q.range());
        assert_eq!(out.count, count);
        assert_eq!(out.sum, 0, "count-only answers carry no checksum");
        // Adaptive maintenance is unaffected: the candidate view still gets
        // created with the same widened range as a full query would build.
        assert_eq!(out.view_maintenance, ViewMaintenance::Inserted);
        assert_eq!(col.views().num_partial_views(), 1);
        let view = col.views().partial_view(0).unwrap();
        assert_eq!(view.num_pages(), 5);
        assert!(view.range().covers(q.range()));
        // The count-only full-scan baseline agrees.
        let base = col.full_scan(&q);
        assert_eq!(base.count, count);
        assert_eq!(base.sum, 0);
    }

    #[test]
    fn query_collect_returns_matching_rows() {
        let values = clustered_values(8);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        let q = RangeQuery::new(3_000, 3_050);
        let out = col.query_collect(&q).unwrap();
        let rows = out.rows.unwrap();
        assert_eq!(rows.len() as u64, out.count);
        for &r in &rows {
            assert!(q.range().contains(values[r as usize]));
        }
        // And the rows are exactly the reference set.
        let expected: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| q.range().contains(**v))
            .map(|(i, _)| i as u64)
            .collect();
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, expected);
    }

    /// The row-collecting baseline: `query_collect` must return exactly the
    /// rows `full_scan_collect` finds (up to order — views scan pages in
    /// slot order, the full scan in physical order).
    fn check_query_collect_matches_full_scan_collect<B: Backend>(backend: B, label: &str) {
        let values = clustered_values(32);
        let mut col = adaptive(backend, &values, AdaptiveConfig::default());
        for (lo, hi) in [
            (5_000, 9_400),
            (6_000, 8_000),
            (0, 40_000),
            (31_400, 31_510),
        ] {
            let q = RangeQuery::new(lo, hi);
            let out = col.query_collect(&q).unwrap();
            let base = col.full_scan_collect(&q);
            assert_eq!(out.count, base.count, "{label} [{lo},{hi}]");
            assert_eq!(out.sum, base.sum, "{label} [{lo},{hi}]");
            let mut rows = out.rows.expect("query_collect returns rows");
            rows.sort_unstable();
            let base_rows = base.rows.expect("full_scan_collect returns rows");
            // The full scan visits pages in physical order: already sorted.
            assert_eq!(rows, base_rows, "{label} [{lo},{hi}]");
        }
    }

    #[test]
    fn query_collect_matches_full_scan_collect() {
        check_query_collect_matches_full_scan_collect(SimBackend::new(), "sim");
        check_query_collect_matches_full_scan_collect(MmapBackend::new(), "mmap");
    }

    /// Background alignment: mid-alignment queries stay on the pre-batch
    /// view epoch, publish advances the generation, and the published view
    /// layout matches what synchronous alignment produces.
    fn check_background_alignment_epoch_handoff<B: Backend>(make_backend: impl Fn() -> B) {
        let values = clustered_values(32);
        let config = AdaptiveConfig::default();
        let mut bg = adaptive(make_backend(), &values, config);
        let mut sync = adaptive(make_backend(), &values, config);
        // Materialize the same partial views on both columns (the probe
        // query inserts its own smaller view on first contact, so run it
        // once up front to settle the view set identically on both twins).
        let seed_query = RangeQuery::new(5_000, 9_400);
        let probe = RangeQuery::new(6_000, 7_000);
        for q in [&seed_query, &probe] {
            bg.query(q).unwrap();
            sync.query(q).unwrap();
        }

        let writes: Vec<(usize, u64)> = (12..20)
            .map(|p| (p * VALUES_PER_PAGE + p, 6_000 + p as u64))
            .collect();
        let bg_updates = bg.write_batch(&writes);
        let sync_updates = sync.write_batch(&writes);

        // Freeze the pre-publish (stale-view) answer for a query routed
        // through the partial views.
        let stale = bg.query(&probe).unwrap();

        let generation_before = bg.view_generation();
        bg.align_views_async(&bg_updates).unwrap();
        assert!(bg.alignment_pending());

        // Mid-alignment: the query is answered on the pre-batch epoch —
        // same views, same answer as before the alignment started — and no
        // new views may appear while the plan is in flight.
        let mid = bg.query(&probe).unwrap();
        assert_eq!(mid.count, stale.count, "pre-batch epoch answer");
        assert_eq!(mid.sum, stale.sum, "pre-batch epoch answer");
        assert_eq!(mid.views_used, stale.views_used);
        assert_eq!(bg.view_generation(), generation_before);
        let uncovered = RangeQuery::new(25_000, 26_000);
        let out = bg.query(&uncovered).unwrap();
        assert_eq!(out.view_maintenance, ViewMaintenance::NotAttempted);

        // Publish and compare against the synchronous twin.
        let bg_stats = bg.publish_aligned_views().unwrap().expect("plan pending");
        assert!(!bg.alignment_pending());
        assert_eq!(bg.view_generation(), generation_before + 1);
        let sync_stats = sync.align_views(&sync_updates).unwrap();
        assert_eq!(bg_stats.pages_added, sync_stats.pages_added);
        assert_eq!(bg_stats.pages_removed, sync_stats.pages_removed);
        assert_eq!(
            bg.views().partial_view(0).unwrap().num_pages(),
            sync.views().partial_view(0).unwrap().num_pages()
        );
        // Post-publish answers match the full scan again.
        let post = bg.query(&probe).unwrap();
        let base = bg.full_scan(&probe);
        assert_eq!(post.count, base.count);
        assert_eq!(post.sum, base.sum);
        // And view creation resumes.
        let out = bg.query(&uncovered).unwrap();
        assert_ne!(out.view_maintenance, ViewMaintenance::NotAttempted);
    }

    #[test]
    fn background_alignment_epoch_handoff_sim() {
        check_background_alignment_epoch_handoff(SimBackend::new);
    }

    #[test]
    fn background_alignment_epoch_handoff_mmap() {
        check_background_alignment_epoch_handoff(MmapBackend::new);
    }

    #[test]
    fn poll_publishes_once_the_worker_finishes() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        let updates = col.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        col.align_views_async(&updates).unwrap();
        // Poll until the worker finishes (the plan is tiny, so this is
        // quick); polling must never block and eventually publishes.
        let stats = loop {
            if let Some(stats) = col.poll_aligned_views().unwrap() {
                break stats;
            }
            std::thread::yield_now();
        };
        assert_eq!(stats.pages_added, 1);
        assert!(!col.alignment_pending());
        assert_eq!(col.poll_aligned_views().unwrap(), None);
    }

    #[test]
    fn async_with_empty_batch_or_no_views_is_a_noop() {
        let values = clustered_values(8);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        // No views yet.
        let updates = col.write_batch(&[(0, 42)]);
        col.align_views_async(&updates).unwrap();
        assert!(!col.alignment_pending());
        // Views exist, but the batch is empty.
        col.query(&RangeQuery::new(1_000, 2_000)).unwrap();
        col.align_views_async(&[]).unwrap();
        assert!(!col.alignment_pending());
        assert_eq!(col.publish_aligned_views().unwrap(), None);
    }

    #[test]
    fn queued_writes_fold_into_the_next_round_automatically() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        let first = col.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        col.align_views_async(&first).unwrap();
        assert!(col.alignment_pending());

        // This write arrives mid-alignment: it is queued, not applied, and
        // immediately visible through the overlay.
        let second = col.write_batch(&[(25 * VALUES_PER_PAGE, 7_777)]);
        assert_eq!(second[0].old_value, values[25 * VALUES_PER_PAGE]);
        assert_eq!(col.write_overlay().len(), 1);
        assert_eq!(
            col.column().value(25 * VALUES_PER_PAGE),
            values[25 * VALUES_PER_PAGE],
            "queued write has not reached the physical column"
        );
        let probe = RangeQuery::new(7_777, 7_777);
        assert_eq!(col.query(&probe).unwrap().count, 1, "overlay answers");

        // Publishing the first round completes it and auto-folds the queue
        // into a fresh background round — no alignment call needed.
        let stats = col.publish_aligned_views().unwrap().expect("round pending");
        assert_eq!(stats.pages_added, 1);
        assert_eq!(stats.batch_size, first.len());
        assert!(col.alignment_pending(), "queued write spawned a new round");
        assert_eq!(col.column().value(25 * VALUES_PER_PAGE), 7_777);
        assert_eq!(col.query(&probe).unwrap().count, 1, "still visible");

        col.flush_pending_writes().unwrap();
        assert!(!col.alignment_pending());
        assert!(col.write_overlay().is_empty());
        assert_eq!(col.view_generation(), 2, "two rounds, two epochs");
        // Both pages made it into the view and answers match the baseline.
        let q = RangeQuery::new(5_000, 9_400);
        let out = col.query(&q).unwrap();
        let base = col.full_scan(&q);
        assert_eq!(out.count, base.count);
        assert_eq!(col.query(&probe).unwrap().count, 1);
        // Each published chunk left a record behind.
        assert_eq!(col.chunk_records().len(), 2);
        assert_eq!(col.take_chunk_records().len(), 2);
        assert!(col.chunk_records().is_empty());
    }

    #[test]
    fn starting_a_new_async_alignment_flushes_the_previous_one() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        let first = col.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        col.align_views_async(&first).unwrap();
        // Starting another round flushes the previous one (blocking).
        col.align_views_async(&[]).unwrap();
        assert_eq!(col.view_generation(), 1, "first round was published");
        assert!(!col.alignment_pending(), "empty batch starts no round");
        let q = RangeQuery::new(5_000, 9_400);
        let out = col.query(&q).unwrap();
        assert_eq!(out.count, col.full_scan(&q).count);
    }

    /// The core mid-alignment guarantee: every read issued between a
    /// write's acknowledgement and the publish of the round folding it
    /// returns the written value — through adaptive queries, full scans,
    /// row collection and count-only queries alike.
    fn check_mid_alignment_reads_see_acknowledged_writes<B: Backend>(make_backend: impl Fn() -> B) {
        let values = clustered_values(32);
        let mut col = adaptive(make_backend(), &values, AdaptiveConfig::default());
        col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        col.query(&RangeQuery::new(20_000, 24_000)).unwrap();

        // Base batch, applied directly and shipped to a background round.
        // It only rewrites values on pages the views already map (and keeps
        // them qualifying), so mid-alignment view scans observe it through
        // the physical aliasing — a directly-applied batch that *moves*
        // rows across unmapped pages stays invisible to view-routed scans
        // until publish (the documented pre-batch-epoch contract); the
        // overlay guarantee below is about *queued* writes.
        let base_writes: Vec<(usize, u64)> = (5..9)
            .map(|p| (p * VALUES_PER_PAGE + p, 6_000 + p as u64))
            .collect();
        let updates = col.write_batch(&base_writes);
        col.align_views_async(&updates).unwrap();
        assert!(col.alignment_pending());

        // Acknowledged mid-alignment: moves a row into a view's range, out
        // of another's, and overwrites a previously queued row.
        let queued: Vec<(usize, u64)> = vec![
            (3 * VALUES_PER_PAGE + 1, 8_888),   // into [5000, 9400]
            (21 * VALUES_PER_PAGE, 1),          // out of [20000, 24000]
            (3 * VALUES_PER_PAGE + 1, 21_111),  // overwrite: last write wins
            (30 * VALUES_PER_PAGE + 9, 23_456), // into [20000, 24000]
        ];
        col.write_batch(&queued);

        // Reference model: all writes applied.
        let mut model = values.clone();
        for &(row, v) in base_writes.iter().chain(&queued) {
            model[row] = v;
        }
        let check = |col: &mut AdaptiveColumn<B>, label: &str| {
            for (lo, hi) in [
                (5_000u64, 9_400u64),
                (20_000, 24_000),
                (21_000, 21_200),
                (0, 40_000),
            ] {
                let q = RangeQuery::new(lo, hi);
                let (count, sum) = reference_answer(&model, q.range());
                let out = col.query(&q).unwrap();
                assert_eq!(out.count, count, "{label} query [{lo},{hi}]");
                assert_eq!(out.sum, sum, "{label} query [{lo},{hi}]");
                let base = col.full_scan(&q);
                assert_eq!(base.count, count, "{label} full_scan [{lo},{hi}]");
                assert_eq!(base.sum, sum, "{label} full_scan [{lo},{hi}]");
                let counted = col.query(&q.count_only()).unwrap();
                assert_eq!(counted.count, count, "{label} count_only [{lo},{hi}]");
                assert_eq!(counted.sum, 0, "{label} count_only [{lo},{hi}]");
                let mut rows = col.query_collect(&q).unwrap().rows.unwrap();
                rows.sort_unstable();
                let expected_rows: Vec<u64> = model
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| q.range().contains(**v))
                    .map(|(i, _)| i as u64)
                    .collect();
                assert_eq!(rows, expected_rows, "{label} rows [{lo},{hi}]");
            }
        };
        check(&mut col, "mid-alignment");
        // After the rounds drain, everything still agrees.
        col.flush_pending_writes().unwrap();
        assert!(!col.alignment_pending());
        assert!(col.write_overlay().is_empty());
        check(&mut col, "post-flush");
    }

    #[test]
    fn mid_alignment_reads_see_acknowledged_writes_sim() {
        check_mid_alignment_reads_see_acknowledged_writes(SimBackend::new);
    }

    #[test]
    fn mid_alignment_reads_see_acknowledged_writes_mmap() {
        check_mid_alignment_reads_see_acknowledged_writes(MmapBackend::new);
    }

    #[test]
    fn chunked_rounds_publish_one_epoch_per_chunk() {
        let values = clustered_values(64);
        let chunked_config =
            AdaptiveConfig::default().with_chunking(AlignChunking::default().with_chunk_updates(4));
        let mut chunked = adaptive(SimBackend::new(), &values, chunked_config);
        let mut sync = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        for col in [&mut chunked, &mut sync] {
            col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        }
        // 20 updates on 20 distinct pages → 5 chunks of 4 updates.
        let writes: Vec<(usize, u64)> = (10..30)
            .map(|p| (p * VALUES_PER_PAGE + p, 6_000 + p as u64))
            .collect();
        let chunked_updates = chunked.write_batch(&writes);
        let sync_updates = sync.write_batch(&writes);

        let generation_before = chunked.view_generation();
        chunked.align_views_async(&chunked_updates).unwrap();
        let agg = chunked
            .publish_aligned_views()
            .unwrap()
            .expect("round pending");
        assert_eq!(
            chunked.view_generation(),
            generation_before + 5,
            "one epoch per chunk"
        );
        let records = chunked.take_chunk_records();
        assert_eq!(records.len(), 5);
        assert!(records.iter().all(|r| r.updates == 4));
        assert_eq!(
            records.iter().map(|r| r.chunk_index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(agg.pages_added, 20);
        assert_eq!(agg.deduped_size, 20);
        assert_eq!(agg.batch_size, chunked_updates.len());

        // Chunked and unchunked end in the same layout and answers.
        let sync_stats = sync.align_views(&sync_updates).unwrap();
        assert_eq!(sync_stats.pages_added, agg.pages_added);
        let q = RangeQuery::new(5_000, 9_400);
        let a = chunked.query(&q).unwrap();
        let b = sync.query(&q).unwrap();
        assert_eq!((a.count, a.sum), (b.count, b.sum));
        assert_eq!(
            chunked.views().partial_view(0).unwrap().num_pages(),
            sync.views().partial_view(0).unwrap().num_pages()
        );
    }

    #[test]
    fn backpressure_mid_batch_never_strands_overlay_entries() {
        // Regression guard: every write of a batch crossing the queue bound
        // must stay acknowledged and eventually drain — nothing may be
        // stranded in the overlay once all rounds flush.
        let values = clustered_values(32);
        let config = AdaptiveConfig::default()
            .with_chunking(AlignChunking::default().with_max_queued_writes(2));
        let mut col = adaptive(SimBackend::new(), &values, config);
        col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        let updates = col.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        col.align_views_async(&updates).unwrap();
        // Four writes: two fill the queue, the rest exceed the soft bound.
        // (Written values lie outside the generated data's domain, so each
        // mid-alignment point query counts exactly the acknowledged write.)
        let batch: Vec<(usize, u64)> = (10..14)
            .map(|p| (p * VALUES_PER_PAGE, 600_000 + p as u64))
            .collect();
        col.write_batch(&batch);
        for &(row, v) in &batch {
            let out = col.query(&RangeQuery::new(v, v)).unwrap();
            assert_eq!(out.count, 1, "row {row} acknowledged mid-alignment");
        }
        col.flush_pending_writes().unwrap();
        assert!(!col.alignment_pending());
        assert!(col.write_overlay().is_empty(), "no stranded entries");
        for &(row, v) in &batch {
            assert_eq!(col.column().value(row), v, "row {row} reached the column");
        }
        // A later direct write stays visible (no stale overlay masking it).
        col.write(13 * VALUES_PER_PAGE, 777_777);
        let out = col.query(&RangeQuery::new(777_777, 777_777)).unwrap();
        assert_eq!(out.count, 1);
    }

    #[test]
    fn queue_backpressure_starts_draining_instead_of_blocking() {
        let values = clustered_values(32);
        let config = AdaptiveConfig::default()
            .with_chunking(AlignChunking::default().with_max_queued_writes(2));
        let mut col = adaptive(SimBackend::new(), &values, config);
        col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        let updates = col.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        col.align_views_async(&updates).unwrap();
        // Two writes fit the queue; the third crosses the (soft) bound. The
        // old behaviour blocked the writer on a full flush; now the round is
        // only nudged forward, so the write is acknowledged immediately and
        // alignment work stays in flight (a completed round auto-folds the
        // queue into a fresh one — it never force-drains synchronously).
        col.write(10 * VALUES_PER_PAGE, 700_001);
        col.write(11 * VALUES_PER_PAGE, 700_002);
        assert_eq!(col.write_overlay().len(), 2);
        col.write(12 * VALUES_PER_PAGE, 700_003);
        assert!(
            col.alignment_pending(),
            "backpressure must not flush synchronously"
        );
        for v in 700_001..=700_003u64 {
            let out = col.query(&RangeQuery::new(v, v)).unwrap();
            assert_eq!(out.count, 1, "write {v} acknowledged");
        }
        col.flush_pending_writes().unwrap();
        assert!(col.write_overlay().is_empty());
        assert_eq!(col.column().value(12 * VALUES_PER_PAGE), 700_003);
        assert_eq!(col.column().value(10 * VALUES_PER_PAGE), 700_001);
    }

    #[test]
    fn install_view_bypasses_retention() {
        let values = clustered_values(16);
        let config = AdaptiveConfig::default().with_adaptive_creation(false);
        let mut col = adaptive(SimBackend::new(), &values, config);
        let range = ValueRange::new(5_000, 9_400);
        let (buffer, _) =
            crate::creation::build_view_for_range(col.column(), &range, &CreationOptions::ALL)
                .unwrap();
        col.install_view(range, buffer);
        assert_eq!(col.views().num_partial_views(), 1);
        let q = RangeQuery::new(6_000, 8_000);
        let out = col.query(&q).unwrap();
        assert_eq!(out.views_used, vec![ViewId::Partial(0)]);
        assert_eq!(out.count, col.full_scan(&q).count);
    }

    #[test]
    fn multi_view_mode_combines_views_without_double_counting() {
        let values = clustered_values(40);
        let config = AdaptiveConfig::paper_multi_view(50);
        let mut col = adaptive(SimBackend::new(), &values, config);
        // Create two overlapping views via two queries.
        col.query(&RangeQuery::new(5_000, 12_000)).unwrap();
        col.query(&RangeQuery::new(11_000, 20_000)).unwrap();
        assert!(col.views().num_partial_views() >= 2);
        // A query spanning both views must use them together and still be
        // exact despite the shared pages.
        let q = RangeQuery::new(6_000, 19_000);
        let out = col.query(&q).unwrap();
        let base = col.full_scan(&q);
        assert_eq!(out.count, base.count);
        assert_eq!(out.sum, base.sum);
        assert!(out.num_views_used() >= 2);
        assert!(out.scanned_pages < 40);
    }

    #[test]
    fn view_limit_freezes_view_creation() {
        let values = clustered_values(32);
        let config = AdaptiveConfig::default().with_max_views(2);
        let mut col = adaptive(SimBackend::new(), &values, config);
        col.query(&RangeQuery::new(1_000, 2_000)).unwrap();
        col.query(&RangeQuery::new(10_000, 11_000)).unwrap();
        assert_eq!(col.views().num_partial_views(), 2);
        let out = col.query(&RangeQuery::new(20_000, 21_000)).unwrap();
        assert_eq!(out.view_maintenance, ViewMaintenance::NotAttempted);
        assert_eq!(col.views().num_partial_views(), 2);
    }

    #[test]
    fn disabling_adaptive_creation_keeps_views_static() {
        let values = clustered_values(16);
        let config = AdaptiveConfig::default().with_adaptive_creation(false);
        let mut col = adaptive(SimBackend::new(), &values, config);
        let out = col.query(&RangeQuery::new(1_000, 2_000)).unwrap();
        assert_eq!(out.view_maintenance, ViewMaintenance::NotAttempted);
        assert_eq!(col.views().num_partial_views(), 0);
    }

    #[test]
    fn repeated_identical_queries_do_not_accumulate_views() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        for _ in 0..5 {
            col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        }
        // The first query inserts a view; subsequent identical candidates
        // cover a subset (or the same range) with the same page count and
        // are discarded.
        assert_eq!(col.views().num_partial_views(), 1);
    }

    #[test]
    fn uniform_data_yields_no_useful_views_but_correct_answers() {
        // With uniform data every page contains small and large values, so
        // candidate views index (almost) all pages and are discarded.
        let values: Vec<u64> = (0..16 * VALUES_PER_PAGE as u64)
            .map(|i| (i * 2_654_435_761) % 1_000_000)
            .collect();
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        let q = RangeQuery::new(0, 500_000);
        let out = col.query(&q).unwrap();
        let (count, sum) = reference_answer(&values, q.range());
        assert_eq!((out.count, out.sum), (count, sum));
        assert_eq!(out.view_maintenance, ViewMaintenance::DiscardedNotSmaller);
        assert_eq!(col.views().num_partial_views(), 0);
    }

    #[test]
    fn empty_column_queries_return_zero() {
        let mut col = adaptive(SimBackend::new(), &[], AdaptiveConfig::default());
        let out = col.query(&RangeQuery::new(0, 100)).unwrap();
        assert_eq!(out.count, 0);
        assert_eq!(out.scanned_pages, 0);
    }

    #[test]
    fn degenerate_all_equal_column() {
        let values = vec![7u64; 3 * VALUES_PER_PAGE];
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        let hit = col.query(&RangeQuery::new(7, 7)).unwrap();
        assert_eq!(hit.count, values.len() as u64);
        let miss = col.query(&RangeQuery::new(8, 100)).unwrap();
        assert_eq!(miss.count, 0);
    }

    #[test]
    fn writes_are_visible_to_subsequent_queries_via_full_view() {
        let values = clustered_values(8);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        let updates = col.write_batch(&[(0, 999_999)]);
        assert_eq!(updates[0].old_value, values[0]);
        let out = col.query(&RangeQuery::new(999_999, 999_999)).unwrap();
        assert_eq!(out.count, 1);
        assert_eq!(col.column().value(0), 999_999);
    }

    #[test]
    fn set_routing_switches_mode() {
        let values = clustered_values(8);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        assert_eq!(col.config().routing, RoutingMode::SingleView);
        col.set_routing(RoutingMode::MultiView);
        assert_eq!(col.config().routing, RoutingMode::MultiView);
    }

    #[test]
    fn widen_candidate_range_clamps_to_source_coverage() {
        let q = ValueRange::new(100, 200);
        // Source views cover [50, 400]; non-qualifying observations at 80
        // and 320 narrow the widened range to [81, 319].
        let w = widen_candidate_range(&q, &ValueRange::new(50, 400), Some(80), Some(320));
        assert_eq!(w, ValueRange::new(81, 319));
        // Without observations the candidate covers the whole source range.
        let w = widen_candidate_range(&q, &ValueRange::new(50, 400), None, None);
        assert_eq!(w, ValueRange::new(50, 400));
        // Observations outside the source coverage cannot widen beyond it.
        let w = widen_candidate_range(&q, &ValueRange::new(90, 210), Some(10), Some(999));
        assert_eq!(w, ValueRange::new(90, 210));
    }
}
