//! The adaptive column: query answering with adaptive view maintenance.
//!
//! [`AdaptiveColumn`] ties everything together and implements the paper's
//! Listing 1 (`answerQueryAndMaintainViews`): every range query is routed to
//! the most fitting view(s), answered by scanning them (skipping shared
//! pages), and — as a side-product — a new candidate partial view covering
//! (at least) the query range is materialized and offered to the view index.

use asv_storage::{Column, ScanKernel, ScanMode, Update};
use asv_util::{Timer, ValueRange};
use asv_vmem::{Backend, ViewBuffer, VmemError};

use crate::align::{apply_plan, snapshot_alignment, spawn_alignment, PendingAlignment};
use crate::config::{AdaptiveConfig, RoutingMode};
use crate::creation::create_while_scanning;
use crate::exec::scan_selected_views;
use crate::query::{QueryExecution, QueryOutcome, RangeQuery, ViewMaintenance};
use crate::router::{route, ViewId};
use crate::updates::{align_views_after_updates_with, rebuild_all_views, UpdateAlignmentStats};
use crate::viewset::ViewSet;

/// A column equipped with the adaptive virtual-view layer.
pub struct AdaptiveColumn<B: Backend> {
    column: Column<B>,
    views: ViewSet<B>,
    config: AdaptiveConfig,
    /// An in-flight background alignment, if any. While it is pending,
    /// queries run against the pre-batch view epoch and adaptive view
    /// creation is paused (so the planned view positions stay valid).
    pending_alignment: Option<PendingAlignment>,
}

/// The [`ScanMode`] a query resolves to.
fn scan_mode(query: &RangeQuery, collect_rows: bool) -> ScanMode {
    if collect_rows {
        ScanMode::CollectRows
    } else if query.is_count_only() {
        ScanMode::CountOnly
    } else {
        ScanMode::Aggregate
    }
}

impl<B: Backend> AdaptiveColumn<B> {
    /// Wraps an existing column.
    pub fn new(column: Column<B>, config: AdaptiveConfig) -> Result<Self, VmemError> {
        let views = ViewSet::new(config.max_views);
        Ok(Self {
            column,
            views,
            config,
            pending_alignment: None,
        })
    }

    /// Materializes a column from values and wraps it in one step.
    pub fn from_values(
        backend: B,
        values: &[u64],
        config: AdaptiveConfig,
    ) -> Result<Self, VmemError> {
        Self::new(Column::from_values(backend, values)?, config)
    }

    /// The underlying physical column.
    pub fn column(&self) -> &Column<B> {
        &self.column
    }

    /// The set of partial views currently maintained.
    pub fn views(&self) -> &ViewSet<B> {
        &self.views
    }

    /// The active configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Changes the routing mode at runtime.
    pub fn set_routing(&mut self, routing: RoutingMode) {
        self.config.routing = routing;
    }

    /// Answers `query`, adaptively maintaining partial views as a
    /// side-product (Listing 1). Returns the aggregate answer.
    pub fn query(&mut self, query: &RangeQuery) -> Result<QueryOutcome, VmemError> {
        self.answer_and_maintain(query, false)
    }

    /// Like [`Self::query`], but also collects the qualifying row ids.
    pub fn query_collect(&mut self, query: &RangeQuery) -> Result<QueryOutcome, VmemError> {
        self.answer_and_maintain(query, true)
    }

    /// Answers `query` with a plain full scan, bypassing all views and all
    /// adaptivity — the baseline of the paper's evaluation (§3.2). The scan
    /// honours the configured [`asv_util::Parallelism`] by sharding the full
    /// view's page range across the fork-join pool.
    pub fn full_scan(&self, query: &RangeQuery) -> QueryOutcome {
        self.full_scan_impl(query, false)
    }

    /// Like [`Self::full_scan`], but also collects the qualifying row ids —
    /// the row-level baseline [`Self::query_collect`] is compared against.
    pub fn full_scan_collect(&self, query: &RangeQuery) -> QueryOutcome {
        self.full_scan_impl(query, true)
    }

    fn full_scan_impl(&self, query: &RangeQuery, collect_rows: bool) -> QueryOutcome {
        let timer = Timer::start();
        let out = self.column.full_scan_with(
            query.range(),
            scan_mode(query, collect_rows),
            self.config.parallelism,
        );
        QueryOutcome {
            count: out.result.count,
            sum: out.result.sum,
            rows: out.rows,
            scanned_pages: self.column.num_pages(),
            views_used: vec![ViewId::Full],
            view_maintenance: ViewMaintenance::NotAttempted,
            executed: QueryExecution::FullScan,
            elapsed: timer.elapsed(),
        }
    }

    /// Writes `new_value` into `row` through the storage layer (the "update
    /// through the full view" path of §2.4). The partial views are *not*
    /// touched; call [`Self::align_views`] with the collected update records
    /// to re-align them batch-wise.
    pub fn write(&mut self, row: usize, new_value: u64) -> Update {
        self.column.write(row, new_value)
    }

    /// Applies a batch of `(row, value)` writes, returning the update
    /// records to later pass to [`Self::align_views`].
    pub fn write_batch(&mut self, writes: &[(usize, u64)]) -> Vec<Update> {
        self.column.write_batch(writes)
    }

    /// Aligns all partial views with an already-applied batch of updates
    /// (paper §2.4–2.5), synchronously: queries cannot run until the call
    /// returns. The per-view planning work is fork-joined across the
    /// configured [`asv_util::Parallelism`].
    ///
    /// A still-pending background alignment is published first.
    pub fn align_views(&mut self, batch: &[Update]) -> Result<UpdateAlignmentStats, VmemError> {
        self.publish_aligned_views()?;
        align_views_after_updates_with(
            &self.column,
            &mut self.views,
            batch,
            self.config.parallelism,
        )
    }

    /// Starts aligning all partial views with an already-applied batch of
    /// updates *in the background* (epoch handoff): the batch is shipped to
    /// a worker thread that plans the alignment against shadow copies of
    /// the view mappings, while queries keep running against the pre-batch
    /// view epoch. The aligned views become visible only once the plan is
    /// published ([`Self::poll_aligned_views`] / [`Self::publish_aligned_views`]),
    /// which bumps the view-set generation.
    ///
    /// While an alignment is pending, adaptive view creation is paused so
    /// the planned view positions stay valid; queries are answered as
    /// usual. A previously pending alignment is published (blocking) before
    /// the new one starts. Writes applied *after* this call are not seen by
    /// the pending plan — collect them into their own batch.
    pub fn align_views_async(&mut self, batch: &[Update]) -> Result<(), VmemError> {
        self.publish_aligned_views()?;
        if batch.is_empty() || self.views.is_empty() {
            return Ok(());
        }
        let snapshot = snapshot_alignment(&self.column, &self.views, batch)?;
        self.pending_alignment = Some(spawn_alignment(snapshot, self.config.parallelism));
        Ok(())
    }

    /// Returns `true` while a background alignment is in flight.
    pub fn alignment_pending(&self) -> bool {
        self.pending_alignment.is_some()
    }

    /// Publishes the pending background alignment *if* the worker has
    /// finished, without blocking. Returns the alignment stats when the
    /// epoch was advanced, `None` if nothing was (or still is) pending.
    pub fn poll_aligned_views(&mut self) -> Result<Option<UpdateAlignmentStats>, VmemError> {
        match &self.pending_alignment {
            Some(pending) if pending.is_finished() => self.publish_aligned_views(),
            _ => Ok(None),
        }
    }

    /// Waits for the pending background alignment (if any) and publishes
    /// it: the recorded mapping manipulations are replayed onto the real
    /// view buffers and the view-set generation is bumped. Queries issued
    /// after this call run on the post-batch view epoch.
    pub fn publish_aligned_views(&mut self) -> Result<Option<UpdateAlignmentStats>, VmemError> {
        match self.pending_alignment.take() {
            Some(pending) => {
                let plan = pending.join();
                let stats = apply_plan(&self.column, &mut self.views, &plan)?;
                Ok(Some(stats))
            }
            None => Ok(None),
        }
    }

    /// The current view epoch: bumped on every published alignment or
    /// rebuild. Queries observe one epoch for their whole execution.
    pub fn view_generation(&self) -> u64 {
        self.views.generation()
    }

    /// Installs a pre-built partial view covering `range` (warm start /
    /// experiment setup). The view bypasses the retention policy.
    pub fn install_view(&mut self, range: ValueRange, buffer: B::View) -> u64 {
        self.views.insert_unchecked(range, buffer)
    }

    /// Rebuilds every partial view from scratch (the comparison point for
    /// batched alignment in Figure 7). Returns the total rebuild time.
    ///
    /// A still-pending background alignment is published first.
    pub fn rebuild_views(&mut self) -> Result<std::time::Duration, VmemError> {
        self.publish_aligned_views()?;
        rebuild_all_views(&self.column, &mut self.views, &self.config.creation)
    }

    fn answer_and_maintain(
        &mut self,
        query: &RangeQuery,
        collect_rows: bool,
    ) -> Result<QueryOutcome, VmemError> {
        let timer = Timer::start();
        let selection = route(
            &self.column,
            &self.views,
            query.range(),
            self.config.routing,
        );
        // Adaptive creation is paused while a background alignment is
        // pending: the pending plan addresses views by position/id, so the
        // set must stay stable until it is published.
        let create_candidate = self.config.adaptive_creation
            && self.views.can_create_views()
            && self.pending_alignment.is_none();

        let column = &self.column;
        let views = &self.views;
        let kernel = ScanKernel::new(*query.range(), scan_mode(query, collect_rows));
        let parallelism = self.config.parallelism;

        let (candidate, scan) = if create_candidate {
            let (buffer, scan) = create_while_scanning(column, &self.config.creation, |sink| {
                scan_selected_views(column, views, &selection, &kernel, parallelism, Some(sink))
            })?;
            (Some(buffer), scan)
        } else {
            let scan = scan_selected_views(column, views, &selection, &kernel, parallelism, None)?;
            (None, scan)
        };

        // Range widening (Listing 1 lines 13-20): the candidate view covers
        // everything strictly between the closest non-qualifying values
        // observed around the query range, clamped to the covered range of
        // the source views.
        let maintenance = if let Some(buffer) = candidate {
            let widened =
                widen_candidate_range(query.range(), &selection.covered, scan.below, scan.above);
            let candidate_pages = buffer.mapped_pages();
            self.views.offer_candidate(
                widened,
                buffer,
                candidate_pages,
                self.column.num_pages(),
                self.config.discard_tolerance,
                self.config.replacement_tolerance,
            )
        } else {
            ViewMaintenance::NotAttempted
        };

        Ok(QueryOutcome {
            count: scan.result.count,
            sum: scan.result.sum,
            rows: scan.rows,
            scanned_pages: scan.scanned_pages,
            views_used: selection.views,
            view_maintenance: maintenance,
            executed: QueryExecution::Adaptive,
            elapsed: timer.elapsed(),
        })
    }
}

/// Computes the covered range of the candidate view.
fn widen_candidate_range(
    query: &ValueRange,
    source_covered: &ValueRange,
    below: Option<u64>,
    above: Option<u64>,
) -> ValueRange {
    let widened = query.widen_between(below, above);
    // Clamp to the range covered by the source views: pages outside that
    // coverage were never scanned, so nothing can be claimed about them.
    widened
        .intersect(source_covered)
        .unwrap_or(*query)
        .hull(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreationOptions;
    use asv_vmem::{MmapBackend, SimBackend, VALUES_PER_PAGE};

    /// Clustered data: page p holds values in [p*1000, p*1000 + 510].
    fn clustered_values(pages: usize) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    fn reference_answer(values: &[u64], range: &ValueRange) -> (u64, u128) {
        let mut count = 0u64;
        let mut sum = 0u128;
        for &v in values {
            if range.contains(v) {
                count += 1;
                sum += v as u128;
            }
        }
        (count, sum)
    }

    fn adaptive<B: Backend>(
        backend: B,
        values: &[u64],
        config: AdaptiveConfig,
    ) -> AdaptiveColumn<B> {
        AdaptiveColumn::from_values(backend, values, config).unwrap()
    }

    #[test]
    fn first_query_answers_correctly_and_creates_a_view() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        let q = RangeQuery::new(5_000, 9_400);
        let out = col.query(&q).unwrap();
        let (count, sum) = reference_answer(&values, q.range());
        assert_eq!(out.count, count);
        assert_eq!(out.sum, sum);
        assert_eq!(out.scanned_pages, 32); // first query = full scan
        assert_eq!(out.views_used, vec![ViewId::Full]);
        assert_eq!(out.view_maintenance, ViewMaintenance::Inserted);
        assert_eq!(col.views().num_partial_views(), 1);
        let view = col.views().partial_view(0).unwrap();
        assert_eq!(view.num_pages(), 5); // pages 5..=9 qualify
        assert!(view.range().covers(q.range()));
    }

    #[test]
    fn second_query_uses_the_new_view_and_scans_fewer_pages() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        let q = RangeQuery::new(6_000, 8_000);
        let out = col.query(&q).unwrap();
        let (count, sum) = reference_answer(&values, q.range());
        assert_eq!((out.count, out.sum), (count, sum));
        assert_eq!(out.views_used, vec![ViewId::Partial(0)]);
        assert!(out.scanned_pages <= 5);
    }

    /// Runs a query sequence on `backend`, asserting every adaptive answer
    /// against the full-scan baseline. Shared by the sim and mmap arms of
    /// the cross-backend test below (and by its parallel variant), replacing
    /// the previously copy-pasted per-backend loops.
    fn check_adaptive_matches_full_scans<B: Backend>(
        make_backend: impl Fn() -> B,
        label: &str,
        parallelism: asv_util::Parallelism,
    ) {
        let values = clustered_values(64);
        let mut config = AdaptiveConfig::default()
            .with_max_views(16)
            .with_parallelism(parallelism);
        config.creation = CreationOptions::ALL;
        // Exercise both routing modes.
        for routing in [RoutingMode::SingleView, RoutingMode::MultiView] {
            config.routing = routing;
            let queries: Vec<RangeQuery> = (0..20)
                .map(|i| {
                    let lo = (i * 2_900) as u64;
                    RangeQuery::new(lo, lo + 4_000)
                })
                .collect();
            let mut col = adaptive(make_backend(), &values, config);
            for q in &queries {
                let out = col.query(q).unwrap();
                let base = col.full_scan(q);
                assert_eq!(out.count, base.count, "{label}/{routing:?}");
                assert_eq!(out.sum, base.sum, "{label}/{routing:?}");
            }
        }
    }

    #[test]
    fn adaptive_answers_match_full_scans_over_a_query_sequence() {
        check_adaptive_matches_full_scans(
            SimBackend::new,
            "sim",
            asv_util::Parallelism::Sequential,
        );
        check_adaptive_matches_full_scans(
            MmapBackend::new,
            "mmap",
            asv_util::Parallelism::Sequential,
        );
    }

    #[test]
    fn adaptive_answers_match_full_scans_with_parallel_scans() {
        check_adaptive_matches_full_scans(
            SimBackend::new,
            "sim-par",
            asv_util::Parallelism::Threads(4),
        );
        check_adaptive_matches_full_scans(
            MmapBackend::new,
            "mmap-par",
            asv_util::Parallelism::Threads(4),
        );
    }

    #[test]
    fn count_only_queries_skip_the_checksum_but_count_correctly() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        let q = RangeQuery::new(5_000, 9_400).count_only();
        let out = col.query(&q).unwrap();
        let (count, _) = reference_answer(&values, q.range());
        assert_eq!(out.count, count);
        assert_eq!(out.sum, 0, "count-only answers carry no checksum");
        // Adaptive maintenance is unaffected: the candidate view still gets
        // created with the same widened range as a full query would build.
        assert_eq!(out.view_maintenance, ViewMaintenance::Inserted);
        assert_eq!(col.views().num_partial_views(), 1);
        let view = col.views().partial_view(0).unwrap();
        assert_eq!(view.num_pages(), 5);
        assert!(view.range().covers(q.range()));
        // The count-only full-scan baseline agrees.
        let base = col.full_scan(&q);
        assert_eq!(base.count, count);
        assert_eq!(base.sum, 0);
    }

    #[test]
    fn query_collect_returns_matching_rows() {
        let values = clustered_values(8);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        let q = RangeQuery::new(3_000, 3_050);
        let out = col.query_collect(&q).unwrap();
        let rows = out.rows.unwrap();
        assert_eq!(rows.len() as u64, out.count);
        for &r in &rows {
            assert!(q.range().contains(values[r as usize]));
        }
        // And the rows are exactly the reference set.
        let expected: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| q.range().contains(**v))
            .map(|(i, _)| i as u64)
            .collect();
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, expected);
    }

    /// The row-collecting baseline: `query_collect` must return exactly the
    /// rows `full_scan_collect` finds (up to order — views scan pages in
    /// slot order, the full scan in physical order).
    fn check_query_collect_matches_full_scan_collect<B: Backend>(backend: B, label: &str) {
        let values = clustered_values(32);
        let mut col = adaptive(backend, &values, AdaptiveConfig::default());
        for (lo, hi) in [
            (5_000, 9_400),
            (6_000, 8_000),
            (0, 40_000),
            (31_400, 31_510),
        ] {
            let q = RangeQuery::new(lo, hi);
            let out = col.query_collect(&q).unwrap();
            let base = col.full_scan_collect(&q);
            assert_eq!(out.count, base.count, "{label} [{lo},{hi}]");
            assert_eq!(out.sum, base.sum, "{label} [{lo},{hi}]");
            let mut rows = out.rows.expect("query_collect returns rows");
            rows.sort_unstable();
            let base_rows = base.rows.expect("full_scan_collect returns rows");
            // The full scan visits pages in physical order: already sorted.
            assert_eq!(rows, base_rows, "{label} [{lo},{hi}]");
        }
    }

    #[test]
    fn query_collect_matches_full_scan_collect() {
        check_query_collect_matches_full_scan_collect(SimBackend::new(), "sim");
        check_query_collect_matches_full_scan_collect(MmapBackend::new(), "mmap");
    }

    /// Background alignment: mid-alignment queries stay on the pre-batch
    /// view epoch, publish advances the generation, and the published view
    /// layout matches what synchronous alignment produces.
    fn check_background_alignment_epoch_handoff<B: Backend>(make_backend: impl Fn() -> B) {
        let values = clustered_values(32);
        let config = AdaptiveConfig::default();
        let mut bg = adaptive(make_backend(), &values, config);
        let mut sync = adaptive(make_backend(), &values, config);
        // Materialize the same partial views on both columns (the probe
        // query inserts its own smaller view on first contact, so run it
        // once up front to settle the view set identically on both twins).
        let seed_query = RangeQuery::new(5_000, 9_400);
        let probe = RangeQuery::new(6_000, 7_000);
        for q in [&seed_query, &probe] {
            bg.query(q).unwrap();
            sync.query(q).unwrap();
        }

        let writes: Vec<(usize, u64)> = (12..20)
            .map(|p| (p * VALUES_PER_PAGE + p, 6_000 + p as u64))
            .collect();
        let bg_updates = bg.write_batch(&writes);
        let sync_updates = sync.write_batch(&writes);

        // Freeze the pre-publish (stale-view) answer for a query routed
        // through the partial views.
        let stale = bg.query(&probe).unwrap();

        let generation_before = bg.view_generation();
        bg.align_views_async(&bg_updates).unwrap();
        assert!(bg.alignment_pending());

        // Mid-alignment: the query is answered on the pre-batch epoch —
        // same views, same answer as before the alignment started — and no
        // new views may appear while the plan is in flight.
        let mid = bg.query(&probe).unwrap();
        assert_eq!(mid.count, stale.count, "pre-batch epoch answer");
        assert_eq!(mid.sum, stale.sum, "pre-batch epoch answer");
        assert_eq!(mid.views_used, stale.views_used);
        assert_eq!(bg.view_generation(), generation_before);
        let uncovered = RangeQuery::new(25_000, 26_000);
        let out = bg.query(&uncovered).unwrap();
        assert_eq!(out.view_maintenance, ViewMaintenance::NotAttempted);

        // Publish and compare against the synchronous twin.
        let bg_stats = bg.publish_aligned_views().unwrap().expect("plan pending");
        assert!(!bg.alignment_pending());
        assert_eq!(bg.view_generation(), generation_before + 1);
        let sync_stats = sync.align_views(&sync_updates).unwrap();
        assert_eq!(bg_stats.pages_added, sync_stats.pages_added);
        assert_eq!(bg_stats.pages_removed, sync_stats.pages_removed);
        assert_eq!(
            bg.views().partial_view(0).unwrap().num_pages(),
            sync.views().partial_view(0).unwrap().num_pages()
        );
        // Post-publish answers match the full scan again.
        let post = bg.query(&probe).unwrap();
        let base = bg.full_scan(&probe);
        assert_eq!(post.count, base.count);
        assert_eq!(post.sum, base.sum);
        // And view creation resumes.
        let out = bg.query(&uncovered).unwrap();
        assert_ne!(out.view_maintenance, ViewMaintenance::NotAttempted);
    }

    #[test]
    fn background_alignment_epoch_handoff_sim() {
        check_background_alignment_epoch_handoff(SimBackend::new);
    }

    #[test]
    fn background_alignment_epoch_handoff_mmap() {
        check_background_alignment_epoch_handoff(MmapBackend::new);
    }

    #[test]
    fn poll_publishes_once_the_worker_finishes() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        let updates = col.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        col.align_views_async(&updates).unwrap();
        // Poll until the worker finishes (the plan is tiny, so this is
        // quick); polling must never block and eventually publishes.
        let stats = loop {
            if let Some(stats) = col.poll_aligned_views().unwrap() {
                break stats;
            }
            std::thread::yield_now();
        };
        assert_eq!(stats.pages_added, 1);
        assert!(!col.alignment_pending());
        assert_eq!(col.poll_aligned_views().unwrap(), None);
    }

    #[test]
    fn async_with_empty_batch_or_no_views_is_a_noop() {
        let values = clustered_values(8);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        // No views yet.
        let updates = col.write_batch(&[(0, 42)]);
        col.align_views_async(&updates).unwrap();
        assert!(!col.alignment_pending());
        // Views exist, but the batch is empty.
        col.query(&RangeQuery::new(1_000, 2_000)).unwrap();
        col.align_views_async(&[]).unwrap();
        assert!(!col.alignment_pending());
        assert_eq!(col.publish_aligned_views().unwrap(), None);
    }

    #[test]
    fn starting_a_new_async_alignment_publishes_the_previous_one() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        let first = col.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        col.align_views_async(&first).unwrap();
        let second = col.write_batch(&[(25 * VALUES_PER_PAGE, 7_000)]);
        col.align_views_async(&second).unwrap();
        assert_eq!(col.view_generation(), 1, "first batch was published");
        col.publish_aligned_views().unwrap();
        assert_eq!(col.view_generation(), 2);
        // Both pages made it into the view.
        let q = RangeQuery::new(5_000, 9_400);
        let out = col.query(&q).unwrap();
        let base = col.full_scan(&q);
        assert_eq!(out.count, base.count);
    }

    #[test]
    fn install_view_bypasses_retention() {
        let values = clustered_values(16);
        let config = AdaptiveConfig::default().with_adaptive_creation(false);
        let mut col = adaptive(SimBackend::new(), &values, config);
        let range = ValueRange::new(5_000, 9_400);
        let (buffer, _) =
            crate::creation::build_view_for_range(col.column(), &range, &CreationOptions::ALL)
                .unwrap();
        col.install_view(range, buffer);
        assert_eq!(col.views().num_partial_views(), 1);
        let q = RangeQuery::new(6_000, 8_000);
        let out = col.query(&q).unwrap();
        assert_eq!(out.views_used, vec![ViewId::Partial(0)]);
        assert_eq!(out.count, col.full_scan(&q).count);
    }

    #[test]
    fn multi_view_mode_combines_views_without_double_counting() {
        let values = clustered_values(40);
        let config = AdaptiveConfig::paper_multi_view(50);
        let mut col = adaptive(SimBackend::new(), &values, config);
        // Create two overlapping views via two queries.
        col.query(&RangeQuery::new(5_000, 12_000)).unwrap();
        col.query(&RangeQuery::new(11_000, 20_000)).unwrap();
        assert!(col.views().num_partial_views() >= 2);
        // A query spanning both views must use them together and still be
        // exact despite the shared pages.
        let q = RangeQuery::new(6_000, 19_000);
        let out = col.query(&q).unwrap();
        let base = col.full_scan(&q);
        assert_eq!(out.count, base.count);
        assert_eq!(out.sum, base.sum);
        assert!(out.num_views_used() >= 2);
        assert!(out.scanned_pages < 40);
    }

    #[test]
    fn view_limit_freezes_view_creation() {
        let values = clustered_values(32);
        let config = AdaptiveConfig::default().with_max_views(2);
        let mut col = adaptive(SimBackend::new(), &values, config);
        col.query(&RangeQuery::new(1_000, 2_000)).unwrap();
        col.query(&RangeQuery::new(10_000, 11_000)).unwrap();
        assert_eq!(col.views().num_partial_views(), 2);
        let out = col.query(&RangeQuery::new(20_000, 21_000)).unwrap();
        assert_eq!(out.view_maintenance, ViewMaintenance::NotAttempted);
        assert_eq!(col.views().num_partial_views(), 2);
    }

    #[test]
    fn disabling_adaptive_creation_keeps_views_static() {
        let values = clustered_values(16);
        let config = AdaptiveConfig::default().with_adaptive_creation(false);
        let mut col = adaptive(SimBackend::new(), &values, config);
        let out = col.query(&RangeQuery::new(1_000, 2_000)).unwrap();
        assert_eq!(out.view_maintenance, ViewMaintenance::NotAttempted);
        assert_eq!(col.views().num_partial_views(), 0);
    }

    #[test]
    fn repeated_identical_queries_do_not_accumulate_views() {
        let values = clustered_values(32);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        for _ in 0..5 {
            col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        }
        // The first query inserts a view; subsequent identical candidates
        // cover a subset (or the same range) with the same page count and
        // are discarded.
        assert_eq!(col.views().num_partial_views(), 1);
    }

    #[test]
    fn uniform_data_yields_no_useful_views_but_correct_answers() {
        // With uniform data every page contains small and large values, so
        // candidate views index (almost) all pages and are discarded.
        let values: Vec<u64> = (0..16 * VALUES_PER_PAGE as u64)
            .map(|i| (i * 2_654_435_761) % 1_000_000)
            .collect();
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        let q = RangeQuery::new(0, 500_000);
        let out = col.query(&q).unwrap();
        let (count, sum) = reference_answer(&values, q.range());
        assert_eq!((out.count, out.sum), (count, sum));
        assert_eq!(out.view_maintenance, ViewMaintenance::DiscardedNotSmaller);
        assert_eq!(col.views().num_partial_views(), 0);
    }

    #[test]
    fn empty_column_queries_return_zero() {
        let mut col = adaptive(SimBackend::new(), &[], AdaptiveConfig::default());
        let out = col.query(&RangeQuery::new(0, 100)).unwrap();
        assert_eq!(out.count, 0);
        assert_eq!(out.scanned_pages, 0);
    }

    #[test]
    fn degenerate_all_equal_column() {
        let values = vec![7u64; 3 * VALUES_PER_PAGE];
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        let hit = col.query(&RangeQuery::new(7, 7)).unwrap();
        assert_eq!(hit.count, values.len() as u64);
        let miss = col.query(&RangeQuery::new(8, 100)).unwrap();
        assert_eq!(miss.count, 0);
    }

    #[test]
    fn writes_are_visible_to_subsequent_queries_via_full_view() {
        let values = clustered_values(8);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        let updates = col.write_batch(&[(0, 999_999)]);
        assert_eq!(updates[0].old_value, values[0]);
        let out = col.query(&RangeQuery::new(999_999, 999_999)).unwrap();
        assert_eq!(out.count, 1);
        assert_eq!(col.column().value(0), 999_999);
    }

    #[test]
    fn set_routing_switches_mode() {
        let values = clustered_values(8);
        let mut col = adaptive(SimBackend::new(), &values, AdaptiveConfig::default());
        assert_eq!(col.config().routing, RoutingMode::SingleView);
        col.set_routing(RoutingMode::MultiView);
        assert_eq!(col.config().routing, RoutingMode::MultiView);
    }

    #[test]
    fn widen_candidate_range_clamps_to_source_coverage() {
        let q = ValueRange::new(100, 200);
        // Source views cover [50, 400]; non-qualifying observations at 80
        // and 320 narrow the widened range to [81, 319].
        let w = widen_candidate_range(&q, &ValueRange::new(50, 400), Some(80), Some(320));
        assert_eq!(w, ValueRange::new(81, 319));
        // Without observations the candidate covers the whole source range.
        let w = widen_candidate_range(&q, &ValueRange::new(50, 400), None, None);
        assert_eq!(w, ValueRange::new(50, 400));
        // Observations outside the source coverage cannot widen beyond it.
        let w = widen_candidate_range(&q, &ValueRange::new(90, 210), Some(10), Some(999));
        assert_eq!(w, ValueRange::new(90, 210));
    }
}
