//! Adaptive tables: one adaptive view layer per column.
//!
//! Figure 1 of the paper shows the full table representation: every column
//! of a table carries its own physical column, full view and partial views.
//! [`AdaptiveTable`] is that composition — a catalog of [`AdaptiveColumn`]s
//! over the same row space — plus a simple conjunctive multi-column query
//! path that routes each predicate to the corresponding column's views and
//! intersects the qualifying row sets.

use std::collections::HashMap;

use asv_vmem::{Backend, VmemError};

use crate::adaptive::AdaptiveColumn;
use crate::config::AdaptiveConfig;
use crate::query::{QueryOutcome, RangeQuery};

/// A table whose columns are all equipped with the adaptive view layer.
pub struct AdaptiveTable<B: Backend> {
    name: String,
    columns: Vec<(String, AdaptiveColumn<B>)>,
    index: HashMap<String, usize>,
    num_rows: usize,
}

/// The result of a conjunctive multi-column query.
#[derive(Clone, Debug, Default)]
pub struct ConjunctiveOutcome {
    /// Row ids satisfying *all* predicates, in ascending order.
    pub rows: Vec<u64>,
    /// The per-column outcomes, in predicate order (exposes per-column scan
    /// effort and view usage).
    pub per_column: Vec<QueryOutcome>,
}

impl<B: Backend> AdaptiveTable<B> {
    /// Creates an empty adaptive table.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            columns: Vec::new(),
            index: HashMap::new(),
            num_rows: 0,
        }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows (identical across columns; 0 while empty).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Returns `true` if the table has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Adds a column materialized from `values` with its own adaptive
    /// configuration.
    ///
    /// # Panics
    /// Panics if a column of that name exists or the row count differs from
    /// the existing columns'.
    pub fn add_column(
        &mut self,
        name: impl Into<String>,
        backend: B,
        values: &[u64],
        config: AdaptiveConfig,
    ) -> Result<(), VmemError> {
        let name = name.into();
        assert!(
            !self.index.contains_key(&name),
            "column '{name}' already exists in table '{}'",
            self.name
        );
        if !self.columns.is_empty() {
            assert_eq!(
                self.num_rows,
                values.len(),
                "column '{name}' has {} rows but table '{}' has {}",
                values.len(),
                self.name,
                self.num_rows
            );
        } else {
            self.num_rows = values.len();
        }
        let column = AdaptiveColumn::from_values(backend, values, config)?;
        self.index.insert(name.clone(), self.columns.len());
        self.columns.push((name, column));
        Ok(())
    }

    /// Looks up a column's adaptive layer by name.
    pub fn column(&self, name: &str) -> Option<&AdaptiveColumn<B>> {
        self.index.get(name).map(|&i| &self.columns[i].1)
    }

    /// Looks up a column's adaptive layer by name, mutably (needed for
    /// querying, since query processing maintains views).
    pub fn column_mut(&mut self, name: &str) -> Option<&mut AdaptiveColumn<B>> {
        let i = *self.index.get(name)?;
        Some(&mut self.columns[i].1)
    }

    /// Names of all columns in insertion order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Answers a single-column range query through that column's adaptive
    /// layer.
    ///
    /// # Panics
    /// Panics if the column does not exist.
    pub fn query_column(
        &mut self,
        column: &str,
        query: &RangeQuery,
    ) -> Result<QueryOutcome, VmemError> {
        let col = self
            .column_mut(column)
            .unwrap_or_else(|| panic!("unknown column '{column}'"));
        col.query(query)
    }

    /// Answers a conjunctive query: every `(column, range)` predicate must
    /// hold. Each predicate is routed to its column's views (creating
    /// partial views as a side-product, as usual); the per-column row sets
    /// are then intersected.
    ///
    /// # Panics
    /// Panics if any referenced column does not exist or no predicate is
    /// given.
    pub fn query_conjunctive(
        &mut self,
        predicates: &[(&str, RangeQuery)],
    ) -> Result<ConjunctiveOutcome, VmemError> {
        assert!(!predicates.is_empty(), "need at least one predicate");
        let mut per_column = Vec::with_capacity(predicates.len());
        let mut result_rows: Option<Vec<u64>> = None;
        for (column, query) in predicates {
            let col = self
                .column_mut(column)
                .unwrap_or_else(|| panic!("unknown column '{column}'"));
            let outcome = col.query_collect(query)?;
            let mut rows = outcome.rows.clone().unwrap_or_default();
            rows.sort_unstable();
            result_rows = Some(match result_rows {
                None => rows,
                Some(existing) => intersect_sorted(&existing, &rows),
            });
            per_column.push(outcome);
        }
        Ok(ConjunctiveOutcome {
            rows: result_rows.unwrap_or_default(),
            per_column,
        })
    }

    /// Writes `new_value` into `row` of `column` and returns the update
    /// record (see [`AdaptiveColumn::write`]).
    ///
    /// # Panics
    /// Panics if the column does not exist.
    pub fn write(&mut self, column: &str, row: usize, new_value: u64) -> asv_storage::Update {
        self.column_mut(column)
            .unwrap_or_else(|| panic!("unknown column '{column}'"))
            .write(row, new_value)
    }
}

/// Intersects two ascending, duplicate-free row-id lists.
fn intersect_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl<B: Backend> std::fmt::Debug for AdaptiveTable<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveTable")
            .field("name", &self.name)
            .field("num_columns", &self.columns.len())
            .field("num_rows", &self.num_rows)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::{SimBackend, VALUES_PER_PAGE};

    fn clustered(pages: usize, stride: u64) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| (i / VALUES_PER_PAGE) as u64 * stride + (i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    fn table() -> (AdaptiveTable<SimBackend>, Vec<u64>, Vec<u64>) {
        let a = clustered(16, 1_000);
        let b = clustered(16, 2_000);
        let mut t = AdaptiveTable::new("readings");
        t.add_column("a", SimBackend::new(), &a, AdaptiveConfig::default())
            .unwrap();
        t.add_column("b", SimBackend::new(), &b, AdaptiveConfig::default())
            .unwrap();
        (t, a, b)
    }

    #[test]
    fn catalog_accessors() {
        let (t, a, _) = table();
        assert_eq!(t.name(), "readings");
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.num_rows(), a.len());
        assert!(!t.is_empty());
        assert_eq!(t.column_names(), vec!["a", "b"]);
        assert!(t.column("a").is_some());
        assert!(t.column("missing").is_none());
        assert!(format!("{t:?}").contains("readings"));
    }

    #[test]
    fn single_column_queries_are_exact_and_adaptive() {
        let (mut t, a, _) = table();
        let q = RangeQuery::new(3_000, 6_500);
        let outcome = t.query_column("a", &q).unwrap();
        let expected = a.iter().filter(|v| q.range().contains(**v)).count() as u64;
        assert_eq!(outcome.count, expected);
        assert!(t.column("a").unwrap().views().num_partial_views() >= 1);
        // Column b is untouched.
        assert_eq!(t.column("b").unwrap().views().num_partial_views(), 0);
    }

    #[test]
    fn conjunctive_queries_intersect_row_sets() {
        let (mut t, a, b) = table();
        let qa = RangeQuery::new(2_000, 9_000);
        let qb = RangeQuery::new(8_000, 13_000);
        let outcome = t.query_conjunctive(&[("a", qa), ("b", qb)]).unwrap();
        let expected: Vec<u64> = (0..a.len())
            .filter(|&i| qa.range().contains(a[i]) && qb.range().contains(b[i]))
            .map(|i| i as u64)
            .collect();
        assert_eq!(outcome.rows, expected);
        assert_eq!(outcome.per_column.len(), 2);
        // Both columns built views as a side product of the predicates.
        assert!(t.column("a").unwrap().views().num_partial_views() >= 1);
        assert!(t.column("b").unwrap().views().num_partial_views() >= 1);
    }

    #[test]
    fn conjunctive_query_with_disjoint_predicates_is_empty() {
        let (mut t, _, _) = table();
        let outcome = t
            .query_conjunctive(&[
                ("a", RangeQuery::new(0, 100)),
                ("b", RangeQuery::new(30_000, 31_000)),
            ])
            .unwrap();
        assert!(outcome.rows.is_empty());
    }

    #[test]
    fn writes_go_through_the_adaptive_column() {
        let (mut t, a, _) = table();
        let upd = t.write("a", 5, 77_777);
        assert_eq!(upd.old_value, a[5]);
        let outcome = t
            .query_column("a", &RangeQuery::new(77_777, 77_777))
            .unwrap();
        assert_eq!(outcome.count, 1);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn unknown_column_panics() {
        let (mut t, _, _) = table();
        let _ = t.query_column("zzz", &RangeQuery::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_column_panics() {
        let (mut t, a, _) = table();
        t.add_column("a", SimBackend::new(), &a, AdaptiveConfig::default())
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn row_count_mismatch_panics() {
        let (mut t, _, _) = table();
        t.add_column(
            "c",
            SimBackend::new(),
            &[1, 2, 3],
            AdaptiveConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn intersect_sorted_helper() {
        assert_eq!(
            intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]),
            vec![3, 7]
        );
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u64>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[]), Vec::<u64>::new());
    }
}
