//! Adaptive tables: one adaptive view layer per column, with a planned
//! conjunctive query path.
//!
//! Figure 1 of the paper shows the full table representation: every column
//! of a table carries its own physical column, full view and partial views.
//! [`AdaptiveTable`] is that composition — a catalog of [`AdaptiveColumn`]s
//! over the same row space — plus conjunctive multi-column execution.
//!
//! Conjunctive queries run through the planner of [`crate::plan`] by
//! default: predicates are ordered by estimated result cardinality, the
//! cheapest one drives through the full adaptive path (fork-joined with any
//! promoted residuals over the [`asv_util::ThreadPool`]), and the remaining
//! predicates are evaluated as semi-join probes restricted to the surviving
//! rows. Intermediate row sets live in a [`RowSet`] bitset, so every
//! intersection is word-wise. The pre-planner behaviour — materialize every
//! predicate fully, then intersect sorted vectors — remains available as
//! [`AdaptiveTable::query_conjunctive_naive`] and is the equivalence
//! baseline of the property tests.

use std::collections::HashMap;
use std::time::Duration;

use asv_storage::ScanMode;
use asv_util::{RowSet, ThreadPool, Timer, ValueRange};
use asv_vmem::{Backend, VmemError};

use crate::adaptive::AdaptiveColumn;
use crate::config::AdaptiveConfig;
use crate::exec::scan_columns_fork_join;
use crate::plan::{
    merge_same_column, plan_conjunctive, ConjunctivePlan, PlanInput, PlannerConfig, ProbeTracker,
    StepKind, ZoneStats,
};
use crate::query::{QueryExecution, QueryOutcome, RangeQuery, ViewMaintenance};

/// One column of an [`AdaptiveTable`]: the adaptive layer plus the planner
/// state attached to it (zone statistics and the probe tracker).
struct TableColumn<B: Backend> {
    name: String,
    column: AdaptiveColumn<B>,
    stats: ZoneStats,
    tracker: ProbeTracker,
}

/// A table whose columns are all equipped with the adaptive view layer.
pub struct AdaptiveTable<B: Backend> {
    name: String,
    columns: Vec<TableColumn<B>>,
    index: HashMap<String, usize>,
    num_rows: usize,
    planner: PlannerConfig,
}

/// The result of a conjunctive multi-column query.
#[derive(Clone, Debug, Default)]
pub struct ConjunctiveOutcome {
    /// Row ids satisfying *all* predicates, in ascending order.
    pub rows: Vec<u64>,
    /// The per-predicate outcomes **in executed order** (the planner
    /// reorders predicates): `per_column[k]` is the outcome of the step
    /// that ran `k`-th, and `executed_order[k]` names the input predicate
    /// it answered. Use [`Self::outcome_for_input`] to look outcomes up by
    /// input position.
    pub per_column: Vec<QueryOutcome>,
    /// `executed_order[k]` = index into the input predicate slice of the
    /// `k`-th executed step. The naive path executes in input order, so
    /// this is the identity there.
    pub executed_order: Vec<usize>,
    /// The plan that produced this outcome (`None` on the naive path).
    pub plan: Option<ConjunctivePlan>,
    /// Wall-clock time of the whole conjunctive execution.
    pub elapsed: Duration,
}

impl ConjunctiveOutcome {
    /// The outcome of the step that answered input predicate `input_index`.
    pub fn outcome_for_input(&self, input_index: usize) -> Option<&QueryOutcome> {
        let pos = self.executed_order.iter().position(|&i| i == input_index)?;
        self.per_column.get(pos)
    }

    /// Total pages touched across all steps (scans and probes).
    pub fn total_scanned_pages(&self) -> usize {
        self.per_column.iter().map(|o| o.scanned_pages).sum()
    }
}

impl<B: Backend> AdaptiveTable<B> {
    /// Creates an empty adaptive table.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            columns: Vec::new(),
            index: HashMap::new(),
            num_rows: 0,
            planner: PlannerConfig::default(),
        }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows (identical across columns; 0 while empty).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Returns `true` if the table has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The active planner configuration.
    pub fn planner_config(&self) -> &PlannerConfig {
        &self.planner
    }

    /// Replaces the planner configuration.
    pub fn set_planner_config(&mut self, planner: PlannerConfig) {
        self.planner = planner;
    }

    /// Adds a column materialized from `values` with its own adaptive
    /// configuration. Zone statistics for the planner are built alongside.
    ///
    /// # Panics
    /// Panics if a column of that name exists or the row count differs from
    /// the existing columns'.
    pub fn add_column(
        &mut self,
        name: impl Into<String>,
        backend: B,
        values: &[u64],
        config: AdaptiveConfig,
    ) -> Result<(), VmemError> {
        let name = name.into();
        assert!(
            !self.index.contains_key(&name),
            "column '{name}' already exists in table '{}'",
            self.name
        );
        if !self.columns.is_empty() {
            assert_eq!(
                self.num_rows,
                values.len(),
                "column '{name}' has {} rows but table '{}' has {}",
                values.len(),
                self.name,
                self.num_rows
            );
        } else {
            self.num_rows = values.len();
        }
        let column = AdaptiveColumn::from_values(backend, values, config)?;
        let stats = ZoneStats::build(column.column());
        self.index.insert(name.clone(), self.columns.len());
        self.columns.push(TableColumn {
            name,
            column,
            stats,
            tracker: ProbeTracker::default(),
        });
        Ok(())
    }

    /// Looks up a column's adaptive layer by name.
    pub fn column(&self, name: &str) -> Option<&AdaptiveColumn<B>> {
        self.index.get(name).map(|&i| &self.columns[i].column)
    }

    /// Looks up a column's adaptive layer by name, mutably (needed for
    /// querying, since query processing maintains views).
    ///
    /// Writes applied directly through this handle bypass the planner's
    /// zone statistics — prefer [`Self::write`] / [`Self::write_batch`],
    /// which keep them in sync (stale statistics only degrade plan quality,
    /// never correctness).
    pub fn column_mut(&mut self, name: &str) -> Option<&mut AdaptiveColumn<B>> {
        let i = *self.index.get(name)?;
        Some(&mut self.columns[i].column)
    }

    /// The planner's zone statistics of a column.
    pub fn zone_stats(&self, name: &str) -> Option<&ZoneStats> {
        self.index.get(name).map(|&i| &self.columns[i].stats)
    }

    /// The planner's probe tracker of a column.
    pub fn probe_tracker(&self, name: &str) -> Option<&ProbeTracker> {
        self.index.get(name).map(|&i| &self.columns[i].tracker)
    }

    /// Names of all columns in insertion order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Answers a single-column range query through that column's adaptive
    /// layer.
    ///
    /// # Panics
    /// Panics if the column does not exist.
    pub fn query_column(
        &mut self,
        column: &str,
        query: &RangeQuery,
    ) -> Result<QueryOutcome, VmemError> {
        let col = self
            .column_mut(column)
            .unwrap_or_else(|| panic!("unknown column '{column}'"));
        col.query(query)
    }

    /// Answers a conjunctive query: every `(column, range)` predicate must
    /// hold. With the planner enabled (the default) execution is
    /// selectivity-ordered: the cheapest predicate drives through the
    /// adaptive path, promoted residuals fork-join alongside it, and the
    /// rest are probed against the surviving rows only. Several predicates
    /// targeting the *same* column are merged into one range per column by
    /// intersection before planning ([`merge_same_column`]); a column whose
    /// predicates are mutually unsatisfiable short-circuits the whole query
    /// to an empty outcome (no steps executed). After merging,
    /// `executed_order` names each column's *first* input predicate as the
    /// representative — [`ConjunctiveOutcome::outcome_for_input`] returns
    /// `None` for the folded-away duplicates. With the planner disabled,
    /// execution falls back to [`Self::query_conjunctive_naive`]. Both
    /// paths return identical row sets.
    ///
    /// The equivalence (and, as for single-column queries, view-routed
    /// exactness in general) assumes the partial views are aligned with all
    /// *directly applied* writes: between a `write_batch` issued while no
    /// alignment was in flight and its [`AdaptiveColumn::align_views`]
    /// call, view-routed scans may miss a moved value that a probe (which
    /// reads the physical column) still sees — align before querying.
    /// Writes submitted *while* an alignment round is in flight carry no
    /// such window: they are queued in the column's write overlay, and
    /// scans and probes alike resolve them from there until the round that
    /// folds them publishes.
    ///
    /// # Panics
    /// Panics if any referenced column does not exist or no predicate is
    /// given.
    pub fn query_conjunctive(
        &mut self,
        predicates: &[(&str, RangeQuery)],
    ) -> Result<ConjunctiveOutcome, VmemError> {
        assert!(!predicates.is_empty(), "need at least one predicate");
        let col_indices: Vec<usize> = predicates
            .iter()
            .map(|(column, _)| {
                *self
                    .index
                    .get(*column)
                    .unwrap_or_else(|| panic!("unknown column '{column}'"))
            })
            .collect();
        if !self.planner.enabled {
            return self.query_conjunctive_naive(predicates);
        }
        // Same-column predicates merge into one range per column by
        // intersection before planning; an unsatisfiable group proves the
        // conjunction empty without touching any column.
        let grouped: Vec<(usize, ValueRange)> = col_indices
            .iter()
            .zip(predicates)
            .map(|(&col_idx, (_, query))| (col_idx, *query.range()))
            .collect();
        let Some(merged) = merge_same_column(&grouped) else {
            return Ok(ConjunctiveOutcome::default());
        };
        if merged.len() == predicates.len() {
            return self.query_conjunctive_planned(predicates, &col_indices);
        }
        let merged_predicates: Vec<(&str, RangeQuery)> = merged
            .iter()
            .map(|m| (predicates[m.input_idx].0, RangeQuery::from_range(m.range)))
            .collect();
        let merged_cols: Vec<usize> = merged.iter().map(|m| m.col_idx).collect();
        let mut outcome = self.query_conjunctive_planned(&merged_predicates, &merged_cols)?;
        // Remap the executed order from merged-slice positions back to the
        // input positions of each column's representative predicate, so
        // `outcome_for_input` keeps working for the representatives (the
        // other duplicates have no step of their own).
        outcome.executed_order = outcome
            .executed_order
            .iter()
            .map(|&k| merged[k].input_idx)
            .collect();
        Ok(outcome)
    }

    fn query_conjunctive_planned(
        &mut self,
        predicates: &[(&str, RangeQuery)],
        col_indices: &[usize],
    ) -> Result<ConjunctiveOutcome, VmemError> {
        let timer = Timer::start();
        let promote_cost_pages = self.planner.promote_cost_pages;
        let plan = {
            let inputs: Vec<PlanInput<'_, B>> = predicates
                .iter()
                .zip(col_indices)
                .map(|((_, query), &col_idx)| {
                    let tc = &self.columns[col_idx];
                    let promoted = tc.tracker.should_promote(promote_cost_pages)
                        && tc.column.config().adaptive_creation
                        && tc.column.views().can_create_views();
                    PlanInput {
                        column: &tc.column,
                        stats: &tc.stats,
                        query,
                        promoted,
                    }
                })
                .collect();
            plan_conjunctive(&inputs)
        };

        // Phase 1 — the full adaptive scans (driving + promoted), fork-joined
        // across their (distinct) columns.
        let num_scans = plan.num_scans();
        let scan_steps = &plan.steps[..num_scans];
        let mut scan_outcomes: Vec<QueryOutcome> = {
            let mut by_col: HashMap<usize, &mut TableColumn<B>> = self
                .columns
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| scan_steps.iter().any(|s| col_indices[s.input_index] == *i))
                .collect();
            let tasks: Vec<(&mut AdaptiveColumn<B>, RangeQuery)> = scan_steps
                .iter()
                .map(|step| {
                    let tc = by_col
                        .remove(&col_indices[step.input_index])
                        .expect("scan columns are distinct");
                    (&mut tc.column, predicates[step.input_index].1)
                })
                .collect();
            scan_columns_fork_join(tasks, self.planner.parallelism)
                .into_iter()
                .collect::<Result<_, _>>()?
        };
        // A column that just ran the adaptive path had its chance to build a
        // view: its probe tracker restarts.
        for step in scan_steps {
            self.columns[col_indices[step.input_index]].tracker.reset();
        }

        // Intersect the scan row sets in the bitset representation, fanning
        // the word-wise AND across the planner's pool on large domains
        // (bit-identical to the sequential path for every worker count).
        let pool = ThreadPool::new(self.planner.parallelism);
        let mut survivors: Option<RowSet> = None;
        for outcome in &mut scan_outcomes {
            let rows = outcome.rows.take().expect("query_collect returns rows");
            let set = RowSet::from_rows(&rows, self.num_rows);
            outcome.rows = Some(rows);
            survivors = Some(match survivors {
                None => set,
                Some(mut s) => {
                    s.intersect_with_pool(&set, &pool);
                    s
                }
            });
        }
        let survivors = survivors.expect("at least the driving scan ran");

        // Phase 2 — semi-join probes over the shrinking survivor set. The
        // bitset representation is left exactly once: probes consume and
        // produce *ascending* row lists (each a subset of its input), so no
        // further domain-sized structures are touched and the last probe's
        // output IS the final row set.
        let mut candidates = survivors.to_sorted_vec();
        let mut per_column = scan_outcomes;
        for step in &plan.steps[num_scans..] {
            debug_assert_eq!(step.kind, StepKind::Probe);
            let (_, query) = &predicates[step.input_index];
            let tc = &mut self.columns[col_indices[step.input_index]];
            let step_timer = Timer::start();
            let mut outcome = QueryOutcome {
                executed: QueryExecution::Probe,
                rows: Some(Vec::new()),
                ..QueryOutcome::default()
            };
            if !candidates.is_empty() {
                // Overlay-aware: candidates with queued (not yet aligned)
                // writes are answered from the column's write overlay.
                let out = tc.column.probe_rows_with(
                    query.range(),
                    ScanMode::CollectRows,
                    &candidates,
                    tc.column.config().parallelism,
                );
                candidates = out.rows.unwrap_or_default();
                outcome.count = out.result.count;
                outcome.sum = out.result.sum;
                outcome.scanned_pages = out.scanned_pages;
                outcome.rows = Some(candidates.clone());
                // The probe answered the predicate without giving the
                // column a chance to adapt; count it towards promotion when
                // the views could not have covered the range.
                tc.tracker.note_probe(
                    query.range(),
                    !step.estimate.full_scan_fallback,
                    step.estimate.est_pages,
                );
            }
            outcome.view_maintenance = ViewMaintenance::NotAttempted;
            outcome.elapsed = step_timer.elapsed();
            per_column.push(outcome);
        }

        Ok(ConjunctiveOutcome {
            rows: candidates,
            per_column,
            executed_order: plan.executed_order(),
            plan: Some(plan),
            elapsed: timer.elapsed(),
        })
    }

    /// The pre-planner conjunctive path: every predicate is routed to its
    /// column's views and materialized fully (creating partial views as a
    /// side-product, as usual); the per-column row sets are then
    /// intersected in input order. Kept as the equivalence baseline —
    /// planned execution must return bit-identical row sets.
    ///
    /// # Panics
    /// Panics if any referenced column does not exist or no predicate is
    /// given.
    pub fn query_conjunctive_naive(
        &mut self,
        predicates: &[(&str, RangeQuery)],
    ) -> Result<ConjunctiveOutcome, VmemError> {
        assert!(!predicates.is_empty(), "need at least one predicate");
        let timer = Timer::start();
        let mut per_column = Vec::with_capacity(predicates.len());
        let mut result_rows: Option<Vec<u64>> = None;
        for (column, query) in predicates {
            let col = self
                .column_mut(column)
                .unwrap_or_else(|| panic!("unknown column '{column}'"));
            let outcome = col.query_collect(query)?;
            let mut rows = outcome.rows.clone().unwrap_or_default();
            rows.sort_unstable();
            result_rows = Some(match result_rows {
                None => rows,
                Some(existing) => intersect_sorted(&existing, &rows),
            });
            per_column.push(outcome);
        }
        Ok(ConjunctiveOutcome {
            rows: result_rows.unwrap_or_default(),
            per_column,
            executed_order: (0..predicates.len()).collect(),
            plan: None,
            elapsed: timer.elapsed(),
        })
    }

    /// Writes `new_value` into `row` of `column` and returns the update
    /// record (see [`AdaptiveColumn::write`]). The planner's zone
    /// statistics are widened alongside.
    ///
    /// # Panics
    /// Panics if the column does not exist.
    pub fn write(&mut self, column: &str, row: usize, new_value: u64) -> asv_storage::Update {
        let i = *self
            .index
            .get(column)
            .unwrap_or_else(|| panic!("unknown column '{column}'"));
        let tc = &mut self.columns[i];
        tc.stats.note_write(row, new_value);
        tc.column.write(row, new_value)
    }

    /// Applies a batch of `(row, value)` writes to `column`, keeping the
    /// planner's zone statistics in sync, and returns the update records to
    /// later pass to [`AdaptiveColumn::align_views`].
    ///
    /// # Panics
    /// Panics if the column does not exist.
    pub fn write_batch(
        &mut self,
        column: &str,
        writes: &[(usize, u64)],
    ) -> Vec<asv_storage::Update> {
        let i = *self
            .index
            .get(column)
            .unwrap_or_else(|| panic!("unknown column '{column}'"));
        let tc = &mut self.columns[i];
        for &(row, value) in writes {
            tc.stats.note_write(row, value);
        }
        tc.column.write_batch(writes)
    }

    /// Starts a background (chunked) alignment round on `column` for an
    /// already-applied batch — see
    /// [`AdaptiveColumn::align_views_async`]. Writes submitted to the
    /// column while the round is in flight (via [`Self::write`] /
    /// [`Self::write_batch`]) are queued in its overlay, stay visible to
    /// every query — including conjunctive probes — and fold into the next
    /// round automatically.
    ///
    /// # Panics
    /// Panics if the column does not exist.
    pub fn align_views_async(
        &mut self,
        column: &str,
        batch: &[asv_storage::Update],
    ) -> Result<(), VmemError> {
        self.column_mut(column)
            .unwrap_or_else(|| panic!("unknown column '{column}'"))
            .align_views_async(batch)
    }

    /// Polls every column for a ready alignment chunk and publishes it
    /// (non-blocking). Returns `true` if any column still has alignment
    /// work pending afterwards.
    pub fn poll_aligned_views(&mut self) -> Result<bool, VmemError> {
        let mut pending = false;
        for tc in &mut self.columns {
            tc.column.poll_aligned_views()?;
            pending |= tc.column.alignment_pending();
        }
        Ok(pending)
    }

    /// Blocks until no column has alignment work or queued writes left —
    /// see [`AdaptiveColumn::flush_pending_writes`].
    pub fn flush_pending_writes(&mut self) -> Result<(), VmemError> {
        for tc in &mut self.columns {
            tc.column.flush_pending_writes()?;
        }
        Ok(())
    }
}

/// Intersects two ascending, duplicate-free row-id lists.
///
/// Dispatches on the size ratio: similar sizes use the classic linear
/// merge; once one side is at least [`GALLOP_RATIO`] times larger, each
/// element of the small side is located in the large side by galloping
/// (exponential search + binary search), which is
/// `O(small * log(large / small))` instead of `O(small + large)`.
pub(crate) fn intersect_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return Vec::new();
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        intersect_galloping(small, large)
    } else {
        intersect_linear(a, b)
    }
}

/// Size ratio at which [`intersect_sorted`] switches from the linear merge
/// to galloping.
const GALLOP_RATIO: usize = 8;

/// The classic two-pointer linear merge intersection.
fn intersect_linear(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Galloping intersection: every element of `small` is searched in the
/// still-unconsumed suffix of `large` by doubling the probe distance until
/// it overshoots, then binary-searching the bracketed window.
fn intersect_galloping(small: &[u64], large: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(small.len());
    let mut base = 0usize;
    for &x in small {
        if base >= large.len() {
            break;
        }
        // Exponential probe: double the distance until large[base + bound]
        // is no longer < x (or the suffix ends).
        let mut bound = 1usize;
        while base + bound < large.len() && large[base + bound] < x {
            bound *= 2;
        }
        // large[lo] is the last probe known to be < x (or lo == base); the
        // element at base + bound may equal x, so the window includes it.
        let lo = base + bound / 2;
        let hi = (base + bound + 1).min(large.len());
        match large[lo..hi].binary_search(&x) {
            Ok(pos) => {
                out.push(x);
                base = lo + pos + 1;
            }
            Err(pos) => {
                base = lo + pos;
            }
        }
    }
    out
}

impl<B: Backend> std::fmt::Debug for AdaptiveTable<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveTable")
            .field("name", &self.name)
            .field("num_columns", &self.columns.len())
            .field("num_rows", &self.num_rows)
            .field("planner", &self.planner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::{SimBackend, VALUES_PER_PAGE};

    fn clustered(pages: usize, stride: u64) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| (i / VALUES_PER_PAGE) as u64 * stride + (i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    fn table() -> (AdaptiveTable<SimBackend>, Vec<u64>, Vec<u64>) {
        let a = clustered(16, 1_000);
        let b = clustered(16, 2_000);
        let mut t = AdaptiveTable::new("readings");
        t.add_column("a", SimBackend::new(), &a, AdaptiveConfig::default())
            .unwrap();
        t.add_column("b", SimBackend::new(), &b, AdaptiveConfig::default())
            .unwrap();
        (t, a, b)
    }

    fn expected_rows(a: &[u64], b: &[u64], qa: &RangeQuery, qb: &RangeQuery) -> Vec<u64> {
        (0..a.len())
            .filter(|&i| qa.range().contains(a[i]) && qb.range().contains(b[i]))
            .map(|i| i as u64)
            .collect()
    }

    #[test]
    fn catalog_accessors() {
        let (t, a, _) = table();
        assert_eq!(t.name(), "readings");
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.num_rows(), a.len());
        assert!(!t.is_empty());
        assert_eq!(t.column_names(), vec!["a", "b"]);
        assert!(t.column("a").is_some());
        assert!(t.column("missing").is_none());
        assert!(t.zone_stats("a").is_some());
        assert!(t.probe_tracker("b").is_some());
        assert!(t.planner_config().enabled);
        assert!(format!("{t:?}").contains("readings"));
    }

    #[test]
    fn single_column_queries_are_exact_and_adaptive() {
        let (mut t, a, _) = table();
        let q = RangeQuery::new(3_000, 6_500);
        let outcome = t.query_column("a", &q).unwrap();
        let expected = a.iter().filter(|v| q.range().contains(**v)).count() as u64;
        assert_eq!(outcome.count, expected);
        assert!(t.column("a").unwrap().views().num_partial_views() >= 1);
        // Column b is untouched.
        assert_eq!(t.column("b").unwrap().views().num_partial_views(), 0);
    }

    #[test]
    fn conjunctive_queries_intersect_row_sets() {
        let (mut t, a, b) = table();
        let qa = RangeQuery::new(2_000, 9_000);
        let qb = RangeQuery::new(8_000, 13_000);
        let outcome = t.query_conjunctive(&[("a", qa), ("b", qb)]).unwrap();
        assert_eq!(outcome.rows, expected_rows(&a, &b, &qa, &qb));
        assert_eq!(outcome.per_column.len(), 2);
        let plan = outcome.plan.as_ref().expect("planned execution");
        assert_eq!(plan.num_scans(), 1);
        assert_eq!(plan.num_probes(), 1);
        // b's predicate ([8000,13000] on stride 2000 ≈ 3 pages) is cheaper
        // than a's ([2000,9000] on stride 1000 ≈ 8 pages): b drives.
        assert_eq!(outcome.executed_order, vec![1, 0]);
        assert_eq!(outcome.per_column[0].executed, QueryExecution::Adaptive);
        assert_eq!(outcome.per_column[1].executed, QueryExecution::Probe);
        // The probe touches at most the pages holding survivors — never
        // more than the driving result spans.
        assert!(outcome.per_column[1].scanned_pages <= outcome.per_column[0].count as usize);
        // Only the driving column built a view; the probed column adapts
        // later via promotion.
        assert!(t.column("b").unwrap().views().num_partial_views() >= 1);
        assert_eq!(t.column("a").unwrap().views().num_partial_views(), 0);
        assert_eq!(t.probe_tracker("a").unwrap().probes(), 1);
        // outcome_for_input maps back to input positions.
        assert_eq!(
            outcome.outcome_for_input(1).unwrap().executed,
            QueryExecution::Adaptive
        );
        assert_eq!(
            outcome.outcome_for_input(0).unwrap().executed,
            QueryExecution::Probe
        );
        assert!(outcome.outcome_for_input(2).is_none());
    }

    #[test]
    fn planned_matches_naive_row_sets() {
        let (mut planned, a, b) = table();
        let (mut naive, _, _) = table();
        naive.set_planner_config(PlannerConfig::default().with_enabled(false));
        for (lo_a, hi_a, lo_b, hi_b) in [
            (2_000u64, 9_000u64, 8_000u64, 13_000u64),
            (0, 15_500, 0, 30_500),
            (5_000, 5_400, 10_000, 10_400),
            (0, 100, 30_000, 31_000),
        ] {
            let preds = [
                ("a", RangeQuery::new(lo_a, hi_a)),
                ("b", RangeQuery::new(lo_b, hi_b)),
            ];
            let p = planned.query_conjunctive(&preds).unwrap();
            let n = naive.query_conjunctive(&preds).unwrap();
            assert!(p.plan.is_some());
            assert!(n.plan.is_none());
            assert_eq!(n.executed_order, vec![0, 1]);
            assert_eq!(p.rows, n.rows, "[{lo_a},{hi_a}]x[{lo_b},{hi_b}]");
            assert_eq!(p.rows, expected_rows(&a, &b, &preds[0].1, &preds[1].1));
        }
    }

    #[test]
    fn probe_tracker_promotes_the_probed_column() {
        let (mut t, a, b) = table();
        let threshold = t.planner_config().promote_cost_pages;
        // Fire the same shape repeatedly: b drives, a is probed and its
        // views never cover the predicate -> uncovered page cost (the
        // ZoneStats estimate of qa, accrued per probe) accumulates.
        let qa = RangeQuery::new(2_000, 9_000);
        let qb = RangeQuery::new(8_000, 13_000);
        let mut rounds = 0;
        loop {
            let out = t.query_conjunctive(&[("a", qa), ("b", qb)]).unwrap();
            rounds += 1;
            assert_eq!(out.plan.as_ref().unwrap().num_probes(), 1, "round {rounds}");
            let tracker = t.probe_tracker("a").unwrap();
            assert_eq!(tracker.uncovered_probes(), rounds);
            assert_eq!(t.column("a").unwrap().views().num_partial_views(), 0);
            if tracker.uncovered_cost_pages() >= threshold {
                break;
            }
            assert!(rounds < 100, "promotion cost never reached the budget");
        }
        assert!(
            rounds > 1,
            "a multi-page estimate still takes several probes"
        );
        // Next execution promotes a to a full adaptive scan: the column
        // finally materializes a partial view and the tracker resets.
        let out = t.query_conjunctive(&[("a", qa), ("b", qb)]).unwrap();
        let plan = out.plan.as_ref().unwrap();
        assert_eq!(plan.num_scans(), 2);
        assert_eq!(plan.num_probes(), 0);
        assert!(plan.steps.iter().any(|s| s.kind == StepKind::AdaptiveScan));
        assert!(t.column("a").unwrap().views().num_partial_views() >= 1);
        assert_eq!(t.probe_tracker("a").unwrap().probes(), 0);
        assert_eq!(out.rows, expected_rows(&a, &b, &qa, &qb));
        // Afterwards the view covers the range: probes count as covered
        // and no further promotion builds up.
        let out = t.query_conjunctive(&[("a", qa), ("b", qb)]).unwrap();
        assert_eq!(out.rows, expected_rows(&a, &b, &qa, &qb));
        assert_eq!(t.probe_tracker("a").unwrap().uncovered_probes(), 0);
    }

    #[test]
    fn duplicate_column_predicates_merge_before_planning() {
        let (mut t, a, _) = table();
        let q1 = RangeQuery::new(2_000, 9_000);
        let q2 = RangeQuery::new(5_000, 13_000);
        let out = t.query_conjunctive(&[("a", q1), ("a", q2)]).unwrap();
        assert!(out.plan.is_some(), "merged conjunction runs planned");
        assert_eq!(out.per_column.len(), 1, "one step for the merged range");
        assert_eq!(out.executed_order, vec![0], "first input represents 'a'");
        assert!(out.outcome_for_input(1).is_none(), "duplicate folded away");
        let expected: Vec<u64> = (0..a.len())
            .filter(|&i| q1.range().contains(a[i]) && q2.range().contains(a[i]))
            .map(|i| i as u64)
            .collect();
        assert_eq!(out.rows, expected);
        // The merged result equals the naive two-step evaluation.
        let naive = t.query_conjunctive_naive(&[("a", q1), ("a", q2)]).unwrap();
        assert_eq!(out.rows, naive.rows);
    }

    #[test]
    fn unsatisfiable_same_column_conjunction_short_circuits() {
        let (mut t, _, _) = table();
        let out = t
            .query_conjunctive(&[
                ("a", RangeQuery::new(0, 1_000)),
                ("a", RangeQuery::new(5_000, 9_000)),
            ])
            .unwrap();
        assert!(out.rows.is_empty());
        assert!(out.per_column.is_empty(), "no step executed");
        assert!(out.plan.is_none());
    }

    #[test]
    fn merged_duplicates_mix_with_other_columns() {
        let (mut t, a, b) = table();
        let qa1 = RangeQuery::new(1_000, 12_000);
        let qa2 = RangeQuery::new(3_000, 40_000);
        let qb = RangeQuery::new(20_000, 29_000);
        let out = t
            .query_conjunctive(&[("a", qa1), ("b", qb), ("a", qa2)])
            .unwrap();
        let expected: Vec<u64> = (0..a.len())
            .filter(|&i| {
                qa1.range().contains(a[i])
                    && qa2.range().contains(a[i])
                    && qb.range().contains(b[i])
            })
            .map(|i| i as u64)
            .collect();
        assert_eq!(out.rows, expected);
        assert_eq!(out.per_column.len(), 2, "two merged steps");
        let mut reps = out.executed_order.clone();
        reps.sort_unstable();
        assert_eq!(reps, vec![0, 1], "representatives are the first uses");
    }

    #[test]
    fn empty_survivors_short_circuit_remaining_probes() {
        let a = clustered(16, 1_000);
        let b = clustered(16, 2_000);
        let c = clustered(16, 3_000);
        let mut t = AdaptiveTable::new("readings");
        for (name, values) in [("a", &a), ("b", &b), ("c", &c)] {
            t.add_column(name, SimBackend::new(), values, AdaptiveConfig::default())
                .unwrap();
        }
        // a and b are disjoint on rows; c would match plenty.
        let out = t
            .query_conjunctive(&[
                ("a", RangeQuery::new(0, 100)),
                ("b", RangeQuery::new(30_000, 31_000)),
                ("c", RangeQuery::new(0, 45_000)),
            ])
            .unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(out.per_column.len(), 3);
        // The last probe ran against an empty survivor set: zero pages.
        let last = out.per_column.last().unwrap();
        assert_eq!(last.executed, QueryExecution::Probe);
        assert_eq!(last.scanned_pages, 0);
        assert_eq!(last.count, 0);
    }

    #[test]
    fn conjunctive_query_with_disjoint_predicates_is_empty() {
        let (mut t, _, _) = table();
        let outcome = t
            .query_conjunctive(&[
                ("a", RangeQuery::new(0, 100)),
                ("b", RangeQuery::new(30_000, 31_000)),
            ])
            .unwrap();
        assert!(outcome.rows.is_empty());
    }

    #[test]
    fn single_predicate_conjunction_is_just_the_driving_scan() {
        let (mut t, a, _) = table();
        let q = RangeQuery::new(3_000, 6_500);
        let out = t.query_conjunctive(&[("a", q)]).unwrap();
        let expected: Vec<u64> = (0..a.len())
            .filter(|&i| q.range().contains(a[i]))
            .map(|i| i as u64)
            .collect();
        assert_eq!(out.rows, expected);
        assert_eq!(out.executed_order, vec![0]);
        assert_eq!(out.plan.as_ref().unwrap().num_probes(), 0);
    }

    #[test]
    fn writes_go_through_the_adaptive_column() {
        let (mut t, a, _) = table();
        let upd = t.write("a", 5, 77_777);
        assert_eq!(upd.old_value, a[5]);
        let outcome = t
            .query_column("a", &RangeQuery::new(77_777, 77_777))
            .unwrap();
        assert_eq!(outcome.count, 1);
        // The zone statistics saw the write: the band around page 0 now
        // includes 77777.
        let est = t
            .zone_stats("a")
            .unwrap()
            .estimate(&asv_util::ValueRange::new(77_000, 78_000));
        assert!(est.est_pages >= 1);
    }

    #[test]
    fn write_batch_updates_stats_and_returns_records() {
        let (mut t, a, _) = table();
        let updates = t.write_batch("a", &[(0, 99_000), (1, 98_000)]);
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].old_value, a[0]);
        let est = t
            .zone_stats("a")
            .unwrap()
            .estimate(&asv_util::ValueRange::new(98_000, 99_000));
        assert!(est.est_pages >= 1);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn unknown_column_panics() {
        let (mut t, _, _) = table();
        let _ = t.query_column("zzz", &RangeQuery::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn unknown_conjunctive_column_panics() {
        let (mut t, _, _) = table();
        let _ = t.query_conjunctive(&[("zzz", RangeQuery::new(0, 1))]);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_column_panics() {
        let (mut t, a, _) = table();
        t.add_column("a", SimBackend::new(), &a, AdaptiveConfig::default())
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn row_count_mismatch_panics() {
        let (mut t, _, _) = table();
        t.add_column(
            "c",
            SimBackend::new(),
            &[1, 2, 3],
            AdaptiveConfig::default(),
        )
        .unwrap();
    }

    /// Reference intersection for cross-checking both strategies.
    fn reference_intersect(a: &[u64], b: &[u64]) -> Vec<u64> {
        let set: std::collections::HashSet<u64> = b.iter().copied().collect();
        a.iter().copied().filter(|x| set.contains(x)).collect()
    }

    #[test]
    fn intersect_sorted_helper() {
        assert_eq!(
            intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]),
            vec![3, 7]
        );
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u64>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[]), Vec::<u64>::new());
    }

    #[test]
    fn galloping_intersection_handles_asymmetric_sizes() {
        // Large side far bigger than small side (ratio >= GALLOP_RATIO
        // guarantees the galloping path runs), matches scattered across
        // the front, middle, back and beyond.
        let large: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect(); // 0,3,6,...
        for small in [
            vec![0u64],                                      // first element
            vec![29_997],                                    // last element
            vec![1, 2, 4, 5],                                // no matches
            vec![0, 3, 29_997],                              // ends + start
            vec![2_997, 2_998, 2_999, 3_000],                // mixed hit/miss cluster
            vec![50_000, 60_000],                            // beyond the large side
            (0..50u64).map(|i| i * 601).collect::<Vec<_>>(), // strided
        ] {
            assert!(large.len() / small.len().max(1) >= GALLOP_RATIO);
            assert_eq!(
                intersect_sorted(&small, &large),
                reference_intersect(&small, &large),
                "small={small:?}"
            );
            // Argument order must not matter.
            assert_eq!(
                intersect_sorted(&large, &small),
                reference_intersect(&small, &large),
                "flipped small={small:?}"
            );
        }
    }

    #[test]
    fn galloping_and_linear_agree_on_random_sets() {
        // Deterministic pseudo-random sets across many size ratios.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (small_n, large_n) in [(1usize, 100usize), (5, 1_000), (64, 640), (100, 50_000)] {
            let mut small: Vec<u64> = (0..small_n).map(|_| next() % 100_000).collect();
            let mut large: Vec<u64> = (0..large_n).map(|_| next() % 100_000).collect();
            small.sort_unstable();
            small.dedup();
            large.sort_unstable();
            large.dedup();
            let linear = intersect_linear(&small, &large);
            let galloping = intersect_galloping(&small, &large);
            assert_eq!(linear, galloping, "{small_n}x{large_n}");
            assert_eq!(intersect_sorted(&small, &large), linear);
        }
    }
}
