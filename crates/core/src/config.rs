//! Configuration of the adaptive storage layer.

use asv_util::Parallelism;

/// How queries are routed to views (paper §2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Use exactly one view that fully covers the query; among candidates
    /// pick the one indexing the fewest physical pages.
    #[default]
    SingleView,
    /// Use multiple (partial) views if they cover the query range in
    /// conjunction; fall back to single-view routing otherwise. Shared
    /// physical pages are scanned only once (tracked with a bitvector).
    MultiView,
}

/// Options for (partial) view creation (paper §2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreationOptions {
    /// Optimization 1: map consecutive qualifying physical pages with a
    /// single `mmap()` call.
    pub coalesce_runs: bool,
    /// Optimization 2: perform the `mmap()` calls in a separate mapping
    /// thread fed by a concurrent queue, overlapping mapping with scanning.
    pub concurrent_mapping: bool,
}

impl CreationOptions {
    /// No optimizations (Figure 6, variant "No optimizations").
    pub const NONE: Self = Self {
        coalesce_runs: false,
        concurrent_mapping: false,
    };
    /// Only run coalescing (Figure 6, variant "Consecutively mapped").
    pub const COALESCED: Self = Self {
        coalesce_runs: true,
        concurrent_mapping: false,
    };
    /// Only the background mapping thread (Figure 6, variant
    /// "Concurrently mapped").
    pub const CONCURRENT: Self = Self {
        coalesce_runs: false,
        concurrent_mapping: true,
    };
    /// Both optimizations (Figure 6, variant "Both optimizations").
    pub const ALL: Self = Self {
        coalesce_runs: true,
        concurrent_mapping: true,
    };
}

impl Default for CreationOptions {
    fn default() -> Self {
        Self::ALL
    }
}

/// Chunking and write-queue knobs of background view alignment (the write
/// ingestion subsystem of [`crate::align`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlignChunking {
    /// Maximum number of *deduplicated* updates folded into one published
    /// alignment chunk. A batch larger than this splits into consecutive
    /// chunks (whole page groups are never split), each planned and
    /// published as its own [`crate::ViewSet`] epoch — so the query-blocking
    /// publish step is bounded by the chunk size, not the batch size. A
    /// chunk may exceed the bound only when a *single page's* update group
    /// already does.
    ///
    /// `0` disables chunking: the whole batch publishes as one epoch (the
    /// pre-chunking behaviour, and the default).
    pub chunk_updates: usize,
    /// Soft bound on the rows the pending-writes queue may hold while
    /// alignment work is in flight. A write hitting the bound applies
    /// *backpressure without blocking*: the in-flight round is nudged
    /// forward (one non-blocking publish poll) so its completion can fold
    /// the queue into the next round, and the write is queued regardless —
    /// acknowledged writes are never dropped and the writer never stalls on
    /// a full queue. Queue size is counted in *distinct rows* (repeated
    /// writes to a row overwrite its queue entry).
    pub max_queued_writes: usize,
    /// Group-commit threshold of the serving layer's maintenance loop
    /// ([`crate::serve`]): an *idle* maintenance tick (no alignment round
    /// in flight) folds the queued writes into a new round only once at
    /// least this many distinct rows are queued, batching small writes into
    /// fewer alignment rounds. `0` (the default) folds on the first idle
    /// tick after any write; [`crate::serve::ServeTable::quiesce`] and a
    /// queue at `max_queued_writes` fold regardless of the threshold.
    pub group_commit_idle: usize,
    /// Dependency-graph-driven incremental alignment in the serving layer
    /// ([`crate::serve`]): when enabled (the default), folding a write
    /// batch consults the view set's [`crate::align::ViewDepGraph`] and
    /// snapshots/replans *only* the views whose predicate ranges intersect
    /// the touched zones — untouched views keep their epoch verbatim.
    /// Disabling it restores the full-replan path (every view snapshotted
    /// every round), which stays the bit-identical reference twin.
    pub incremental_align: bool,
    /// Bound on the per-view delta work items the serving layer's
    /// maintenance tick publishes per call: each tick drains at most this
    /// many items from the delta queue (hottest views first), interleaving
    /// alignment publishes with group-commit work. `0` drains one whole
    /// chunk's items per tick (the pre-delta-queue cadence). The default is
    /// `1`: strict item-by-item draining.
    pub delta_items_per_tick: usize,
    /// Number of MPSC ingest lanes of the serving layer's sharded
    /// multi-writer front door ([`crate::serve::ServeTable::writer`]):
    /// writes are hashed to a lane by their row's page group and drained
    /// into the overlay at tick boundaries. The group-commit backpressure
    /// check folds when the *fullest shard* reaches
    /// `max_queued_writes / writer_shards` distinct overlaid rows, so a hot
    /// shard cannot starve behind cold ones. The default of `1` is the
    /// single-lane (pre-sharding) behaviour.
    pub writer_shards: usize,
    /// Optional capacity bound per ingest lane. With `n > 0` each lane is a
    /// *bounded* channel holding at most `n` in-flight writes: a writer
    /// thread whose lane is full **blocks** in
    /// [`crate::serve::TableWriter::write`] until the maintenance thread
    /// drains the lane, turning backpressure into real flow control (the
    /// non-blocking probe [`crate::serve::TableWriter::try_write`] returns
    /// `false` instead). `0` (the default) keeps the unbounded pre-existing
    /// lanes, in which writers never stall.
    pub writer_lane_capacity: usize,
    /// Idle-tick band re-tightening of the serving layer's zone statistics:
    /// zone bands only ever *widen* under writes, so a column whose hot
    /// rows move around accumulates pessimistic bands. With this set to
    /// `n > 0`, a column that has been fully idle (no alignment round in
    /// flight, empty overlay) for `n` consecutive maintenance ticks and
    /// whose bands widened since the last rebuild gets its
    /// [`crate::plan::ZoneStats`] rebuilt from live data. `0` (the default)
    /// disables the pass.
    pub retighten_idle_ticks: usize,
}

impl AlignChunking {
    /// Builder-style setter for the per-chunk update bound.
    pub fn with_chunk_updates(mut self, chunk_updates: usize) -> Self {
        self.chunk_updates = chunk_updates;
        self
    }

    /// Builder-style setter for the queue bound.
    pub fn with_max_queued_writes(mut self, max_queued_writes: usize) -> Self {
        self.max_queued_writes = max_queued_writes;
        self
    }

    /// Builder-style setter for the idle group-commit threshold.
    pub fn with_group_commit_idle(mut self, group_commit_idle: usize) -> Self {
        self.group_commit_idle = group_commit_idle;
        self
    }

    /// Builder-style switch for dependency-driven incremental alignment.
    pub fn with_incremental_align(mut self, incremental_align: bool) -> Self {
        self.incremental_align = incremental_align;
        self
    }

    /// Builder-style setter for the per-tick delta work-item budget.
    pub fn with_delta_items_per_tick(mut self, delta_items_per_tick: usize) -> Self {
        self.delta_items_per_tick = delta_items_per_tick;
        self
    }

    /// Builder-style setter for the number of ingest lanes (clamped to at
    /// least 1).
    pub fn with_writer_shards(mut self, writer_shards: usize) -> Self {
        self.writer_shards = writer_shards.max(1);
        self
    }

    /// Builder-style setter for the idle-tick band re-tightening threshold.
    pub fn with_retighten_idle_ticks(mut self, retighten_idle_ticks: usize) -> Self {
        self.retighten_idle_ticks = retighten_idle_ticks;
        self
    }

    /// Builder-style setter for the per-lane capacity bound (`0` keeps the
    /// lanes unbounded).
    pub fn with_writer_lane_capacity(mut self, writer_lane_capacity: usize) -> Self {
        self.writer_lane_capacity = writer_lane_capacity;
        self
    }
}

impl Default for AlignChunking {
    fn default() -> Self {
        Self {
            chunk_updates: 0,
            max_queued_writes: 1 << 20,
            group_commit_idle: 0,
            incremental_align: true,
            delta_items_per_tick: 1,
            writer_shards: 1,
            writer_lane_capacity: 0,
            retighten_idle_ticks: 0,
        }
    }
}

/// Configuration of an [`crate::AdaptiveColumn`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Query routing mode.
    pub routing: RoutingMode,
    /// Maximum number of partial views kept per column. Once reached, "we
    /// stop the generation of new partial views altogether and perform
    /// query answering based on the static set of existing views"
    /// (paper §2.2). The paper's experiments use 20–200.
    pub max_views: usize,
    /// Discard tolerance `d`: a candidate view covering a *subset* of an
    /// existing partial view is discarded if it indexes at least
    /// `existing.pages - d` pages (paper §2.2). The experiments use 0.
    pub discard_tolerance: usize,
    /// Replacement tolerance `r`: a candidate view covering a *superset* of
    /// an existing partial view replaces it if it indexes at most
    /// `existing.pages + r` pages (paper §2.2). The experiments use 0.
    pub replacement_tolerance: usize,
    /// Whether query processing is allowed to create new partial views at
    /// all. Disabling this turns the layer into a static view index.
    pub adaptive_creation: bool,
    /// View-creation optimizations.
    pub creation: CreationOptions,
    /// Degree of parallelism of the scan path (queries and the full-scan
    /// baseline). Defaults to [`Parallelism::Sequential`], which keeps every
    /// result bit-identical to the single-threaded code path; `Threads(n)` /
    /// `Auto` shard scans fork-join style across worker threads.
    pub parallelism: Parallelism,
    /// Chunking and write-queue knobs of background alignment.
    pub chunking: AlignChunking,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            routing: RoutingMode::SingleView,
            max_views: 100,
            discard_tolerance: 0,
            replacement_tolerance: 0,
            adaptive_creation: true,
            creation: CreationOptions::default(),
            parallelism: Parallelism::Sequential,
            chunking: AlignChunking::default(),
        }
    }
}

impl AdaptiveConfig {
    /// The configuration used for the paper's single-view experiments
    /// (Figure 4): single-view routing, up to 100 views, tolerances 0.
    pub fn paper_single_view() -> Self {
        Self::default()
    }

    /// The configuration used for the paper's multi-view experiments
    /// (Figure 5): multi-view routing with the given view limit
    /// (200 for 1% selectivity, 20 for 10% selectivity in the paper).
    pub fn paper_multi_view(max_views: usize) -> Self {
        Self {
            routing: RoutingMode::MultiView,
            max_views,
            ..Self::default()
        }
    }

    /// Builder-style setter for the routing mode.
    pub fn with_routing(mut self, routing: RoutingMode) -> Self {
        self.routing = routing;
        self
    }

    /// Builder-style setter for the view limit.
    pub fn with_max_views(mut self, max_views: usize) -> Self {
        self.max_views = max_views;
        self
    }

    /// Builder-style setter for the discard tolerance `d`.
    pub fn with_discard_tolerance(mut self, d: usize) -> Self {
        self.discard_tolerance = d;
        self
    }

    /// Builder-style setter for the replacement tolerance `r`.
    pub fn with_replacement_tolerance(mut self, r: usize) -> Self {
        self.replacement_tolerance = r;
        self
    }

    /// Builder-style setter for the creation options.
    pub fn with_creation(mut self, creation: CreationOptions) -> Self {
        self.creation = creation;
        self
    }

    /// Builder-style switch for adaptive creation.
    pub fn with_adaptive_creation(mut self, enabled: bool) -> Self {
        self.adaptive_creation = enabled;
        self
    }

    /// Builder-style setter for the scan parallelism.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builder-style setter for the alignment chunking / write-queue knobs.
    pub fn with_chunking(mut self, chunking: AlignChunking) -> Self {
        self.chunking = chunking;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = AdaptiveConfig::default();
        assert_eq!(c.routing, RoutingMode::SingleView);
        assert_eq!(c.max_views, 100);
        assert_eq!(c.discard_tolerance, 0);
        assert_eq!(c.replacement_tolerance, 0);
        assert!(c.adaptive_creation);
        assert_eq!(c.creation, CreationOptions::ALL);
        assert_eq!(c.parallelism, Parallelism::Sequential);
        assert_eq!(c.chunking.chunk_updates, 0, "chunking off by default");
        assert!(c.chunking.max_queued_writes >= 1 << 20);
        assert_eq!(c.chunking.group_commit_idle, 0, "fold on first idle tick");
        assert!(c.chunking.incremental_align, "delta-queue path by default");
        assert_eq!(c.chunking.delta_items_per_tick, 1, "item-by-item drain");
        assert_eq!(c.chunking.writer_shards, 1, "single ingest lane");
        assert_eq!(c.chunking.writer_lane_capacity, 0, "unbounded lanes");
        assert_eq!(c.chunking.retighten_idle_ticks, 0, "re-tightening off");
    }

    #[test]
    fn chunking_builder() {
        let c = AdaptiveConfig::default().with_chunking(
            AlignChunking::default()
                .with_chunk_updates(128)
                .with_max_queued_writes(4_096)
                .with_group_commit_idle(32)
                .with_incremental_align(false)
                .with_delta_items_per_tick(8)
                .with_writer_shards(4)
                .with_writer_lane_capacity(256)
                .with_retighten_idle_ticks(16),
        );
        assert_eq!(c.chunking.chunk_updates, 128);
        assert_eq!(c.chunking.max_queued_writes, 4_096);
        assert_eq!(c.chunking.group_commit_idle, 32);
        assert!(!c.chunking.incremental_align);
        assert_eq!(c.chunking.delta_items_per_tick, 8);
        assert_eq!(c.chunking.writer_shards, 4);
        assert_eq!(c.chunking.writer_lane_capacity, 256);
        assert_eq!(c.chunking.retighten_idle_ticks, 16);
        let clamped = AlignChunking::default().with_writer_shards(0);
        assert_eq!(clamped.writer_shards, 1, "shard count clamps to 1");
    }

    #[test]
    fn builder_setters() {
        let c = AdaptiveConfig::default()
            .with_routing(RoutingMode::MultiView)
            .with_max_views(20)
            .with_discard_tolerance(3)
            .with_replacement_tolerance(5)
            .with_creation(CreationOptions::NONE)
            .with_adaptive_creation(false)
            .with_parallelism(Parallelism::Threads(4));
        assert_eq!(c.routing, RoutingMode::MultiView);
        assert_eq!(c.max_views, 20);
        assert_eq!(c.discard_tolerance, 3);
        assert_eq!(c.replacement_tolerance, 5);
        assert_eq!(c.creation, CreationOptions::NONE);
        assert!(!c.adaptive_creation);
        assert_eq!(c.parallelism, Parallelism::Threads(4));
    }

    #[test]
    fn paper_presets() {
        assert_eq!(AdaptiveConfig::paper_single_view().max_views, 100);
        let multi = AdaptiveConfig::paper_multi_view(200);
        assert_eq!(multi.routing, RoutingMode::MultiView);
        assert_eq!(multi.max_views, 200);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn creation_option_presets() {
        assert!(!CreationOptions::NONE.coalesce_runs);
        assert!(!CreationOptions::NONE.concurrent_mapping);
        assert!(CreationOptions::COALESCED.coalesce_runs);
        assert!(CreationOptions::CONCURRENT.concurrent_mapping);
        assert!(CreationOptions::ALL.coalesce_runs && CreationOptions::ALL.concurrent_mapping);
    }
}
