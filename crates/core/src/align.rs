//! Background (epoch-handoff) view alignment.
//!
//! [`crate::updates::align_views_after_updates`] is a stop-the-world call:
//! no query can run on the column while a whole batch is aligned. This
//! module decomposes alignment into three phases so the expensive decision
//! work can leave the query path entirely (related work: *Virtual-Memory
//! Assisted Buffer Management* overlaps mapping changes with query
//! execution; *The Virtual Block Interface* decouples mapping management
//! from access latency):
//!
//! 1. **Snapshot** ([`snapshot_alignment`]) — on the caller thread, the
//!    batch is deduplicated and grouped, the slot ↔ page mapping of every
//!    partial view is materialized (one `/proc/self/maps` parse, §2.5), and
//!    the *values of every updated page* are copied out. The snapshot is
//!    plain owned data: it borrows nothing from the column.
//! 2. **Plan** ([`plan_alignment`]) — pure computation over the snapshot:
//!    for every view, the §2.4 add/remove decisions are replayed against a
//!    *shadow copy* of its mapping table, recording the page-table
//!    manipulations as [`ViewOp`]s. Because the snapshot is owned, this
//!    phase can run on a background worker ([`spawn_alignment`]) while
//!    queries keep executing against the untouched pre-batch views — and
//!    the independent per-view work is fork-joined across the
//!    [`asv_util::ThreadPool`].
//! 3. **Publish** ([`apply_plan`]) — back on the owning thread, the
//!    recorded ops are replayed onto the real view buffers (the only part
//!    that must exclude queries: a handful of `mmap(MAP_FIXED)` /
//!    truncate calls) and the [`ViewSet`] generation is bumped, moving the
//!    column into the next view epoch.
//!
//! The synchronous path runs the exact same three phases back-to-back, so
//! background and synchronous alignment produce bit-identical slot ↔ page
//! layouts by construction. Pages are planned in ascending page-id order —
//! never in `HashMap` iteration order — which pins the layout of newly
//! mapped slots to a single deterministic outcome across runs.

use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::Duration;

use asv_storage::{dedup_last_write_wins, sorted_page_groups, Column, Update};
use asv_util::{Parallelism, ThreadPool, Timer, ValueRange};
use asv_vmem::{Backend, MappingTable, VmemError};

use crate::updates::UpdateAlignmentStats;
use crate::viewset::ViewSet;

/// One mapping manipulation recorded by the planner, replayed on the real
/// view buffer at publish time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewOp {
    /// Map `phys_page` into view slot `slot` (a single-page rewire).
    Map {
        /// Target view slot.
        slot: usize,
        /// Physical page to map there.
        phys_page: usize,
    },
    /// Shrink the view's mapped prefix to `mapped_pages` slots.
    Truncate {
        /// New mapped-page count.
        mapped_pages: usize,
    },
}

/// The planned alignment of one partial view.
#[derive(Clone, Debug)]
pub struct ViewPlan {
    /// Position of the view in the [`ViewSet`] the snapshot was taken from.
    pub view_idx: usize,
    /// Id of that view (guards against the set changing before publish).
    pub view_id: u64,
    /// Mapping manipulations to replay, in order.
    pub ops: Vec<ViewOp>,
    /// `(view, page)` additions planned for this view.
    pub pages_added: usize,
    /// `(view, page)` removals planned for this view.
    pub pages_removed: usize,
}

/// The planned alignment of a whole view set for one update batch.
#[derive(Clone, Debug)]
pub struct AlignmentPlan {
    /// Number of raw update records in the batch.
    pub batch_size: usize,
    /// Number of records after last-write-wins deduplication.
    pub deduped_size: usize,
    /// Time spent materializing the view mappings in the snapshot phase.
    pub parse_time: Duration,
    /// Time spent planning (the phase that runs off the query path).
    pub plan_time: Duration,
    /// Per-view plans; views whose mapping is unaffected are omitted.
    pub views: Vec<ViewPlan>,
}

impl AlignmentPlan {
    /// Total `(view, page)` additions across all views.
    pub fn pages_added(&self) -> usize {
        self.views.iter().map(|v| v.pages_added).sum()
    }

    /// Total `(view, page)` removals across all views.
    pub fn pages_removed(&self) -> usize {
        self.views.iter().map(|v| v.pages_removed).sum()
    }
}

/// The owned state a background worker needs to plan an alignment: mapping
/// tables, update groups and the values of every updated page. Borrows
/// nothing — queries can keep scanning the column while a worker chews on
/// this.
#[derive(Clone, Debug)]
pub struct AlignmentSnapshot {
    batch_size: usize,
    deduped_size: usize,
    parse_time: Duration,
    /// Updates grouped by modified page, sorted ascending by page id.
    groups: Vec<(usize, Vec<Update>)>,
    /// Per partial view: position, id, covered range, pre-batch mapping.
    views: Vec<ViewSnapshot>,
    /// Post-batch values (valid slots only) of every updated page some
    /// view may have to re-inspect for a case-(2) removal.
    page_values: HashMap<usize, Vec<u64>>,
}

#[derive(Clone, Debug)]
struct ViewSnapshot {
    idx: usize,
    id: u64,
    range: ValueRange,
    table: MappingTable,
}

/// Captures everything the alignment planner needs from `column` / `views`
/// for an already-applied `batch` (phase 1).
///
/// The mapping of every partial view is materialized once for the whole
/// batch (one `/proc/self/maps` parse on the mmap backend, §2.5); the
/// contents of the updated pages are copied so removal decisions can be
/// taken without touching the column again.
pub fn snapshot_alignment<B: Backend>(
    column: &Column<B>,
    views: &ViewSet<B>,
    batch: &[Update],
) -> Result<AlignmentSnapshot, VmemError> {
    let deduped = dedup_last_write_wins(batch);
    let deduped_size = deduped.len();
    let groups: Vec<(usize, Vec<Update>)> = sorted_page_groups(&deduped)
        .into_iter()
        .map(|(page, updates)| (page as usize, updates))
        // Defensive: updates beyond the column are ignored.
        .filter(|(page, _)| *page < column.num_pages())
        .collect();

    // The parse timer covers the whole snapshot materialization: mapping
    // tables plus the page-value copies (the work the synchronous path
    // previously did lazily inside its align timer stays accounted for).
    let parse_timer = Timer::start();
    let tables: Vec<MappingTable> = {
        let buffers: Vec<&B::View> = views.partial_views().iter().map(|v| v.buffer()).collect();
        column.backend().mapping_tables(column.store(), &buffers)?
    };

    let view_snapshots: Vec<ViewSnapshot> = views
        .iter()
        .zip(tables)
        .map(|((idx, view), table)| ViewSnapshot {
            idx,
            id: view.id(),
            range: *view.range(),
            table,
        })
        .collect();

    // Copy only the pages some view may have to re-inspect for removal
    // (case 2: indexed, no new value qualifies, some old value did) — the
    // exact pages the synchronous algorithm used to read from the column.
    let page_values = groups
        .iter()
        .filter(|(page, page_updates)| {
            view_snapshots.iter().any(|view| {
                view.table.contains_phys(*page)
                    && !page_updates
                        .iter()
                        .any(|u| view.range.contains(u.new_value))
                    && page_updates
                        .iter()
                        .any(|u| view.range.contains(u.old_value))
            })
        })
        .map(|(page, _)| (*page, column.page_ref(*page).values().to_vec()))
        .collect();
    let parse_time = parse_timer.elapsed();

    Ok(AlignmentSnapshot {
        batch_size: batch.len(),
        deduped_size,
        parse_time,
        groups,
        views: view_snapshots,
        page_values,
    })
}

/// Plans the alignment of every view in the snapshot (phase 2) — pure
/// computation, fork-joined per view across a pool sized by `parallelism`.
pub fn plan_alignment(snapshot: &AlignmentSnapshot, parallelism: Parallelism) -> AlignmentPlan {
    let plan_timer = Timer::start();
    let pool = ThreadPool::new(parallelism);
    let tasks: Vec<_> = snapshot
        .views
        .iter()
        .map(|view| move || plan_view(view, &snapshot.groups, &snapshot.page_values))
        .collect();
    let views: Vec<ViewPlan> = pool
        .scoped_map(tasks)
        .into_iter()
        .filter(|plan| !plan.ops.is_empty())
        .collect();
    AlignmentPlan {
        batch_size: snapshot.batch_size,
        deduped_size: snapshot.deduped_size,
        parse_time: snapshot.parse_time,
        plan_time: plan_timer.elapsed(),
        views,
    }
}

/// Replays the §2.4 add/remove rules for one view against a shadow copy of
/// its mapping table, recording the resulting buffer manipulations.
///
/// This mirrors the in-place algorithm exactly: case-(1) additions append
/// at the mapped prefix's end, case-(2) removals swap the last slot into
/// the hole and truncate by one — so replaying the ops reproduces the same
/// slot ↔ page layout the synchronous path builds.
fn plan_view(
    view: &ViewSnapshot,
    groups: &[(usize, Vec<Update>)],
    page_values: &HashMap<usize, Vec<u64>>,
) -> ViewPlan {
    let range = view.range;
    let mut table = view.table.clone();
    let mut mapped = table.len();
    let mut ops = Vec::new();
    let mut pages_added = 0usize;
    let mut pages_removed = 0usize;
    for (page, page_updates) in groups {
        let page = *page;
        let indexed = table.contains_phys(page);
        let any_new_qualifies = page_updates.iter().any(|u| range.contains(u.new_value));
        if !indexed {
            // Case (1): the page is not indexed but received a value inside
            // the view's range — map it into the first unused slot.
            if any_new_qualifies {
                ops.push(ViewOp::Map {
                    slot: mapped,
                    phys_page: page,
                });
                table.insert(mapped, page);
                mapped += 1;
                pages_added += 1;
            }
        } else if !any_new_qualifies {
            // Case (2): the page is indexed and none of the new values keep
            // it qualifying *because of this batch*. If no old value was in
            // range either, the updates are irrelevant to this view;
            // otherwise re-inspect the page and remove it if no remaining
            // value falls into the range.
            let any_old_qualified = page_updates.iter().any(|u| range.contains(u.old_value));
            if any_old_qualified {
                let still_qualifies = page_values
                    .get(&page)
                    .expect("snapshot holds every page needing re-inspection")
                    .iter()
                    .any(|v| range.contains(*v));
                if !still_qualifies {
                    // Swap-remove: rewire the last mapped slot into the
                    // hole, then truncate by one page.
                    let hole_slot = table
                        .remove_phys(page)
                        .expect("page is indexed by this view");
                    let last_slot = mapped - 1;
                    if hole_slot != last_slot {
                        let last_phys = table
                            .phys_for_slot(last_slot)
                            .expect("dense views have a mapping for every slot");
                        ops.push(ViewOp::Map {
                            slot: hole_slot,
                            phys_page: last_phys,
                        });
                        table.remove_slot(last_slot);
                        table.insert(hole_slot, last_phys);
                    }
                    ops.push(ViewOp::Truncate {
                        mapped_pages: last_slot,
                    });
                    mapped = last_slot;
                    pages_removed += 1;
                }
            }
        }
    }
    ViewPlan {
        view_idx: view.idx,
        view_id: view.id,
        ops,
        pages_added,
        pages_removed,
    }
}

/// Publishes a plan (phase 3): replays every recorded op onto the real view
/// buffers and bumps the [`ViewSet`] generation, moving queries onto the
/// post-batch view epoch.
///
/// Fails with [`VmemError::Unsupported`] if the view set changed since the
/// snapshot was taken (a view at a planned position no longer carries the
/// snapshotted id).
pub fn apply_plan<B: Backend>(
    column: &Column<B>,
    views: &mut ViewSet<B>,
    plan: &AlignmentPlan,
) -> Result<UpdateAlignmentStats, VmemError> {
    let apply_timer = Timer::start();
    // Validate every planned view position/id up front, before any buffer
    // is touched: a stale plan must fail cleanly, not half-published.
    for view_plan in &plan.views {
        if views
            .partial_view(view_plan.view_idx)
            .map(|v| v.id() != view_plan.view_id)
            .unwrap_or(true)
        {
            return Err(VmemError::Unsupported(
                "view set changed between alignment snapshot and publish",
            ));
        }
    }
    for view_plan in &plan.views {
        let view = views
            .partial_view_mut(view_plan.view_idx)
            .expect("validated above");
        for op in &view_plan.ops {
            match *op {
                ViewOp::Map { slot, phys_page } => {
                    column.map_run_into(view.buffer_mut(), slot, phys_page, 1)?;
                }
                ViewOp::Truncate { mapped_pages } => {
                    column
                        .backend()
                        .truncate_view(view.buffer_mut(), mapped_pages)?;
                }
            }
        }
    }
    views.bump_generation();
    Ok(UpdateAlignmentStats {
        batch_size: plan.batch_size,
        deduped_size: plan.deduped_size,
        parse_time: plan.parse_time,
        align_time: plan.plan_time + apply_timer.elapsed(),
        pages_added: plan.pages_added(),
        pages_removed: plan.pages_removed(),
    })
}

/// A batch alignment planning on a background worker thread.
///
/// Produced by [`spawn_alignment`]; the owning column keeps serving queries
/// on the pre-batch view epoch until the plan is [`PendingAlignment::join`]ed
/// and published with [`apply_plan`].
#[derive(Debug)]
pub struct PendingAlignment {
    handle: JoinHandle<AlignmentPlan>,
}

/// Ships an [`AlignmentSnapshot`] to a dedicated worker thread that plans
/// the alignment off the query path. Within the batch, the worker
/// fork-joins the per-view planning across a pool sized by `parallelism`.
pub fn spawn_alignment(snapshot: AlignmentSnapshot, parallelism: Parallelism) -> PendingAlignment {
    let handle = std::thread::Builder::new()
        .name("asv-align".into())
        .spawn(move || plan_alignment(&snapshot, parallelism))
        .expect("spawn alignment worker thread");
    PendingAlignment { handle }
}

impl PendingAlignment {
    /// Returns `true` once the worker has finished planning (joining will
    /// not block).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Waits for the worker and returns the finished plan.
    ///
    /// A panic on the worker thread is propagated to the caller.
    pub fn join(self) -> AlignmentPlan {
        match self.handle.join() {
            Ok(plan) => plan,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreationOptions;
    use crate::creation::build_view_for_range;
    use asv_vmem::{SimBackend, VALUES_PER_PAGE};

    /// Clustered data: page p holds values in [p*1000, p*1000 + 510].
    fn clustered_values(pages: usize) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    fn column_with_views(
        pages: usize,
        ranges: &[ValueRange],
    ) -> (Column<SimBackend>, ViewSet<SimBackend>) {
        let column = Column::from_values(SimBackend::new(), &clustered_values(pages)).unwrap();
        let mut views = ViewSet::new(10);
        for r in ranges {
            let (buffer, _) = build_view_for_range(&column, r, &CreationOptions::ALL).unwrap();
            views.insert_unchecked(*r, buffer);
        }
        (column, views)
    }

    #[test]
    fn snapshot_is_self_contained_and_sorted() {
        let range = ValueRange::new(5_000, 9_400);
        let (mut column, views) = column_with_views(32, &[range]);
        let updates = column.write_batch(&[
            (20 * VALUES_PER_PAGE + 3, 6_000),
            (7 * VALUES_PER_PAGE, 900_000),
            (2 * VALUES_PER_PAGE, 1),
        ]);
        let snap = snapshot_alignment(&column, &views, &updates).unwrap();
        assert_eq!(snap.batch_size, 3);
        assert_eq!(snap.deduped_size, 3);
        let pages: Vec<usize> = snap.groups.iter().map(|(p, _)| *p).collect();
        assert_eq!(pages, vec![2, 7, 20], "groups sorted by page id");
        assert_eq!(snap.views.len(), 1);
        // Only page 7 may need re-inspection (indexed, old value in range,
        // new value out of range), so only its values are copied — pages 2
        // (never indexed) and 20 (case-1 addition) are not.
        assert_eq!(snap.page_values.len(), 1);
        assert_eq!(snap.page_values[&7].len(), VALUES_PER_PAGE);
        // The snapshot carries post-batch values.
        assert_eq!(snap.page_values[&7][0], 900_000);
    }

    #[test]
    fn plan_records_append_for_new_page() {
        let range = ValueRange::new(5_000, 9_400);
        let (mut column, views) = column_with_views(32, &[range]);
        let before = views.partial_view(0).unwrap().num_pages();
        let updates = column.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        let snap = snapshot_alignment(&column, &views, &updates).unwrap();
        let plan = plan_alignment(&snap, Parallelism::Sequential);
        assert_eq!(plan.pages_added(), 1);
        assert_eq!(plan.pages_removed(), 0);
        assert_eq!(plan.views.len(), 1);
        assert_eq!(
            plan.views[0].ops,
            vec![ViewOp::Map {
                slot: before,
                phys_page: 20
            }]
        );
    }

    #[test]
    fn publish_fails_if_view_set_changed() {
        let range = ValueRange::new(5_000, 9_400);
        let (mut column, mut views) = column_with_views(32, &[range]);
        let updates = column.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        let snap = snapshot_alignment(&column, &views, &updates).unwrap();
        let plan = plan_alignment(&snap, Parallelism::Sequential);
        // Replace the view set's only view: ids no longer match.
        views.clear();
        let (buffer, _) = build_view_for_range(&column, &range, &CreationOptions::ALL).unwrap();
        views.insert_unchecked(range, buffer);
        assert!(apply_plan(&column, &mut views, &plan).is_err());
    }

    #[test]
    fn background_planning_runs_off_thread() {
        let range = ValueRange::new(5_000, 9_400);
        let (mut column, mut views) = column_with_views(32, &[range]);
        let updates = column.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        let snap = snapshot_alignment(&column, &views, &updates).unwrap();
        let generation_before = views.generation();
        let pending = spawn_alignment(snap, Parallelism::Threads(2));
        // The snapshot is owned by the worker: the column stays fully
        // usable here (this is the whole point of the handoff).
        assert!(column.full_scan(&range).count > 0);
        let plan = pending.join();
        let stats = apply_plan(&column, &mut views, &plan).unwrap();
        assert_eq!(stats.pages_added, 1);
        assert_eq!(views.generation(), generation_before + 1);
    }
}
