//! Background (epoch-handoff) view alignment.
//!
//! [`crate::updates::align_views_after_updates`] is a stop-the-world call:
//! no query can run on the column while a whole batch is aligned. This
//! module decomposes alignment into three phases so the expensive decision
//! work can leave the query path entirely (related work: *Virtual-Memory
//! Assisted Buffer Management* overlaps mapping changes with query
//! execution; *The Virtual Block Interface* decouples mapping management
//! from access latency):
//!
//! 1. **Snapshot** ([`snapshot_alignment`]) — on the caller thread, the
//!    batch is deduplicated and grouped, the slot ↔ page mapping of every
//!    partial view is materialized (one `/proc/self/maps` parse, §2.5), and
//!    the *values of every updated page* are copied out. The snapshot is
//!    plain owned data: it borrows nothing from the column.
//! 2. **Plan** ([`plan_alignment`]) — pure computation over the snapshot:
//!    for every view, the §2.4 add/remove decisions are replayed against a
//!    *shadow copy* of its mapping table, recording the page-table
//!    manipulations as [`ViewOp`]s. Because the snapshot is owned, this
//!    phase can run on a background worker ([`spawn_alignment`]) while
//!    queries keep executing against the untouched pre-batch views — and
//!    the independent per-view work is fork-joined across the
//!    [`asv_util::ThreadPool`].
//! 3. **Publish** ([`apply_plan`]) — back on the owning thread, the
//!    recorded ops are replayed onto the real view buffers (the only part
//!    that must exclude queries: a handful of `mmap(MAP_FIXED)` /
//!    truncate calls) and the [`ViewSet`] generation is bumped, moving the
//!    column into the next view epoch.
//!
//! The synchronous path runs the exact same three phases back-to-back, so
//! background and synchronous alignment produce bit-identical slot ↔ page
//! layouts by construction. Pages are planned in ascending page-id order —
//! never in `HashMap` iteration order — which pins the layout of newly
//! mapped slots to a single deterministic outcome across runs.
//!
//! # Write ingestion and chunked publishing
//!
//! Two additions lift the remaining stop-the-world costs off the write and
//! publish paths:
//!
//! * **Chunked alignment** ([`plan_alignment_chunked`]) splits a large
//!   batch into consecutive chunks of bounded update count (whole page
//!   groups are never split) and plans *all* of them in one background
//!   pass against the same evolving shadow mapping tables. Each chunk then
//!   publishes as its own [`ViewSet`] epoch, so the query-excluding publish
//!   step is bounded by the chunk size — concatenating the chunks of a
//!   [`ChunkedAlignmentPlan`] reproduces the unchunked plan op-for-op, so
//!   chunked and unchunked alignment end in bit-identical layouts.
//! * **A pending-writes queue** ([`WriteOverlay`]) lets
//!   [`crate::AdaptiveColumn`] accept `write` / `write_batch` while a plan
//!   is in flight: the writes are queued instead of hitting the physical
//!   column, reads resolve through the overlay (scans mask the queued rows
//!   via [`asv_storage::ScanKernel::with_excluded_rows`] and the query
//!   layer substitutes the queued values), and the queue drains into the
//!   next alignment round automatically when the current round's last
//!   chunk publishes.
//!
//! # Dependency-driven incremental alignment
//!
//! Snapshotting *every* view for *every* batch makes maintenance cost
//! scale with total views, not affected views. The [`ViewDepGraph`] — an
//! [`IntervalIndex`] over every partial view's predicate range, kept in
//! sync by [`ViewSet`] on view creation/replacement/clear — lets a write
//! batch be narrowed first: [`compute_alignment_delta`] intersects the
//! touched zones' value bands ([`ZoneStats`]) with the indexed predicate
//! ranges and emits one [`DeltaWorkItem`] per affected view, ordered by a
//! priority key (views hit by more touched zones first). Feeding the delta
//! to [`snapshot_alignment_delta`] materializes mapping tables and page
//! values *only for that subset* — untouched views are never snapshotted,
//! planned, or republished; they keep their epoch verbatim. Because zone
//! bands only ever widen (they cover both the pre-batch contents and every
//! acknowledged write), a view outside every touched band can have no
//! qualifying old or new value in the batch, so its full-replan plan would
//! be empty: the filtered plan equals the full plan restricted to its
//! views, op for op. The full-replan path stays in place as the
//! property-test reference twin.

use std::cell::{Cell, Ref, RefCell};
use std::collections::HashMap;
use std::ops::Range;
use std::thread::JoinHandle;
use std::time::Duration;

use asv_storage::{
    copy_values_chunked, dedup_last_write_wins, sorted_page_groups, Column, ExclusionMasks, Update,
};
use asv_util::{IntervalIndex, Parallelism, ThreadPool, Timer, ValueRange};
use asv_vmem::{Backend, MappingTable, VmemError};

use crate::plan::ZoneStats;
use crate::updates::UpdateAlignmentStats;
use crate::viewset::ViewSet;

/// One mapping manipulation recorded by the planner, replayed on the real
/// view buffer at publish time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewOp {
    /// Map `phys_page` into view slot `slot` (a single-page rewire).
    Map {
        /// Target view slot.
        slot: usize,
        /// Physical page to map there.
        phys_page: usize,
    },
    /// Shrink the view's mapped prefix to `mapped_pages` slots.
    Truncate {
        /// New mapped-page count.
        mapped_pages: usize,
    },
}

/// The planned alignment of one partial view.
#[derive(Clone, Debug)]
pub struct ViewPlan {
    /// Position of the view in the [`ViewSet`] the snapshot was taken from.
    pub view_idx: usize,
    /// Id of that view (guards against the set changing before publish).
    pub view_id: u64,
    /// Mapping manipulations to replay, in order.
    pub ops: Vec<ViewOp>,
    /// `(view, page)` additions planned for this view.
    pub pages_added: usize,
    /// `(view, page)` removals planned for this view.
    pub pages_removed: usize,
}

/// The planned alignment of a whole view set for one update batch.
#[derive(Clone, Debug)]
pub struct AlignmentPlan {
    /// Number of raw update records in the batch.
    pub batch_size: usize,
    /// Number of records after last-write-wins deduplication.
    pub deduped_size: usize,
    /// Time spent materializing the view mappings in the snapshot phase.
    pub parse_time: Duration,
    /// Time spent planning (the phase that runs off the query path).
    pub plan_time: Duration,
    /// Per-view plans; views whose mapping is unaffected are omitted.
    pub views: Vec<ViewPlan>,
}

impl AlignmentPlan {
    /// Total `(view, page)` additions across all views.
    pub fn pages_added(&self) -> usize {
        self.views.iter().map(|v| v.pages_added).sum()
    }

    /// Total `(view, page)` removals across all views.
    pub fn pages_removed(&self) -> usize {
        self.views.iter().map(|v| v.pages_removed).sum()
    }
}

/// The owned state a background worker needs to plan an alignment: mapping
/// tables, update groups and the values of every updated page. Borrows
/// nothing — queries can keep scanning the column while a worker chews on
/// this.
#[derive(Clone, Debug)]
pub struct AlignmentSnapshot {
    batch_size: usize,
    deduped_size: usize,
    parse_time: Duration,
    /// Updates grouped by modified page, sorted ascending by page id.
    groups: Vec<(usize, Vec<Update>)>,
    /// Per partial view: position, id, covered range, pre-batch mapping.
    views: Vec<ViewSnapshot>,
    /// Post-batch values (valid slots only) of every updated page some
    /// view may have to re-inspect for a case-(2) removal.
    page_values: HashMap<usize, Vec<u64>>,
}

impl AlignmentSnapshot {
    /// Number of views this snapshot will plan — the full live set for
    /// [`snapshot_alignment`], only the delta's views for
    /// [`snapshot_alignment_delta`].
    pub fn num_planned_views(&self) -> usize {
        self.views.len()
    }
}

#[derive(Clone, Debug)]
struct ViewSnapshot {
    idx: usize,
    id: u64,
    range: ValueRange,
    table: MappingTable,
}

/// The predicate → view dependency index of one column's view set.
///
/// Wraps an [`IntervalIndex`] keyed by view id. [`ViewSet`] owns one and
/// keeps it in sync at every mutation point (unchecked insert, candidate
/// replacement, clear) — view ranges are immutable after creation and
/// rebuilds preserve ids and ranges, so no other sync points exist.
#[derive(Clone, Debug, Default)]
pub struct ViewDepGraph {
    index: IntervalIndex,
}

impl ViewDepGraph {
    /// Creates an empty dependency graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed views.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no views are indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Registers a view's predicate range under its id.
    pub(crate) fn note_insert(&mut self, id: u64, range: ValueRange) {
        self.index.insert(id, range);
    }

    /// Drops a view (replaced or destroyed) from the index.
    pub(crate) fn note_remove(&mut self, id: u64) {
        self.index.remove(id);
    }

    /// Drops every view from the index.
    pub(crate) fn clear(&mut self) {
        self.index.clear();
    }

    /// The indexed predicate range of view `id`, if present.
    pub fn range_of(&self, id: u64) -> Option<ValueRange> {
        self.index.range_of(id)
    }

    /// Ids of all views whose predicate range intersects `band`, sorted
    /// ascending — `O(log n + k)` via the interval tree.
    pub fn overlapping(&self, band: &ValueRange) -> Vec<u64> {
        self.index.overlapping(band)
    }
}

/// One unit of incremental alignment work: a single view that a write batch
/// actually affects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaWorkItem {
    /// Position of the view in the view set at delta-computation time.
    pub view_idx: usize,
    /// Id of the view (revalidated at snapshot and publish time).
    pub view_id: u64,
    /// Cascade/priority key: the number of distinct touched zones whose
    /// band intersects the view's predicate range. Items are ordered
    /// hottest-first, so views overlapping more of the write land first in
    /// the snapshot, the plan, and the serve layer's delta queue.
    pub priority: u64,
}

/// The per-view work a write batch induces, as derived from the dependency
/// graph: which views must be replanned, out of how many.
#[derive(Clone, Debug)]
pub struct AlignmentDelta {
    /// Affected views, hottest first (priority descending, id ascending).
    pub items: Vec<DeltaWorkItem>,
    /// Total number of partial views at delta-computation time.
    pub total_views: usize,
    /// Number of distinct zones the batch wrote into.
    pub touched_zones: usize,
}

impl AlignmentDelta {
    /// Number of views the batch affects (the `k` in "replan exactly `k`
    /// of `V` views").
    pub fn num_affected(&self) -> usize {
        self.items.len()
    }
}

/// Narrows a write batch to the views it can possibly affect (the
/// dependency-graph consultation step of incremental alignment).
///
/// Every updated row's zone contributes its [`ZoneStats`] band, widened by
/// the batch's own old/new values as a defensive floor; views whose
/// predicate range intersects no touched band are provably unaffected —
/// zone bands are built over the column's initial contents and only ever
/// widened by acknowledged writes, so both the old value removed from and
/// the new value added to a zone lie inside its band. For such views the
/// §2.4 replay would emit zero ops, so skipping them leaves their layout
/// bit-identical to the full-replan path.
pub fn compute_alignment_delta<B: Backend>(
    stats: &ZoneStats,
    views: &ViewSet<B>,
    batch: &[Update],
) -> AlignmentDelta {
    // Touched zones with their (defensively widened) value bands.
    let mut bands: HashMap<usize, ValueRange> = HashMap::new();
    for u in batch {
        let row = u.row as usize;
        let zone = stats.zone_of_row(row);
        let band = bands.entry(zone).or_insert_with(|| {
            stats
                .zone_band(zone)
                .unwrap_or_else(|| ValueRange::point(u.old_value))
        });
        band.extend_to(u.old_value);
        band.extend_to(u.new_value);
    }

    // Count, per affected view id, how many touched zones hit it.
    let mut hits: HashMap<u64, u64> = HashMap::new();
    for band in bands.values() {
        for id in views.dep_graph().overlapping(band) {
            *hits.entry(id).or_insert(0) += 1;
        }
    }

    let idx_of: HashMap<u64, usize> = views.iter().map(|(idx, v)| (v.id(), idx)).collect();
    let mut items: Vec<DeltaWorkItem> = hits
        .into_iter()
        .filter_map(|(view_id, priority)| {
            idx_of.get(&view_id).map(|&view_idx| DeltaWorkItem {
                view_idx,
                view_id,
                priority,
            })
        })
        .collect();
    items.sort_unstable_by_key(|item| (std::cmp::Reverse(item.priority), item.view_id));

    AlignmentDelta {
        items,
        total_views: views.num_partial_views(),
        touched_zones: bands.len(),
    }
}

/// Captures everything the alignment planner needs from `column` / `views`
/// for an already-applied `batch` (phase 1).
///
/// The mapping of every partial view is materialized once for the whole
/// batch (one `/proc/self/maps` parse on the mmap backend, §2.5); the
/// contents of the updated pages are copied so removal decisions can be
/// taken without touching the column again.
pub fn snapshot_alignment<B: Backend>(
    column: &Column<B>,
    views: &ViewSet<B>,
    batch: &[Update],
) -> Result<AlignmentSnapshot, VmemError> {
    snapshot_impl(column, views, batch, None)
}

/// Like [`snapshot_alignment`], but restricted to the views named by an
/// [`AlignmentDelta`]: mapping tables and page values are materialized only
/// for the affected subset, in the delta's priority order, so snapshot cost
/// scales with *affected* views. Fails like [`apply_plan`] if the view set
/// changed between delta computation and the snapshot.
pub fn snapshot_alignment_delta<B: Backend>(
    column: &Column<B>,
    views: &ViewSet<B>,
    batch: &[Update],
    delta: &AlignmentDelta,
) -> Result<AlignmentSnapshot, VmemError> {
    snapshot_impl(column, views, batch, Some(delta))
}

fn snapshot_impl<B: Backend>(
    column: &Column<B>,
    views: &ViewSet<B>,
    batch: &[Update],
    subset: Option<&AlignmentDelta>,
) -> Result<AlignmentSnapshot, VmemError> {
    let deduped = dedup_last_write_wins(batch);
    let deduped_size = deduped.len();
    let groups: Vec<(usize, Vec<Update>)> = sorted_page_groups(&deduped)
        .into_iter()
        .map(|(page, updates)| (page as usize, updates))
        // Defensive: updates beyond the column are ignored.
        .filter(|(page, _)| *page < column.num_pages())
        .collect();

    // Positions to snapshot: everything, or the delta's subset in priority
    // order (which the plan and publish phases then inherit).
    let selected: Vec<usize> = match subset {
        None => (0..views.num_partial_views()).collect(),
        Some(delta) => {
            for item in &delta.items {
                let matches = views
                    .partial_view(item.view_idx)
                    .is_some_and(|v| v.id() == item.view_id);
                if !matches {
                    return Err(VmemError::Unsupported(
                        "view set changed between delta computation and snapshot",
                    ));
                }
            }
            delta.items.iter().map(|item| item.view_idx).collect()
        }
    };

    // The parse timer covers the whole snapshot materialization: mapping
    // tables plus the page-value copies (the work the synchronous path
    // previously did lazily inside its align timer stays accounted for).
    let parse_timer = Timer::start();
    let tables: Vec<MappingTable> = {
        let buffers: Vec<&B::View> = selected
            .iter()
            .map(|&idx| views.partial_view(idx).expect("validated above").buffer())
            .collect();
        column.backend().mapping_tables(column.store(), &buffers)?
    };

    let view_snapshots: Vec<ViewSnapshot> = selected
        .iter()
        .zip(tables)
        .map(|(&idx, table)| {
            let view = views.partial_view(idx).expect("validated above");
            ViewSnapshot {
                idx,
                id: view.id(),
                range: *view.range(),
                table,
            }
        })
        .collect();

    // Copy only the pages some view may have to re-inspect for removal
    // (case 2: indexed, no new value qualifies, some old value did) — the
    // exact pages the synchronous algorithm used to read from the column.
    let page_values = groups
        .iter()
        .filter(|(page, page_updates)| {
            view_snapshots.iter().any(|view| {
                view.table.contains_phys(*page)
                    && !page_updates
                        .iter()
                        .any(|u| view.range.contains(u.new_value))
                    && page_updates
                        .iter()
                        .any(|u| view.range.contains(u.old_value))
            })
        })
        .map(|(page, _)| (*page, copy_values_chunked(column.page_ref(*page).values())))
        .collect();
    let parse_time = parse_timer.elapsed();

    Ok(AlignmentSnapshot {
        batch_size: batch.len(),
        deduped_size,
        parse_time,
        groups,
        views: view_snapshots,
        page_values,
    })
}

/// Plans the alignment of every view in the snapshot (phase 2) — pure
/// computation, fork-joined per view across a pool sized by `parallelism`.
pub fn plan_alignment(snapshot: &AlignmentSnapshot, parallelism: Parallelism) -> AlignmentPlan {
    let plan_timer = Timer::start();
    let pool = ThreadPool::new(parallelism);
    let tasks: Vec<_> = snapshot
        .views
        .iter()
        .map(|view| move || plan_view(view, &snapshot.groups, &snapshot.page_values))
        .collect();
    let views: Vec<ViewPlan> = pool
        .scoped_map(tasks)
        .into_iter()
        .filter(|plan| !plan.ops.is_empty())
        .collect();
    AlignmentPlan {
        batch_size: snapshot.batch_size,
        deduped_size: snapshot.deduped_size,
        parse_time: snapshot.parse_time,
        plan_time: plan_timer.elapsed(),
        views,
    }
}

/// Replays the §2.4 add/remove rules for one view against a shadow copy of
/// its mapping table, recording the resulting buffer manipulations.
///
/// This mirrors the in-place algorithm exactly: case-(1) additions append
/// at the mapped prefix's end, case-(2) removals swap the last slot into
/// the hole and truncate by one — so replaying the ops reproduces the same
/// slot ↔ page layout the synchronous path builds.
fn plan_view(
    view: &ViewSnapshot,
    groups: &[(usize, Vec<Update>)],
    page_values: &HashMap<usize, Vec<u64>>,
) -> ViewPlan {
    let whole_batch = 0..groups.len();
    plan_view_chunks(
        view,
        groups,
        std::slice::from_ref(&whole_batch),
        page_values,
    )
    .pop()
    .expect("one boundary, one plan")
}

/// [`plan_view`] over explicit chunk boundaries: the shadow mapping table
/// persists across boundaries, so the k-th returned [`ViewPlan`] holds
/// exactly the ops of groups `boundaries[k]` *as they would appear within
/// one uninterrupted pass*. Concatenating all chunks reproduces the
/// unchunked plan op-for-op.
fn plan_view_chunks(
    view: &ViewSnapshot,
    groups: &[(usize, Vec<Update>)],
    boundaries: &[Range<usize>],
    page_values: &HashMap<usize, Vec<u64>>,
) -> Vec<ViewPlan> {
    let range = view.range;
    let mut table = view.table.clone();
    let mut mapped = table.len();
    let mut chunks = Vec::with_capacity(boundaries.len());
    for boundary in boundaries {
        let mut ops = Vec::new();
        let mut pages_added = 0usize;
        let mut pages_removed = 0usize;
        for (page, page_updates) in &groups[boundary.clone()] {
            let page = *page;
            let indexed = table.contains_phys(page);
            let any_new_qualifies = page_updates.iter().any(|u| range.contains(u.new_value));
            if !indexed {
                // Case (1): the page is not indexed but received a value
                // inside the view's range — map it into the first unused
                // slot.
                if any_new_qualifies {
                    ops.push(ViewOp::Map {
                        slot: mapped,
                        phys_page: page,
                    });
                    table.insert(mapped, page);
                    mapped += 1;
                    pages_added += 1;
                }
            } else if !any_new_qualifies {
                // Case (2): the page is indexed and none of the new values
                // keep it qualifying *because of this batch*. If no old
                // value was in range either, the updates are irrelevant to
                // this view; otherwise re-inspect the page and remove it if
                // no remaining value falls into the range.
                let any_old_qualified = page_updates.iter().any(|u| range.contains(u.old_value));
                if any_old_qualified {
                    let still_qualifies = page_values
                        .get(&page)
                        .expect("snapshot holds every page needing re-inspection")
                        .iter()
                        .any(|v| range.contains(*v));
                    if !still_qualifies {
                        // Swap-remove: rewire the last mapped slot into the
                        // hole, then truncate by one page.
                        let hole_slot = table
                            .remove_phys(page)
                            .expect("page is indexed by this view");
                        let last_slot = mapped - 1;
                        if hole_slot != last_slot {
                            let last_phys = table
                                .phys_for_slot(last_slot)
                                .expect("dense views have a mapping for every slot");
                            ops.push(ViewOp::Map {
                                slot: hole_slot,
                                phys_page: last_phys,
                            });
                            table.remove_slot(last_slot);
                            table.insert(hole_slot, last_phys);
                        }
                        ops.push(ViewOp::Truncate {
                            mapped_pages: last_slot,
                        });
                        mapped = last_slot;
                        pages_removed += 1;
                    }
                }
            }
        }
        chunks.push(ViewPlan {
            view_idx: view.idx,
            view_id: view.id,
            ops,
            pages_added,
            pages_removed,
        });
    }
    chunks
}

/// Splits the (deduplicated, page-grouped, page-sorted) update groups into
/// consecutive chunk boundaries of at most `chunk_updates` updates each.
///
/// Page groups are never split across chunks — a chunk exceeds the bound
/// only when a single group already does. `chunk_updates == 0` disables
/// chunking (one boundary covering everything). An empty group list yields
/// one empty boundary, so every alignment round publishes at least one
/// epoch (matching the synchronous path, which bumps the generation even
/// for batches that touch no view).
pub fn chunk_boundaries(
    groups: &[(usize, Vec<Update>)],
    chunk_updates: usize,
) -> Vec<Range<usize>> {
    if groups.is_empty() || chunk_updates == 0 {
        return std::iter::once(0..groups.len()).collect();
    }
    let mut boundaries = Vec::new();
    let mut start = 0usize;
    let mut in_chunk = 0usize;
    for (idx, (_, updates)) in groups.iter().enumerate() {
        if idx > start && in_chunk + updates.len() > chunk_updates {
            boundaries.push(start..idx);
            start = idx;
            in_chunk = 0;
        }
        in_chunk += updates.len();
    }
    boundaries.push(start..groups.len());
    boundaries
}

/// The planned alignment of a whole batch, split into consecutive chunks
/// that publish as separate [`ViewSet`] epochs.
///
/// Produced by [`plan_alignment_chunked`]. The chunks partition the
/// batch's sorted page groups; concatenating their per-view ops in chunk
/// order reproduces the unchunked [`AlignmentPlan`] exactly, so the final
/// slot ↔ page layout is independent of the chunk size — only the number
/// of intermediate epochs (and the per-publish latency) changes.
#[derive(Clone, Debug)]
pub struct ChunkedAlignmentPlan {
    /// Number of raw update records in the whole batch.
    pub batch_size: usize,
    /// Number of records after last-write-wins deduplication.
    pub deduped_size: usize,
    /// The per-chunk plans, in publish order. Each chunk's
    /// `batch_size`/`deduped_size` count only the updates it folds; the
    /// snapshot's parse time and the (whole-pass) plan time are attributed
    /// to the first chunk so that summing per-chunk stats reproduces the
    /// round totals.
    pub chunks: Vec<AlignmentPlan>,
}

impl ChunkedAlignmentPlan {
    /// Number of chunks (≥ 1).
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Total `(view, page)` additions across all chunks.
    pub fn pages_added(&self) -> usize {
        self.chunks.iter().map(|c| c.pages_added()).sum()
    }

    /// Total `(view, page)` removals across all chunks.
    pub fn pages_removed(&self) -> usize {
        self.chunks.iter().map(|c| c.pages_removed()).sum()
    }
}

/// Plans the alignment of every view in the snapshot as a sequence of
/// chunks of at most `chunk_updates` updates each (phase 2, chunked).
///
/// The whole pass runs once — per view, fork-joined across a pool sized by
/// `parallelism` — against shadow mapping tables that persist across chunk
/// boundaries, so the concatenation of all chunks equals the unchunked
/// [`plan_alignment`] op-for-op. Publishing chunk-by-chunk therefore walks
/// through intermediate epochs towards the *same* final layout.
pub fn plan_alignment_chunked(
    snapshot: &AlignmentSnapshot,
    parallelism: Parallelism,
    chunk_updates: usize,
) -> ChunkedAlignmentPlan {
    let plan_timer = Timer::start();
    let boundaries = chunk_boundaries(&snapshot.groups, chunk_updates);
    let pool = ThreadPool::new(parallelism);
    let tasks: Vec<_> = snapshot
        .views
        .iter()
        .map(|view| {
            let boundaries = &boundaries;
            move || plan_view_chunks(view, &snapshot.groups, boundaries, &snapshot.page_values)
        })
        .collect();
    let per_view: Vec<Vec<ViewPlan>> = pool.scoped_map(tasks);
    let plan_time = plan_timer.elapsed();

    let chunks: Vec<AlignmentPlan> = boundaries
        .iter()
        .enumerate()
        .map(|(k, boundary)| {
            let updates_in_chunk: usize = snapshot.groups[boundary.clone()]
                .iter()
                .map(|(_, updates)| updates.len())
                .sum();
            AlignmentPlan {
                batch_size: updates_in_chunk,
                deduped_size: updates_in_chunk,
                parse_time: if k == 0 {
                    snapshot.parse_time
                } else {
                    Duration::ZERO
                },
                plan_time: if k == 0 { plan_time } else { Duration::ZERO },
                views: per_view
                    .iter()
                    .filter(|chunks| !chunks[k].ops.is_empty())
                    .map(|chunks| chunks[k].clone())
                    .collect(),
            }
        })
        .collect();
    ChunkedAlignmentPlan {
        batch_size: snapshot.batch_size,
        deduped_size: snapshot.deduped_size,
        chunks,
    }
}

/// Publishes a plan (phase 3): replays every recorded op onto the real view
/// buffers and bumps the [`ViewSet`] generation, moving queries onto the
/// post-batch view epoch.
///
/// Fails with [`VmemError::Unsupported`] if the view set changed since the
/// snapshot was taken (a view at a planned position no longer carries the
/// snapshotted id).
pub fn apply_plan<B: Backend>(
    column: &Column<B>,
    views: &mut ViewSet<B>,
    plan: &AlignmentPlan,
) -> Result<UpdateAlignmentStats, VmemError> {
    let apply_timer = Timer::start();
    // Validate every planned view position/id up front, before any buffer
    // is touched: a stale plan must fail cleanly, not half-published.
    for view_plan in &plan.views {
        if views
            .partial_view(view_plan.view_idx)
            .map(|v| v.id() != view_plan.view_id)
            .unwrap_or(true)
        {
            return Err(VmemError::Unsupported(
                "view set changed between alignment snapshot and publish",
            ));
        }
    }
    for view_plan in &plan.views {
        let view = views
            .partial_view_mut(view_plan.view_idx)
            .expect("validated above");
        for op in &view_plan.ops {
            match *op {
                ViewOp::Map { slot, phys_page } => {
                    column.map_run_into(view.buffer_mut(), slot, phys_page, 1)?;
                }
                ViewOp::Truncate { mapped_pages } => {
                    column
                        .backend()
                        .truncate_view(view.buffer_mut(), mapped_pages)?;
                }
            }
        }
    }
    views.bump_generation();
    Ok(UpdateAlignmentStats {
        batch_size: plan.batch_size,
        deduped_size: plan.deduped_size,
        parse_time: plan.parse_time,
        align_time: plan.plan_time + apply_timer.elapsed(),
        pages_added: plan.pages_added(),
        pages_removed: plan.pages_removed(),
    })
}

/// A batch alignment planning on a background worker thread.
///
/// Produced by [`spawn_alignment`]; the owning column keeps serving queries
/// on the pre-batch view epoch until the plan is [`PendingAlignment::join`]ed
/// and published with [`apply_plan`].
#[derive(Debug)]
pub struct PendingAlignment {
    handle: JoinHandle<AlignmentPlan>,
}

/// Ships an [`AlignmentSnapshot`] to a dedicated worker thread that plans
/// the alignment off the query path. Within the batch, the worker
/// fork-joins the per-view planning across a pool sized by `parallelism`.
pub fn spawn_alignment(snapshot: AlignmentSnapshot, parallelism: Parallelism) -> PendingAlignment {
    let handle = std::thread::Builder::new()
        .name("asv-align".into())
        .spawn(move || plan_alignment(&snapshot, parallelism))
        .expect("spawn alignment worker thread");
    PendingAlignment { handle }
}

impl PendingAlignment {
    /// Returns `true` once the worker has finished planning (joining will
    /// not block).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Waits for the worker and returns the finished plan.
    ///
    /// A panic on the worker thread is propagated to the caller.
    pub fn join(self) -> AlignmentPlan {
        match self.handle.join() {
            Ok(plan) => plan,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

/// A chunked batch alignment planning on a background worker thread.
///
/// Produced by [`spawn_alignment_chunked`]; the owning column keeps serving
/// queries on the pre-batch view epoch until the plan is joined, then
/// publishes the chunks one epoch at a time.
#[derive(Debug)]
pub struct PendingChunkedAlignment {
    handle: JoinHandle<ChunkedAlignmentPlan>,
}

/// Ships an [`AlignmentSnapshot`] to a dedicated worker thread that plans
/// the alignment off the query path as a [`ChunkedAlignmentPlan`] with at
/// most `chunk_updates` updates per chunk (`0` = one chunk). Within the
/// pass, the per-view planning fork-joins across a pool sized by
/// `parallelism`.
pub fn spawn_alignment_chunked(
    snapshot: AlignmentSnapshot,
    parallelism: Parallelism,
    chunk_updates: usize,
) -> PendingChunkedAlignment {
    let handle = std::thread::Builder::new()
        .name("asv-align".into())
        .spawn(move || plan_alignment_chunked(&snapshot, parallelism, chunk_updates))
        .expect("spawn alignment worker thread");
    PendingChunkedAlignment { handle }
}

impl PendingChunkedAlignment {
    /// Returns `true` once the worker has finished planning (joining will
    /// not block).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Waits for the worker and returns the finished chunked plan.
    ///
    /// A panic on the worker thread is propagated to the caller.
    pub fn join(self) -> ChunkedAlignmentPlan {
        match self.handle.join() {
            Ok(plan) => plan,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

/// The pending-writes queue of an adaptive column: rows written while an
/// alignment round is in flight, visible to reads through an overlay.
///
/// Entries live through two stages:
///
/// 1. **Queued** — the write has *not* reached the physical column yet; the
///    overlay value is the only copy. Scans mask the row (via
///    [`asv_storage::ScanKernel::with_excluded_rows`]) and the query layer
///    answers it from the overlay.
/// 2. **Aligning** — the queue was drained into an alignment round
///    ([`WriteOverlay::take_queued`]): the value now lives in the physical
///    column too, but the partial views are not yet re-aligned with it, so
///    the row stays masked-and-overlaid until the round's last chunk
///    publishes ([`WriteOverlay::retire_aligned`]).
///
/// In both stages the overlay carries the acknowledged value, so a read
/// issued any time between the `write` acknowledgement and the publish of
/// the round that folds it sees the written value exactly once.
#[derive(Debug, Default)]
pub struct WriteOverlay {
    /// Row → acknowledged value plus stage (`true` = still queued).
    entries: HashMap<u64, OverlayEntry>,
    /// Cached mirror of `entries`' keys — the scan exclusion list. New
    /// rows append unsorted and the cache re-sorts lazily when read
    /// ([`Self::rows`]), so write ingestion stays O(1) amortized per
    /// newly-queued row instead of O(queue) for a sorted insert.
    rows: RefCell<Vec<u64>>,
    /// `true` while `rows` may be out of ascending order.
    rows_dirty: Cell<bool>,
    /// Per-page exclusion bitmasks derived from `rows`, built lazily on the
    /// first masked scan of an overlay epoch and reused until the row set
    /// changes (a newly-overlaid row or a retire). Value-only rewrites keep
    /// the cache — the masks depend on *which* rows are overlaid, not on
    /// their values.
    masks: RefCell<Option<ExclusionMasks>>,
    /// Arrival-ordered log of queued `(row, value)` writes, drained into
    /// the next alignment round. Repeated writes to a row appear once per
    /// write here (the alignment's last-write-wins dedup collapses them),
    /// while `entries` always carries the latest value.
    log: Vec<(usize, u64)>,
}

#[derive(Clone, Copy, Debug)]
struct OverlayEntry {
    value: u64,
    queued: bool,
}

impl WriteOverlay {
    /// Creates an empty overlay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if no rows are overlaid.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct overlaid rows (queued + aligning).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of queued writes not yet drained into a round (counts every
    /// write, including repeated writes to the same row).
    pub fn queued_writes(&self) -> usize {
        self.log.len()
    }

    /// The overlaid rows, ascending — the scan exclusion list. Sorts the
    /// cache lazily if writes arrived since the last read.
    pub fn rows(&self) -> Ref<'_, Vec<u64>> {
        if self.rows_dirty.get() {
            self.rows.borrow_mut().sort_unstable();
            self.rows_dirty.set(false);
        }
        self.rows.borrow()
    }

    /// The per-page exclusion bitmasks over the overlaid rows, for
    /// [`asv_storage::ScanKernel::with_exclusion_masks`]. Built once per
    /// overlay epoch — the first masked scan after the row set changed pays
    /// the build, every further scan of the epoch reuses it. With no writes
    /// queued the overlay is empty and callers never reach this path, so
    /// the read-only fast path stays zero-cost.
    pub fn exclusion_masks(&self) -> Ref<'_, ExclusionMasks> {
        if self.masks.borrow().is_none() {
            let rows = self.rows().clone();
            *self.masks.borrow_mut() = Some(ExclusionMasks::from_rows(rows));
        }
        Ref::map(self.masks.borrow(), |m| {
            m.as_ref().expect("exclusion masks built above")
        })
    }

    /// The acknowledged value of `row`, if the row is overlaid.
    pub fn value(&self, row: u64) -> Option<u64> {
        self.entries.get(&row).map(|e| e.value)
    }

    /// Queues a write of `value` into `row`. Returns `true` if the row was
    /// not overlaid before (a new distinct row), `false` on a re-write of an
    /// already-overlaid row — the signal per-shard backpressure accounting
    /// needs to mirror [`Self::len`] without rescanning.
    pub fn push(&mut self, row: usize, value: u64) -> bool {
        let key = row as u64;
        let newly_overlaid = self
            .entries
            .insert(
                key,
                OverlayEntry {
                    value,
                    queued: true,
                },
            )
            .is_none();
        if newly_overlaid {
            self.rows.get_mut().push(key);
            self.rows_dirty.set(true);
            *self.masks.get_mut() = None;
        }
        self.log.push((row, value));
        newly_overlaid
    }

    /// Drains the queued write log for the next alignment round, moving
    /// every queued entry into the *aligning* stage (it stays overlaid
    /// until [`Self::retire_aligned`]). Returns the writes in arrival
    /// order, ready for `Column::write_batch`.
    pub fn take_queued(&mut self) -> Vec<(usize, u64)> {
        for entry in self.entries.values_mut() {
            entry.queued = false;
        }
        std::mem::take(&mut self.log)
    }

    /// Retires every *aligning* entry: their rows are now covered by the
    /// just-published alignment round, so reads no longer need the overlay.
    /// Entries re-queued since the drain stay.
    pub fn retire_aligned(&mut self) {
        self.entries.retain(|_, e| e.queued);
        let rows = self.rows.get_mut();
        rows.retain(|r| self.entries.contains_key(r));
        *self.masks.get_mut() = None;
    }

    /// Folds the overlaid values qualifying under `range` into an answer:
    /// calls `f(row, value)` for every overlaid row whose acknowledged
    /// value falls into `range`, in ascending row order.
    pub fn for_each_qualifying(&self, range: &ValueRange, mut f: impl FnMut(u64, u64)) {
        for &row in self.rows().iter() {
            let value = self.entries[&row].value;
            if range.contains(value) {
                f(row, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreationOptions;
    use crate::creation::build_view_for_range;
    use asv_vmem::{SimBackend, VALUES_PER_PAGE};

    /// Clustered data: page p holds values in [p*1000, p*1000 + 510].
    fn clustered_values(pages: usize) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    fn column_with_views(
        pages: usize,
        ranges: &[ValueRange],
    ) -> (Column<SimBackend>, ViewSet<SimBackend>) {
        let column = Column::from_values(SimBackend::new(), &clustered_values(pages)).unwrap();
        let mut views = ViewSet::new(10);
        for r in ranges {
            let (buffer, _) = build_view_for_range(&column, r, &CreationOptions::ALL).unwrap();
            views.insert_unchecked(*r, buffer);
        }
        (column, views)
    }

    #[test]
    fn snapshot_is_self_contained_and_sorted() {
        let range = ValueRange::new(5_000, 9_400);
        let (mut column, views) = column_with_views(32, &[range]);
        let updates = column.write_batch(&[
            (20 * VALUES_PER_PAGE + 3, 6_000),
            (7 * VALUES_PER_PAGE, 900_000),
            (2 * VALUES_PER_PAGE, 1),
        ]);
        let snap = snapshot_alignment(&column, &views, &updates).unwrap();
        assert_eq!(snap.batch_size, 3);
        assert_eq!(snap.deduped_size, 3);
        let pages: Vec<usize> = snap.groups.iter().map(|(p, _)| *p).collect();
        assert_eq!(pages, vec![2, 7, 20], "groups sorted by page id");
        assert_eq!(snap.views.len(), 1);
        // Only page 7 may need re-inspection (indexed, old value in range,
        // new value out of range), so only its values are copied — pages 2
        // (never indexed) and 20 (case-1 addition) are not.
        assert_eq!(snap.page_values.len(), 1);
        assert_eq!(snap.page_values[&7].len(), VALUES_PER_PAGE);
        // The snapshot carries post-batch values.
        assert_eq!(snap.page_values[&7][0], 900_000);
    }

    #[test]
    fn plan_records_append_for_new_page() {
        let range = ValueRange::new(5_000, 9_400);
        let (mut column, views) = column_with_views(32, &[range]);
        let before = views.partial_view(0).unwrap().num_pages();
        let updates = column.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        let snap = snapshot_alignment(&column, &views, &updates).unwrap();
        let plan = plan_alignment(&snap, Parallelism::Sequential);
        assert_eq!(plan.pages_added(), 1);
        assert_eq!(plan.pages_removed(), 0);
        assert_eq!(plan.views.len(), 1);
        assert_eq!(
            plan.views[0].ops,
            vec![ViewOp::Map {
                slot: before,
                phys_page: 20
            }]
        );
    }

    #[test]
    fn publish_fails_if_view_set_changed() {
        let range = ValueRange::new(5_000, 9_400);
        let (mut column, mut views) = column_with_views(32, &[range]);
        let updates = column.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        let snap = snapshot_alignment(&column, &views, &updates).unwrap();
        let plan = plan_alignment(&snap, Parallelism::Sequential);
        // Replace the view set's only view: ids no longer match.
        views.clear();
        let (buffer, _) = build_view_for_range(&column, &range, &CreationOptions::ALL).unwrap();
        views.insert_unchecked(range, buffer);
        assert!(apply_plan(&column, &mut views, &plan).is_err());
    }

    #[test]
    fn chunk_boundaries_pack_whole_page_groups() {
        let groups: Vec<(usize, Vec<Update>)> = [(2usize, 3usize), (5, 2), (7, 4), (9, 1), (11, 2)]
            .iter()
            .map(|&(page, n)| (page, (0..n).map(|i| Update::new(i as u64, 0, 1)).collect()))
            .collect();
        // Unchunked: one boundary.
        assert_eq!(chunk_boundaries(&groups, 0), vec![0..5]);
        // Bound 5: [3, 2] = 5, [4, 1] = 5, [2].
        assert_eq!(chunk_boundaries(&groups, 5), vec![0..2, 2..4, 4..5]);
        // Bound 1: every group its own chunk, oversized groups allowed.
        assert_eq!(
            chunk_boundaries(&groups, 1),
            vec![0..1, 1..2, 2..3, 3..4, 4..5]
        );
        // Empty groups: one empty boundary (one epoch, like the sync path).
        assert_eq!(chunk_boundaries(&[], 4), vec![0..0]);
    }

    #[test]
    fn chunked_plan_concatenates_to_the_unchunked_plan() {
        let ranges = [
            ValueRange::new(5_000, 9_400),
            ValueRange::new(12_000, 20_510),
        ];
        let (mut column, views) = column_with_views(32, &ranges);
        // A mix of additions and removals across many pages: move rows into
        // the first range, wipe page 13 out of the second.
        let mut writes: Vec<(usize, u64)> = (20..30)
            .map(|p| (p * VALUES_PER_PAGE + p, 6_000 + p as u64))
            .collect();
        writes.extend((0..VALUES_PER_PAGE).map(|s| (13 * VALUES_PER_PAGE + s, 1 + s as u64)));
        let updates = column.write_batch(&writes);
        let snap = snapshot_alignment(&column, &views, &updates).unwrap();
        let flat = plan_alignment(&snap, Parallelism::Sequential);
        for chunk_updates in [1usize, 3, 64, 1_000] {
            let chunked = plan_alignment_chunked(&snap, Parallelism::Sequential, chunk_updates);
            assert_eq!(chunked.batch_size, flat.batch_size);
            assert_eq!(chunked.deduped_size, flat.deduped_size);
            assert_eq!(chunked.pages_added(), flat.pages_added());
            assert_eq!(chunked.pages_removed(), flat.pages_removed());
            let total_updates: usize = chunked.chunks.iter().map(|c| c.deduped_size).sum();
            assert_eq!(total_updates, snap.deduped_size);
            // Concatenating the per-view ops across chunks reproduces the
            // unchunked plan op-for-op.
            for view_idx in 0..ranges.len() {
                let concat: Vec<ViewOp> = chunked
                    .chunks
                    .iter()
                    .flat_map(|c| c.views.iter().filter(|v| v.view_idx == view_idx))
                    .flat_map(|v| v.ops.iter().copied())
                    .collect();
                let flat_ops: Vec<ViewOp> = flat
                    .views
                    .iter()
                    .filter(|v| v.view_idx == view_idx)
                    .flat_map(|v| v.ops.iter().copied())
                    .collect();
                assert_eq!(concat, flat_ops, "chunk_updates={chunk_updates}");
            }
        }
        // Chunked planning fork-joined matches sequential planning.
        let par = plan_alignment_chunked(&snap, Parallelism::Threads(4), 3);
        let seq = plan_alignment_chunked(&snap, Parallelism::Sequential, 3);
        assert_eq!(par.num_chunks(), seq.num_chunks());
        for (a, b) in par.chunks.iter().zip(&seq.chunks) {
            assert_eq!(a.views.len(), b.views.len());
            for (va, vb) in a.views.iter().zip(&b.views) {
                assert_eq!(va.ops, vb.ops);
            }
        }
    }

    #[test]
    fn publishing_chunks_one_by_one_reaches_the_synchronous_layout() {
        let range = ValueRange::new(5_000, 9_400);
        let writes: Vec<(usize, u64)> = (10..30)
            .map(|p| (p * VALUES_PER_PAGE + p, 6_000 + p as u64))
            .collect();
        // Chunked column: publish each chunk as its own epoch.
        let (mut column, mut views) = column_with_views(32, &[range]);
        let updates = column.write_batch(&writes);
        let snap = snapshot_alignment(&column, &views, &updates).unwrap();
        let chunked = plan_alignment_chunked(&snap, Parallelism::Sequential, 4);
        assert_eq!(chunked.num_chunks(), 5);
        let generation_before = views.generation();
        for chunk in &chunked.chunks {
            apply_plan(&column, &mut views, chunk).unwrap();
        }
        assert_eq!(views.generation(), generation_before + 5);
        // Synchronous twin.
        let (mut sync_col, mut sync_views) = column_with_views(32, &[range]);
        let sync_updates = sync_col.write_batch(&writes);
        crate::updates::align_views_after_updates(&sync_col, &mut sync_views, &sync_updates)
            .unwrap();
        let layout = |col: &Column<SimBackend>, views: &ViewSet<SimBackend>| -> Vec<usize> {
            let view = views.partial_view(0).unwrap();
            let table = col
                .backend()
                .mapping_table(col.store(), view.buffer())
                .unwrap();
            (0..view.num_pages())
                .map(|slot| table.phys_for_slot(slot).unwrap())
                .collect()
        };
        assert_eq!(
            layout(&column, &views),
            layout(&sync_col, &sync_views),
            "chunked publishes end bit-identical to one synchronous pass"
        );
    }

    #[test]
    fn write_overlay_stages_and_retirement() {
        let mut overlay = WriteOverlay::new();
        assert!(overlay.is_empty());
        overlay.push(10, 100);
        overlay.push(3, 30);
        overlay.push(10, 111); // overwrite: same row, newer value
        assert_eq!(overlay.len(), 2);
        assert_eq!(overlay.queued_writes(), 3, "log keeps every write");
        assert_eq!(
            overlay.rows().as_slice(),
            &[3, 10],
            "ascending exclusion list"
        );
        assert_eq!(overlay.value(10), Some(111));
        assert_eq!(overlay.value(3), Some(30));
        assert_eq!(overlay.value(4), None);

        let mut seen = Vec::new();
        overlay.for_each_qualifying(&ValueRange::new(50, 200), |row, v| seen.push((row, v)));
        assert_eq!(seen, vec![(10, 111)]);

        // Drain into a round: entries stay visible, log empties.
        let writes = overlay.take_queued();
        assert_eq!(writes, vec![(10, 100), (3, 30), (10, 111)]);
        assert_eq!(overlay.queued_writes(), 0);
        assert_eq!(overlay.len(), 2, "aligning entries stay overlaid");
        // A re-queued row survives retirement; the rest retire.
        overlay.push(3, 33);
        overlay.retire_aligned();
        assert_eq!(overlay.rows().as_slice(), &[3]);
        assert_eq!(overlay.value(3), Some(33));
        overlay.take_queued();
        overlay.retire_aligned();
        assert!(overlay.is_empty());
    }

    #[test]
    fn background_planning_runs_off_thread() {
        let range = ValueRange::new(5_000, 9_400);
        let (mut column, mut views) = column_with_views(32, &[range]);
        let updates = column.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        let snap = snapshot_alignment(&column, &views, &updates).unwrap();
        let generation_before = views.generation();
        let pending = spawn_alignment(snap, Parallelism::Threads(2));
        // The snapshot is owned by the worker: the column stays fully
        // usable here (this is the whole point of the handoff).
        assert!(column.full_scan(&range).count > 0);
        let plan = pending.join();
        let stats = apply_plan(&column, &mut views, &plan).unwrap();
        assert_eq!(stats.pages_added, 1);
        assert_eq!(views.generation(), generation_before + 1);
    }
}
