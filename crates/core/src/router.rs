//! Query routing: choosing the view(s) that answer a query.
//!
//! Two modes exist (paper §2.1):
//!
//! * **single-view** — exactly one view that fully covers the query range is
//!   used; among all candidates the one indexing the fewest physical pages
//!   wins (the full view is always a candidate of last resort);
//! * **multi-view** — several partial views are used together if they cover
//!   the requested range *in conjunction*. The current policy mirrors the
//!   paper: "the system tries to answer a query using multiple views if
//!   possible, instead of directing the query to a single (potentially
//!   larger) view"; if the partial views cannot cover the range, routing
//!   falls back to the single-view choice.

use asv_storage::Column;
use asv_util::ValueRange;
use asv_vmem::Backend;

use crate::config::RoutingMode;
use crate::viewset::ViewSet;

/// Identifies one view of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewId {
    /// The full view `v[-∞,∞]` owned by the column.
    Full,
    /// The partial view at the given position in the [`ViewSet`].
    Partial(usize),
}

/// The outcome of routing a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteSelection {
    /// The views to scan, in scan order.
    pub views: Vec<ViewId>,
    /// The value range covered by the selected views in conjunction. Always
    /// a superset of the query range. Used as the starting point of the
    /// range-widening step during adaptive view creation (Listing 1 line 4).
    pub covered: ValueRange,
    /// Total number of physical pages indexed by the selected views (pages
    /// shared between selected views counted once per view).
    pub indexed_pages: usize,
}

impl RouteSelection {
    /// Returns `true` if the selection is just the full view.
    pub fn is_full_scan(&self) -> bool {
        self.views == [ViewId::Full]
    }
}

/// Routes `query_range` to the most fitting view(s) of `column`.
pub fn route<B: Backend>(
    column: &Column<B>,
    views: &ViewSet<B>,
    query_range: &ValueRange,
    mode: RoutingMode,
) -> RouteSelection {
    match mode {
        RoutingMode::SingleView => route_single(column, views, query_range),
        RoutingMode::MultiView => route_multi(column, views, query_range),
    }
}

/// Single-view routing: the covering view with the fewest indexed pages.
pub fn route_single<B: Backend>(
    column: &Column<B>,
    views: &ViewSet<B>,
    query_range: &ValueRange,
) -> RouteSelection {
    let mut best: Option<(usize, usize)> = None; // (view index, pages)
    for (idx, view) in views.iter() {
        if view.covers(query_range) {
            let pages = view.num_pages();
            let better = match best {
                None => true,
                Some((_, best_pages)) => pages < best_pages,
            };
            if better {
                best = Some((idx, pages));
            }
        }
    }
    match best {
        // Prefer a covering partial view unless the full view is strictly
        // smaller (it never is: a partial view can map at most all pages).
        Some((idx, pages)) if pages <= column.num_pages() => RouteSelection {
            views: vec![ViewId::Partial(idx)],
            covered: *views.partial_view(idx).expect("valid index").range(),
            indexed_pages: pages,
        },
        _ => RouteSelection {
            views: vec![ViewId::Full],
            covered: ValueRange::full(),
            indexed_pages: column.num_pages(),
        },
    }
}

/// Multi-view routing: a greedy interval cover of the query range by
/// partial views, falling back to single-view routing when impossible.
pub fn route_multi<B: Backend>(
    column: &Column<B>,
    views: &ViewSet<B>,
    query_range: &ValueRange,
) -> RouteSelection {
    if let Some(selection) = greedy_cover(views, query_range) {
        return selection;
    }
    route_single(column, views, query_range)
}

/// Tries to cover `query_range` with partial views only, using the classic
/// greedy interval-cover strategy: repeatedly pick, among the views whose
/// range starts at or before the first still-uncovered value, the one
/// reaching furthest to the right (ties broken by fewer indexed pages).
fn greedy_cover<B: Backend>(
    views: &ViewSet<B>,
    query_range: &ValueRange,
) -> Option<RouteSelection> {
    if views.is_empty() {
        return None;
    }
    let mut chosen: Vec<ViewId> = Vec::new();
    let mut covered: Option<ValueRange> = None;
    let mut indexed_pages = 0usize;
    let mut cursor = query_range.low();
    loop {
        // Among views covering `cursor`, pick the one extending furthest.
        let mut best: Option<(usize, u64, usize)> = None; // (idx, high, pages)
        for (idx, view) in views.iter() {
            let r = view.range();
            if r.low() <= cursor && r.high() >= cursor {
                let pages = view.num_pages();
                let better = match best {
                    None => true,
                    Some((_, best_high, best_pages)) => {
                        r.high() > best_high || (r.high() == best_high && pages < best_pages)
                    }
                };
                if better {
                    best = Some((idx, r.high(), pages));
                }
            }
        }
        let (idx, high, pages) = best?;
        // Skip views that do not extend the coverage (can only happen if a
        // previously chosen view already reached `high`; then no progress is
        // possible and the cover fails).
        chosen.push(ViewId::Partial(idx));
        indexed_pages += pages;
        let view_range = *views.partial_view(idx).expect("valid index").range();
        covered = Some(match covered {
            None => view_range,
            Some(c) => c.hull(&view_range),
        });
        if high >= query_range.high() {
            return Some(RouteSelection {
                views: chosen,
                covered: covered.expect("at least one view chosen"),
                indexed_pages,
            });
        }
        if high == u64::MAX {
            // Defensive: cannot advance past the domain maximum.
            return Some(RouteSelection {
                views: chosen,
                covered: covered.expect("at least one view chosen"),
                indexed_pages,
            });
        }
        cursor = high + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::{MapRequest, SimBackend};

    /// Builds a column of `pages` pages (all values zero — routing only
    /// looks at metadata) and a view set with the given (range, pages)
    /// partial views.
    fn setup(
        pages: usize,
        partials: &[(u64, u64, usize)],
    ) -> (Column<SimBackend>, ViewSet<SimBackend>) {
        let backend = SimBackend::new();
        let values = vec![0u64; pages * asv_vmem::VALUES_PER_PAGE];
        let column = Column::from_values(backend.clone(), &values).unwrap();
        let mut set = ViewSet::new(100);
        for &(lo, hi, n) in partials {
            let mut buf = column.reserve_partial_view().unwrap();
            for slot in 0..n {
                backend
                    .map_run(column.store(), &mut buf, MapRequest::single(slot, slot))
                    .unwrap();
            }
            set.insert_unchecked(ValueRange::new(lo, hi), buf);
        }
        (column, set)
    }

    #[test]
    fn empty_view_set_routes_to_full_view() {
        let (column, set) = setup(10, &[]);
        let sel = route(
            &column,
            &set,
            &ValueRange::new(5, 10),
            RoutingMode::SingleView,
        );
        assert!(sel.is_full_scan());
        assert_eq!(sel.indexed_pages, 10);
        assert!(sel.covered.is_full());
        let sel = route(
            &column,
            &set,
            &ValueRange::new(5, 10),
            RoutingMode::MultiView,
        );
        assert!(sel.is_full_scan());
    }

    #[test]
    fn single_view_picks_smallest_covering_view() {
        let (column, set) = setup(10, &[(0, 100, 6), (10, 60, 3), (20, 30, 1)]);
        // Query [15, 40]: covered by view 0 (6 pages) and view 1 (3 pages),
        // not by view 2.
        let sel = route_single(&column, &set, &ValueRange::new(15, 40));
        assert_eq!(sel.views, vec![ViewId::Partial(1)]);
        assert_eq!(sel.indexed_pages, 3);
        assert_eq!(sel.covered, ValueRange::new(10, 60));
    }

    #[test]
    fn single_view_falls_back_to_full_view_when_uncovered() {
        let (column, set) = setup(10, &[(10, 60, 3)]);
        let sel = route_single(&column, &set, &ValueRange::new(5, 40));
        assert!(sel.is_full_scan());
    }

    #[test]
    fn multi_view_covers_with_overlapping_views() {
        let (column, set) = setup(10, &[(0, 30, 2), (25, 70, 3), (65, 100, 2)]);
        let sel = route_multi(&column, &set, &ValueRange::new(5, 90));
        assert_eq!(
            sel.views,
            vec![ViewId::Partial(0), ViewId::Partial(1), ViewId::Partial(2)]
        );
        assert_eq!(sel.indexed_pages, 7);
        assert_eq!(sel.covered, ValueRange::new(0, 100));
    }

    #[test]
    fn multi_view_covers_with_adjacent_views() {
        // Ranges that touch without overlapping: [0,30] and [31,60].
        let (column, set) = setup(10, &[(0, 30, 2), (31, 60, 2)]);
        let sel = route_multi(&column, &set, &ValueRange::new(10, 55));
        assert_eq!(sel.views.len(), 2);
        assert_eq!(sel.covered, ValueRange::new(0, 60));
    }

    #[test]
    fn multi_view_greedy_picks_furthest_reaching_view_per_step() {
        // A view that already spans the whole query is preferred over
        // chaining two smaller ones (fewer views, fewer shared-page checks);
        // what the multi-view mode avoids is falling back to the *full*
        // view when partial views suffice.
        let (column, set) = setup(10, &[(0, 100, 8), (0, 50, 2), (45, 100, 2)]);
        let sel = route_multi(&column, &set, &ValueRange::new(10, 90));
        assert_eq!(sel.views, vec![ViewId::Partial(0)]);
        assert!(!sel.is_full_scan());
    }

    #[test]
    fn multi_view_falls_back_when_gap_exists() {
        let (column, set) = setup(10, &[(0, 30, 2), (50, 100, 2)]);
        // Gap between 30 and 50: cannot cover [10, 90] with partials.
        let sel = route_multi(&column, &set, &ValueRange::new(10, 90));
        assert!(sel.is_full_scan());
    }

    #[test]
    fn multi_view_single_partial_suffices() {
        let (column, set) = setup(10, &[(0, 100, 4)]);
        let sel = route_multi(&column, &set, &ValueRange::new(10, 90));
        assert_eq!(sel.views, vec![ViewId::Partial(0)]);
        assert!(!sel.is_full_scan());
    }

    #[test]
    fn greedy_cover_breaks_ties_by_fewer_pages() {
        // Two views with identical ranges but different page counts.
        let (column, set) = setup(10, &[(0, 100, 5), (0, 100, 2)]);
        let sel = route_multi(&column, &set, &ValueRange::new(10, 90));
        assert_eq!(sel.views, vec![ViewId::Partial(1)]);
        let _ = column;
    }

    #[test]
    fn point_query_routing() {
        let (column, set) = setup(10, &[(10, 60, 3)]);
        let sel = route(
            &column,
            &set,
            &ValueRange::point(42),
            RoutingMode::SingleView,
        );
        assert_eq!(sel.views, vec![ViewId::Partial(0)]);
        let sel = route(
            &column,
            &set,
            &ValueRange::point(5),
            RoutingMode::SingleView,
        );
        assert!(sel.is_full_scan());
    }
}
